#!/usr/bin/env bash
# Local CI gate. Mirrors .github/workflows/ci.yml exactly; run before
# pushing. The workspace builds fully offline (deps vendored under
# vendor/), so no registry access is required.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1 gate)"
cargo test -q

echo "==> cargo test --workspace -q (full suite)"
cargo test --workspace -q

echo "==> tier-1 gate, serial test runner"
RUST_TEST_THREADS=1 cargo test -q

echo "==> differential battery, parallel engine at 2 and 8 workers"
LLL_DIFF_THREADS=2 cargo test -q --test parallel_differential
LLL_DIFF_THREADS=8 cargo test -q --test parallel_differential

echo "==> flight recorder: traced workload + schema validation"
cargo test -q -p lll-bench --test obs_differential
tmp_obs="$(mktemp -d)"
cargo run --release -q -p lll-bench --bin tables -- \
  --csv "$tmp_obs" --obs "$tmp_obs/trace.jsonl" E4 TRACE
cargo run --release -q -p lll-obs --bin obs-report -- \
  --validate "$tmp_obs/trace.jsonl" > /dev/null
rm -rf "$tmp_obs"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> OK"
