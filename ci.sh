#!/usr/bin/env bash
# Local CI gate. Mirrors .github/workflows/ci.yml exactly; run before
# pushing. The workspace builds fully offline (deps vendored under
# vendor/), so no registry access is required.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1 gate)"
cargo test -q

echo "==> numeric crossover battery (i128 <-> Wide <-> Heap, 10k cases/op)"
cargo test -q -p lll-numeric --test wide_crossover
cargo test -q -p lll-numeric --features serde --test wide_crossover

echo "==> cargo test --workspace -q (full suite)"
cargo test --workspace -q

echo "==> tier-1 gate, serial test runner"
RUST_TEST_THREADS=1 cargo test -q

echo "==> differential battery, parallel engine at 2 and 8 workers"
LLL_DIFF_THREADS=2 cargo test -q --test parallel_differential
LLL_DIFF_THREADS=8 cargo test -q --test parallel_differential

echo "==> differential battery, parallel fixing sweep at 2 and 8 workers"
LLL_DIFF_THREADS=2 cargo test -q --test fixer_parallel_differential
LLL_DIFF_THREADS=8 cargo test -q --test fixer_parallel_differential

echo "==> flight recorder: traced workload + summarize/series/diff + timing"
cargo test -q -p lll-bench --test obs_differential
cargo test -q -p lll-obs
tmp_obs="$(mktemp -d)"
# Trace the workload twice — once with a live timing profiler, once at a
# different thread count — and hold obs-report to its contract on both.
cargo run --release -q -p lll-bench --bin tables -- \
  --csv "$tmp_obs" --obs "$tmp_obs/trace.jsonl" \
  --timing "$tmp_obs/timing.jsonl" E4 E16 TRACE
cargo run --release -q -p lll-obs --bin obs-report -- \
  summarize --validate "$tmp_obs/trace.jsonl" > /dev/null
cargo run --release -q -p lll-obs --bin obs-report -- \
  series --out "$tmp_obs/series" "$tmp_obs/trace.jsonl" > /dev/null
# Determinism: the same workload traced at 1 and 4 workers must be an
# identical event stream (diff exits 0; a divergence exits 1 and prints
# the first bad event with field-level deltas).
cargo run --release -q -p lll-bench --bin tables -- \
  --obs "$tmp_obs/trace_t1.jsonl" TRACE > /dev/null
cargo run --release -q -p lll-bench --bin tables -- \
  --threads 4 --obs "$tmp_obs/trace_t4.jsonl" TRACE > /dev/null
cargo run --release -q -p lll-obs --bin obs-report -- \
  diff "$tmp_obs/trace_t1.jsonl" "$tmp_obs/trace_t4.jsonl"
# Same contract for the color-class-parallel fixing sweep: the recorded
# fixing stream at 1 and 4 sweep workers must be byte-identical.
cargo run --release -q -p lll-bench --bin tables -- \
  --obs "$tmp_obs/sweep_t1.jsonl" SWEEP > /dev/null
cargo run --release -q -p lll-bench --bin tables -- \
  --threads 4 --obs "$tmp_obs/sweep_t4.jsonl" SWEEP > /dev/null
cargo run --release -q -p lll-obs --bin obs-report -- \
  diff "$tmp_obs/sweep_t1.jsonl" "$tmp_obs/sweep_t4.jsonl"
rm -rf "$tmp_obs"

echo "==> checkpoint/resume: differential battery + kill/resume smoke + E20 gate"
cargo test -q -p lll-bench --test resume_differential
tmp_ckpt="$(mktemp -d)"
# Uninterrupted reference, then the same run aborted mid-stream (the
# kill switch calls abort() after the 100th event — no flush, no
# destructors, exactly a crash) and resumed in place at a different
# worker count. The resumed file must be byte-identical to the
# reference, and the offline verifier must agree the (prefix,
# checkpoint, continuation) triple is coherent.
./target/release/ckpt run --out "$tmp_ckpt/ref.jsonl" --n 256 --interval 8
rc=0
./target/release/ckpt run --out "$tmp_ckpt/killed.jsonl" --n 256 --interval 8 \
  --kill-after-events 100 2>/dev/null || rc=$?
test "$rc" -eq 134 # SIGABRT: the run really died mid-stream
cp "$tmp_ckpt/killed.jsonl" "$tmp_ckpt/prefix.jsonl"
./target/release/ckpt resume --out "$tmp_ckpt/killed.jsonl" --n 256 --interval 8 --threads 4
cmp "$tmp_ckpt/ref.jsonl" "$tmp_ckpt/killed.jsonl"
cargo run --release -q -p lll-obs --bin obs-report -- \
  resume-check "$tmp_ckpt/prefix.jsonl" "$tmp_ckpt/killed.jsonl"
rm -rf "$tmp_ckpt"
# E20: a #checkpoint sidecar every N progress events must stay within
# 1.05x of the uncheckpointed recorder (numeric-interval rows only; the
# uninterrupted/resumed rows are wall-clock context, not a gate).
cargo run --release -q -p lll-bench --bin tables -- --csv results E20
awk -F, '!/^#/ && NR > 2 && $2 ~ /^[0-9]+$/ { if ($4 > 1.05) bad = 1 } END { exit bad }' \
  results/e20_resume_overhead.csv

echo "==> E22: wide-tier gear (audited speedup must be >= 1.5x pre-gear baseline)"
# Byte-identity across t in {1,2,8} and across both gears is asserted
# inside the experiment before any timing; the gate here is the
# wall-clock claim against the committed pre-gear baseline.
cargo run --release -q -p lll-bench --bin tables -- --csv results E22
awk -F, '!/^#/ && NR > 2 { if ($7 < 1.5) bad = 1; rows++ } END { exit !(rows == 2 && !bad) }' \
  results/e22_wide_tier.csv

echo "==> Criterion wide-tier kernel medians"
cargo bench -p lll-bench --bench numeric | tee results/criterion_numeric_medians.txt

echo "==> service mode: protocol + cache + parse + soak batteries"
cargo test -q -p lll-serve
LLL_DIFF_THREADS=2 cargo test -q -p lll-serve --test soak
LLL_DIFF_THREADS=8 cargo test -q -p lll-serve --test soak

echo "==> service mode: 100-request daemon smoke (byte-identity across threads/cache)"
tmp_serve="$(mktemp -d)"
for i in $(seq 1 100); do
  printf '{"id":%d,"dimacs":"p cnf 2 2\\n1 2 0\\n-1 2 0\\n"}\n' "$i"
done > "$tmp_serve/requests.jsonl"
./target/release/lll-serve < "$tmp_serve/requests.jsonl" > "$tmp_serve/t1.out"
./target/release/lll-serve --threads 4 --batch 32 \
  < "$tmp_serve/requests.jsonl" > "$tmp_serve/t4.out"
./target/release/lll-serve --threads 4 --batch 32 --no-cache \
  < "$tmp_serve/requests.jsonl" > "$tmp_serve/nocache.out"
test "$(wc -l < "$tmp_serve/t1.out")" -eq 100
cmp "$tmp_serve/t1.out" "$tmp_serve/t4.out"
cmp "$tmp_serve/t1.out" "$tmp_serve/nocache.out"
# A request-level obs tee must be a valid flight-recorder stream, and
# its lines carry the request id (obs schema v2 `req` tag) so
# `--by-request` can attribute them.
printf '{"id":"trace","obs":"%s/serve_trace.jsonl","dimacs":"p cnf 2 2\\n1 2 0\\n-1 2 0\\n"}\n' \
  "$tmp_serve" | ./target/release/lll-serve > /dev/null
cargo run --release -q -p lll-obs --bin obs-report -- \
  summarize --validate --json --by-request "$tmp_serve/serve_trace.jsonl" \
  | grep -q '"by_request":{"\\"trace\\""'
rm -rf "$tmp_serve"

echo "==> service mode: telemetry smoke (scrape + exposition + SIGUSR1, byte-identity)"
tmp_tel="$(mktemp -d)"
for i in $(seq 1 10); do
  printf '{"id":%d,"dimacs":"p cnf 2 2\\n1 2 0\\n-1 2 0\\n"}\n' "$i"
done > "$tmp_tel/requests.jsonl"
# Quiet baseline, then the same requests with the exporter live: the
# telemetry plane is side-band, so stdout must be byte-identical.
./target/release/lll-serve < "$tmp_tel/requests.jsonl" > "$tmp_tel/quiet.out"
mkfifo "$tmp_tel/in"
./target/release/lll-serve --metrics "$tmp_tel/metrics.sock" --cache-capacity 8 \
  < "$tmp_tel/in" > "$tmp_tel/metered.out" 2> "$tmp_tel/metered.err" &
serve_pid=$!
exec 9> "$tmp_tel/in" # hold the daemon's stdin open while we scrape
cat "$tmp_tel/requests.jsonl" >&9
for _ in $(seq 1 100); do
  [ "$(wc -l < "$tmp_tel/metered.out")" -eq 10 ] && break
  sleep 0.1
done
./target/release/lll-metrics-scrape "$tmp_tel/metrics.sock" > "$tmp_tel/exposition.txt"
# Validate the exposition: text-format grammar (HELP/TYPE comments,
# `name[{labels}] value` samples, integer values) and the counters the
# 10 requests must have driven.
awk '
  /^# TYPE / { if ($NF !~ /^(counter|gauge|summary|histogram|untyped)$/) exit 1; next }
  /^#/      { if ($0 !~ /^# HELP /) exit 1; next }
  NF != 2   { print "bad sample: " $0; exit 1 }
  $1 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})?$/ { print "bad name: " $0; exit 1 }
  $2 !~ /^-?[0-9]+$/ { print "bad value: " $0; exit 1 }
  $1 == "lll_serve_requests_total" { reqs = $2 }
  $1 == "lll_serve_ok_total" { ok = $2 }
  $1 == "lll_serve_cache_hits_total" { hits = $2 }
  END { exit !(reqs == 10 && ok == 10 && hits == 9) }
' "$tmp_tel/exposition.txt"
# SIGUSR1 dumps a stats line to stderr on demand.
kill -USR1 "$serve_pid"
for _ in $(seq 1 100); do
  grep -q '^lll-serve: 10 requests' "$tmp_tel/metered.err" && break
  sleep 0.1
done
grep -q '^lll-serve: 10 requests (10 ok, 0 errors)' "$tmp_tel/metered.err"
exec 9>&- # EOF: drain and exit 0
wait "$serve_pid"
cmp "$tmp_tel/quiet.out" "$tmp_tel/metered.out"
test ! -e "$tmp_tel/metrics.sock" # exporter socket removed on shutdown
rm -rf "$tmp_tel"

echo "==> service mode: E18 throughput (warm cache must be >= 2x cold)"
cargo run --release -q -p lll-bench --bin tables -- --csv results E18
awk -F, '!/^#/ && NR > 2 { ips[$1] = $7 } END { exit !(ips["warm"] >= 2 * ips["cold"]) }' \
  results/e18_serve_throughput.csv

echo "==> service mode: E19 telemetry overhead (scraped must be <= 1.05x quiet)"
cargo run --release -q -p lll-bench --bin tables -- --csv results E19
awk -F, '!/^#/ && NR > 2 { ips[$1] = $7 } END { exit !(ips["quiet"] <= 1.05 * ips["scraped"]) }' \
  results/e19_metrics_overhead.csv

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> OK"
