//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, dependency-free implementation of the APIs it
//! actually calls: a deterministic [`rngs::StdRng`] (xoshiro256**),
//! [`SeedableRng`], the [`RngExt`] extension trait (`random`,
//! `random_range`, `random_bool`) and [`seq::SliceRandom`]
//! (`shuffle`, `choose`).
//!
//! The streams are *not* bit-compatible with the real `rand` crate; the
//! workspace only relies on determinism (same seed ⇒ same stream), never
//! on specific values.

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s; every generator implements this.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` via SplitMix64 key expansion.
    fn from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Alias of [`SeedableRng::from_u64`] matching the real crate's name.
    fn seed_from_u64(state: u64) -> Self {
        Self::from_u64(state)
    }
}

/// SplitMix64 — used for key expansion only.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Types producible uniformly at random (the `Standard` distribution of
/// the real crate, folded into a single trait).
pub trait Random: Sized {
    /// Draws a uniform value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_uint {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_int!(i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` in `[0, span)` by rejection sampling (exactly uniform).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Accept v ≤ zone so the accepted region is a whole multiple of span.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64_below(rng, span);
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return <$t as Random>::random(rng);
                }
                let off = uniform_u64_below(rng, span as u64);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

/// Extension methods on every generator (the real crate's `Rng` trait;
/// the workspace imports it under this name).
pub trait RngExt: RngCore {
    /// Draws a uniform value of an inferred type.
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::random(self) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Alias kept so code written against the real crate's `Rng` also works.
pub use RngExt as Rng;

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256** — a small, fast, high-quality deterministic PRNG.
    ///
    /// Stand-in for the real crate's ChaCha-based `StdRng`; this
    /// workspace needs determinism, not cryptographic quality.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e3779b97f4a7c15,
                    0x6a09e667f3bcc909,
                    0xbb67ae8584caa73b,
                    1,
                ];
            }
            StdRng { s }
        }
    }

    /// Alias: the real crate's `SmallRng` — identical generator here.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{uniform_u64_below, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `rand::prelude`.
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Random, RngCore, RngExt, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism_and_stream_inequality() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.random::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.random::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.random::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50-element shuffle left input unchanged"
        );
    }

    #[test]
    fn choose_covers_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [10, 20, 30];
        let empty: [i32; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = v.choose(&mut rng).unwrap();
            seen[(x / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
