//! Offline stand-in for the subset of the `criterion` crate this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal wall-clock bench harness with the same surface
//! API: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], the
//! [`criterion_group!`] / [`criterion_main!`] macros, and
//! `Bencher::iter`.
//!
//! Statistics are deliberately simple: each benchmark runs a short
//! calibration pass to pick an iteration batch size, then collects
//! `sample_size` batch timings within `measurement_time` and reports
//! min / median / mean per-iteration times on stdout. There is no
//! outlier analysis, no HTML report, and no saved baselines — numbers
//! are for relative comparisons recorded by hand (see EXPERIMENTS.md).

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Honor the conventional `cargo bench -- <filter>` argument so
        // a single group can be run in isolation.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_millis(300),
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        let label = id.to_string();
        self.run_one(&label, f);
        self
    }

    fn run_one(&self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(label);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within this group.
    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, f);
    }

    /// Runs a parameterised benchmark within this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility; no-op here).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by its parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<f64>, // nanoseconds per iteration
}

impl Bencher {
    /// Times `routine`, collecting per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and calibrate the batch size so one batch is long
        // enough for the timer (~1ms) but short enough to fit
        // `sample_size` batches in the measurement window.
        let warm_start = Instant::now();
        let mut iters_done: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || iters_done == 0 {
            std::hint::black_box(routine());
            iters_done += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)).min(1e9) as u64).clamp(1, u64::MAX);

        self.samples.clear();
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64 / batch as f64;
            self.samples.push(elapsed);
            if Instant::now() > deadline && self.samples.len() >= 2 {
                break;
            }
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{label:<50} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            sorted.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Re-export for code that imports `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group, in either the struct form
/// (`name = ...; config = ...; targets = ...`) or the simple
/// positional form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(
            BenchmarkId::from_parameter("ring-64").to_string(),
            "ring-64"
        );
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(2));
        // Make sure the whole pipeline runs without panicking.
        c.benchmark_group("smoke").bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1u64 + 1));
        });
    }
}
