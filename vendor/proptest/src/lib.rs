//! Offline stand-in for the subset of the `proptest` crate this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal property-testing harness with the same surface
//! syntax: the [`proptest!`] and [`prop_compose!`] macros, range /
//! tuple / [`collection::vec`] / [`any`] strategies, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//! `prop_assume!` assertion macros.
//!
//! Differences from the real crate: no shrinking (a failing case is
//! reported with its generated inputs but not minimised) and
//! deterministic per-test seeding (derived from the test name, so
//! failures reproduce without a persistence file).

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator backing all strategies (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator seeded from an arbitrary byte string (FNV-1a), used
    /// by [`proptest!`] to derive a stable per-test stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut s = [0u64; 4];
        for word in s.iter_mut() {
            // SplitMix64 expansion of the hash.
            h = h.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            *word = z ^ (z >> 31);
        }
        TestRng { s }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, span)`, exactly (rejection sampling).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span.is_power_of_two() {
            return self.next_u64() & (span - 1);
        }
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }
}

/// Outcome of a single generated test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — generate another.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A rejection with a reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }

    /// A failure with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases each property must pass.
    pub cases: u32,
    /// Maximum number of `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases, other settings default.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// A generator of values of type `Value` (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_cast {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_cast!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite `f64`s, biased toward moderate magnitudes like the real
    /// crate's default (never NaN/∞ — the workspace treats those
    /// separately).
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let mantissa = rng.next_f64() * 2.0 - 1.0;
        let exp = (rng.below(1201) as i32) - 600;
        let v = mantissa * 2f64.powi(exp);
        if v.is_finite() {
            v
        } else {
            mantissa
        }
    }
}

/// The `any::<T>()` strategy.
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn new_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// Strategy producing any value of `A` (see [`Arbitrary`]).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

/// A strategy backed by a closure (used by [`prop_compose!`]).
pub struct Generated<F>(F);

impl<F> Generated<F> {
    /// Wraps a generation closure.
    pub fn new<T>(f: F) -> Generated<F>
    where
        F: Fn(&mut TestRng) -> T,
    {
        Generated(f)
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for Generated<F> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Admissible length specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size` (a `usize` for an
    /// exact length, or a `Range<usize>`).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

/// Runs one property: generates cases, counts rejects, panics on
/// failure. Called by the expansion of [`proptest!`].
pub fn run_property(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::deterministic(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "property {name}: too many rejected cases \
                         ({rejected} rejects for {passed}/{} passes)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} failed after {passed} passing case(s): {msg}");
            }
        }
    }
}

/// Defines property tests. Mirrors the real crate's syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0usize..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property(stringify!($name), &config, |__proptest_rng| {
                $(let $pat = $crate::Strategy::new_value(&($strat), __proptest_rng);)+
                $body
                Ok(())
            });
        }
    )*};
}

/// Defines a named strategy function. Mirrors the real crate's syntax:
///
/// ```ignore
/// prop_compose! {
///     fn arb_point()(x in 0i64..10, y in 0i64..10) -> (i64, i64) { (x, y) }
/// }
/// ```
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)($($pat:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::Generated::new(move |__proptest_rng: &mut $crate::TestRng| -> $ret {
                $(let $pat = $crate::Strategy::new_value(&($strat), __proptest_rng);)+
                $body
            })
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case unless `cond` holds (does not count as a
/// pass or a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair()(a in 0i64..100, b in 1i64..100) -> (i64, i64) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -5i64..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn composed_strategies((a, b) in arb_pair(), v in prop::collection::vec(any::<u32>(), 0..6)) {
            prop_assert!((0..100).contains(&a));
            prop_assert!((1..100).contains(&b));
            prop_assert!(v.len() < 6);
        }

        #[test]
        fn assume_rejects(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 1);
        }

        #[test]
        fn exact_vec_lengths(v in prop::collection::vec(any::<u8>(), 3)) {
            prop_assert_eq!(v.len(), 3);
        }
    }

    #[test]
    fn deterministic_streams() {
        let a: Vec<u64> = {
            let mut rng = crate::TestRng::deterministic("x");
            (0..8).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = crate::TestRng::deterministic("x");
            (0..8).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failures_panic() {
        crate::run_property("always_fails", &ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
