//! Offline stand-in for the subset of the `serde_json` crate this
//! workspace uses: [`to_string`] and [`from_str`] over the vendored
//! `serde` framework's [`Value`] data model.

use serde::de::ValueDeserializer;
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error for both serialization and deserialization.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Error {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Error {
        Error::new(msg.to_string())
    }
}

/// Serializes a value to its JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&serde::to_value(value), &mut out)?;
    Ok(out)
}

fn write_value(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if !v.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            out.push_str(&format!("{v:?}"));
        }
        Value::String(s) => write_json_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(key, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Deserializes a value from JSON text.
pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::deserialize(ValueDeserializer::<Error>::new(value))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, expected: u8) -> Result<(), Error> {
        let b = self.bump()?;
        if b != expected {
            return Err(Error::new(format!(
                "expected '{}' at byte {}, found '{}'",
                expected as char,
                self.pos - 1,
                b as char
            )));
        }
        Ok(())
    }

    fn expect_literal(&mut self, literal: &str) -> Result<(), Error> {
        for &b in literal.as_bytes() {
            self.expect(b)?;
        }
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self
            .peek()
            .ok_or_else(|| Error::new("unexpected end of input"))?
        {
            b'n' => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => Ok(Value::String(self.parse_string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bump()? {
                        b',' => continue,
                        b']' => return Ok(Value::Array(items)),
                        b => {
                            return Err(Error::new(format!(
                                "expected ',' or ']', found '{}'",
                                b as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.bump()? {
                        b',' => continue,
                        b'}' => return Ok(Value::Object(fields)),
                        b => {
                            return Err(Error::new(format!(
                                "expected ',' or '}}', found '{}'",
                                b as char
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            b => Err(Error::new(format!("unexpected character '{}'", b as char))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.bump()?;
            match b {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            code = code * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?;
                        }
                        // Surrogate pairs are not needed by this
                        // workspace's data; reject rather than decode
                        // incorrectly.
                        let c = char::from_u32(code)
                            .ok_or_else(|| Error::new("unsupported \\u escape (surrogate)"))?;
                        out.push(c);
                    }
                    b => return Err(Error::new(format!("invalid escape '\\{}'", b as char))),
                },
                _ => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b)?;
                    for _ in 1..len {
                        self.bump()?;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }
}

fn utf8_len(first: u8) -> Result<usize, Error> {
    match first {
        0x00..=0x7f => Ok(1),
        0xc0..=0xdf => Ok(2),
        0xe0..=0xef => Ok(3),
        0xf0..=0xf7 => Ok(4),
        _ => Err(Error::new("invalid UTF-8 in string")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn roundtrips_containers() {
        let v: Vec<(usize, usize)> = vec![(0, 1), (2, 3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[0,1],[2,3]]");
        assert_eq!(from_str::<Vec<(usize, usize)>>(&json).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("42x").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u64>("\"string\"").is_err());
    }

    #[test]
    fn parses_whitespace_and_objects() {
        let v: Value = {
            let mut p = Parser {
                bytes: br#" { "a" : [ 1 , 2 ] , "b" : null } "#,
                pos: 0,
            };
            p.skip_ws();
            p.parse_value().unwrap()
        };
        assert_eq!(
            v.get("a"),
            Some(&Value::Array(vec![Value::U64(1), Value::U64(2)]))
        );
        assert_eq!(v.get("b"), Some(&Value::Null));
    }
}
