//! Offline stand-in for the subset of the `serde` crate this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serialization framework with the same trait
//! names: [`Serialize`], [`Deserialize`], [`Serializer`],
//! [`Deserializer`], and [`de::Error`]. Unlike the real crate, the
//! data model is a concrete JSON-like [`Value`] tree (no visitors, no
//! zero-copy, no proc-macro derive) — `serde_json` in `vendor/` is the
//! only backend, which is all the workspace needs for its
//! feature-gated round-trip support.

use std::fmt;

mod impls;

/// The concrete data model every (de)serializer speaks.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Non-negative integers.
    U64(u64),
    /// Negative integers.
    I64(i64),
    /// Non-integral numbers.
    F64(f64),
    /// Strings.
    String(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::String(s) => write!(f, "{s:?}"),
            Value::Array(_) => write!(f, "<array>"),
            Value::Object(_) => write!(f, "<object>"),
        }
    }
}

pub mod ser {
    //! Serialization half of the framework.

    use super::Value;
    use std::fmt;

    /// Errors produced while serializing.
    pub trait Error: Sized + std::error::Error {
        /// An error carrying a custom message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// A data format that can consume the [`Value`] data model.
    pub trait Serializer: Sized {
        /// Output on success.
        type Ok;
        /// Error type.
        type Error: Error;

        /// Consumes one complete value.
        fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

        /// Serializes a string.
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::String(v.to_string()))
        }

        /// Serializes a boolean.
        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::Bool(v))
        }

        /// Serializes an unsigned integer.
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::U64(v))
        }

        /// Serializes a signed integer.
        fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::I64(v))
        }

        /// Serializes a float.
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::F64(v))
        }
    }
}

pub mod de {
    //! Deserialization half of the framework.

    use super::Value;
    use std::fmt;
    use std::marker::PhantomData;

    /// Errors produced while deserializing.
    pub trait Error: Sized + std::error::Error {
        /// An error carrying a custom message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// A data format that can produce the [`Value`] data model.
    pub trait Deserializer<'de>: Sized {
        /// Error type.
        type Error: Error;

        /// Produces one complete value.
        fn deserialize_value(self) -> Result<Value, Self::Error>;
    }

    /// Adapter re-deserializing an already-parsed [`Value`] — used by
    /// container impls to hand sub-values to their element types.
    pub struct ValueDeserializer<E> {
        value: Value,
        marker: PhantomData<fn() -> E>,
    }

    impl<E> ValueDeserializer<E> {
        /// Wraps a value.
        pub fn new(value: Value) -> ValueDeserializer<E> {
            ValueDeserializer {
                value,
                marker: PhantomData,
            }
        }
    }

    impl<'de, E: Error> Deserializer<'de> for ValueDeserializer<E> {
        type Error = E;
        fn deserialize_value(self) -> Result<Value, E> {
            Ok(self.value)
        }
    }

    pub use super::Deserialize;
}

pub use de::Deserializer;
pub use ser::Serializer;

/// A type that can be turned into the data model.
pub trait Serialize {
    /// Serializes `self` into the given format.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A type that can be rebuilt from the data model.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value of `Self` from the given format.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Builds the [`Value`] representation of any serializable type —
/// convenience for backends and container impls.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    struct ValueSerializer;

    #[derive(Debug)]
    enum Never {}

    impl fmt::Display for Never {
        fn fmt(&self, _f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match *self {}
        }
    }
    impl std::error::Error for Never {}
    impl ser::Error for Never {
        fn custom<T: fmt::Display>(_msg: T) -> Never {
            unreachable!("value construction is infallible")
        }
    }

    impl Serializer for ValueSerializer {
        type Ok = Value;
        type Error = Never;
        fn serialize_value(self, value: Value) -> Result<Value, Never> {
            Ok(value)
        }
    }

    match value.serialize(ValueSerializer) {
        Ok(v) => v,
        Err(never) => match never {},
    }
}
