//! [`Serialize`]/[`Deserialize`] impls for the std types the
//! workspace round-trips: strings, integers, bools, `Vec`s, and small
//! tuples.

use crate::de::{Error as _, ValueDeserializer};
use crate::{Deserialize, Deserializer, Serialize, Serializer, Value};

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_value()
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                if v >= 0 {
                    serializer.serialize_u64(v as u64)
                } else {
                    serializer.serialize_i64(v)
                }
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);
impl_serialize_int!(i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Array(self.iter().map(crate::to_value).collect()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Array(vec![$(crate::to_value(&self.$idx)),+]))
            }
        }

        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })+;
                match deserializer.deserialize_value()? {
                    Value::Array(items) if items.len() == ARITY => {
                        let mut it = items.into_iter();
                        Ok(($(
                            $name::deserialize(ValueDeserializer::<D::Error>::new(
                                it.next().expect("length checked"),
                            ))?,
                        )+))
                    }
                    other => Err(D::Error::custom(format!(
                        "expected array of length {ARITY}, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::String(s) => Ok(s),
            other => Err(D::Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(D::Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::F64(v) => Ok(v),
            Value::U64(v) => Ok(v as f64),
            Value::I64(v) => Ok(v as f64),
            other => Err(D::Error::custom(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let (value, label) = match deserializer.deserialize_value()? {
                    Value::U64(v) => (<$t>::try_from(v).ok(), "number"),
                    Value::I64(v) => (<$t>::try_from(v).ok(), "number"),
                    other => (None, other.kind()),
                };
                value.ok_or_else(|| {
                    D::Error::custom(format!(
                        "expected {}-compatible integer, found {label}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Array(items) => items
                .into_iter()
                .map(|item| T::deserialize(ValueDeserializer::<D::Error>::new(item)))
                .collect(),
            other => Err(D::Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}
