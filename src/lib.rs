//! # sharp-lll
//!
//! A complete Rust reproduction of **"A Sharp Threshold Phenomenon for the
//! Distributed Complexity of the Lovász Local Lemma"** (Brandt, Maus,
//! Uitto — PODC 2019).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`numeric`] — exact big-integer / rational arithmetic and the
//!   [`numeric::Num`] backend abstraction.
//! * [`graphs`] — graphs, rank-≤3 hypergraphs and workload generators.
//! * [`local`] — a synchronous LOCAL-model message-passing simulator.
//! * [`coloring`] — distributed symmetry breaking (Linial, Cole–Vishkin,
//!   distance-2 and edge coloring).
//! * [`core`] — the paper's contribution: LLL instances, the exact
//!   probability engine, representable triples (`S_rep`), and the
//!   deterministic sequential + distributed fixers for `r = 2` and `r = 3`
//!   under the sharp criterion `p < 2^-d`.
//! * [`mt`] — Moser–Tardos resampling baselines.
//! * [`obs`] — the deterministic flight recorder: typed events, the
//!   zero-overhead [`obs::Recorder`] abstraction, JSONL streams with run
//!   provenance, and schema validation.
//! * [`apps`] — applications: sinkless orientation, rank-3 hypergraph
//!   orientation, weak splitting, bounded-intersection SAT.
//!
//! See `README.md` for a guided tour and `EXPERIMENTS.md` for the
//! experiment-by-experiment reproduction record.
//!
//! # Quickstart
//!
//! Three bad events on a triangle of 4-valued variables; an event occurs
//! iff both of its variables take a specific joint value, so
//! `p = 1/16 < 2^-d = 1/4` — strictly below the sharp threshold, and the
//! deterministic fixer is guaranteed to find an assignment avoiding all
//! bad events (Theorem 1.3):
//!
//! ```
//! use sharp_lll::core::{Fixer3, InstanceBuilder};
//!
//! let mut b = InstanceBuilder::<f64>::new(3);
//! let x = b.add_uniform_variable(&[0, 1], 4); // 4-valued, affects events 0 and 1
//! let y = b.add_uniform_variable(&[1, 2], 4);
//! let z = b.add_uniform_variable(&[0, 2], 4);
//! b.set_event_predicate(0, move |vals| vals[x] == 0 && vals[z] == 0);
//! b.set_event_predicate(1, move |vals| vals[x] == 1 && vals[y] == 1);
//! b.set_event_predicate(2, move |vals| vals[y] == 2 && vals[z] == 2);
//! let instance = b.build()?;
//!
//! let report = Fixer3::new(&instance)?.run_default()?;
//! assert!(report.is_success());
//! assert!(instance.no_event_occurs(report.assignment())?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use lll_apps as apps;
pub use lll_coloring as coloring;
pub use lll_core as core;
pub use lll_graphs as graphs;
pub use lll_local as local;
pub use lll_mt as mt;
pub use lll_numeric as numeric;
pub use lll_obs as obs;
