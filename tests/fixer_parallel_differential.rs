//! Differential battery for the color-class-parallel fixing sweep: the
//! `threads` knob on the distributed fixer drivers must change nothing
//! observable — not the assignment, not the round/class bill, not a
//! single byte of the recorded `--obs` stream, and not the audit
//! verdict — at any worker count, on any topology.
//!
//! Coverage: rank-2 instances on rings, a torus and a random regular
//! graph (edge variables, node events); rank-3 instances on hyper-rings
//! and random 3-uniform hypergraphs (hyperedge variables, node events).
//! Each family runs through the plain drivers, the recorded drivers
//! (byte-identity via in-memory `JsonlRecorder<Vec<u8>>` streams), and
//! the audited drivers (verdicts — including the exact `PStarViolated`
//! error under an impossible bound — must match the sequential ones).
//!
//! Worker counts default to `{1, 2, 3, 8}`; CI overrides the list via
//! `LLL_DIFF_THREADS` (comma-separated) to pin a single count per job.

use std::env;

use sharp_lll::core::dist::{
    distributed_fixer2, distributed_fixer2_audited, distributed_fixer2_audited_recorded,
    distributed_fixer2_parallel, distributed_fixer2_recorded, distributed_fixer3,
    distributed_fixer3_audited, distributed_fixer3_parallel, distributed_fixer3_recorded,
    CriterionCheck, DistError, DistReport,
};
use sharp_lll::core::{Instance, InstanceBuilder};
use sharp_lll::graphs::gen::{hyper_ring, random_3_uniform, random_regular, ring, torus};
use sharp_lll::graphs::{Graph, Hypergraph};
use sharp_lll::obs::JsonlRecorder;

/// Worker counts to exercise; `LLL_DIFF_THREADS=2` (or `1,2,3,8`, …)
/// overrides, so CI can run the battery once per pinned count.
fn thread_counts() -> Vec<usize> {
    match env::var("LLL_DIFF_THREADS") {
        Ok(list) => list
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .expect("LLL_DIFF_THREADS is a comma-separated list of positive integers")
            })
            .collect(),
        Err(_) => vec![1, 2, 3, 8],
    }
}

/// Rank-2 instance on an arbitrary graph: one `k`-valued variable per
/// edge affecting its two endpoint events; the bad event at a node is
/// "every incident edge drew 0" (probability `k^-deg`, so `k = 3`
/// stays below `2^-d` up to degree 4).
fn rank2_instance(g: &Graph, k: usize) -> Instance<f64> {
    let n = g.num_nodes();
    let mut b = InstanceBuilder::<f64>::new(n);
    let mut incident: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(u, v) in g.edges() {
        let x = b.add_uniform_variable(&[u, v], k);
        incident[u].push(x);
        incident[v].push(x);
    }
    for (node, vars) in incident.into_iter().enumerate() {
        assert!(!vars.is_empty(), "battery graphs have no isolated nodes");
        b.set_event_predicate(node, move |vals| vars.iter().all(|&x| vals[x] == 0));
    }
    b.build().expect("valid instance")
}

/// Rank-3 instance on a 3-uniform hypergraph: one `k`-valued variable
/// per hyperedge affecting its nodes; the bad event at a node is
/// "every incident hyperedge drew 0" (probability `k^-deg`).
fn rank3_instance(h: &Hypergraph, k: usize) -> Instance<f64> {
    let n = h.num_nodes();
    let mut b = InstanceBuilder::<f64>::new(n);
    let vars: Vec<usize> = (0..h.num_edges())
        .map(|e| b.add_uniform_variable(h.edge(e).nodes(), k))
        .collect();
    for node in 0..n {
        let incident: Vec<usize> = h.incident(node).iter().map(|&e| vars[e]).collect();
        assert!(
            !incident.is_empty(),
            "battery hypergraphs have no isolated nodes"
        );
        b.set_event_predicate(node, move |vals| incident.iter().all(|&x| vals[x] == 0));
    }
    b.build().expect("valid instance")
}

fn rank2_families() -> Vec<(&'static str, Instance<f64>)> {
    vec![
        ("ring(64)", rank2_instance(&ring(64), 3)),
        ("ring(7)", rank2_instance(&ring(7), 3)),
        ("torus(6x8)", rank2_instance(&torus(6, 8), 3)),
        (
            "4-regular(48)",
            rank2_instance(&random_regular(48, 4, 11).expect("generator succeeds"), 3),
        ),
    ]
}

fn rank3_families() -> Vec<(&'static str, Instance<f64>)> {
    vec![
        ("hyper_ring(48)", rank3_instance(&hyper_ring(48), 3)),
        ("hyper_ring(9)", rank3_instance(&hyper_ring(9), 3)),
        (
            "3-uniform(45,deg3)",
            rank3_instance(&random_3_uniform(45, 3, 9).expect("generator succeeds"), 5),
        ),
    ]
}

fn assert_reports_agree(tag: &str, threads: usize, seq: &DistReport, par: &DistReport) {
    assert_eq!(seq.rounds, par.rounds, "{tag} rounds at {threads} threads");
    assert_eq!(
        seq.coloring_rounds, par.coloring_rounds,
        "{tag} coloring rounds at {threads} threads"
    );
    assert_eq!(
        seq.num_classes, par.num_classes,
        "{tag} classes at {threads} threads"
    );
    assert_eq!(
        seq.fix.num_steps(),
        par.fix.num_steps(),
        "{tag} steps at {threads} threads"
    );
    assert_eq!(
        seq.fix.assignment(),
        par.fix.assignment(),
        "{tag} assignment at {threads} threads"
    );
}

/// Byte-compares two in-memory recorded streams; on divergence the
/// panic message carries the `obs::diff` first-divergence triage
/// (event index, kind, field-level delta, context), not just a length.
fn assert_streams_identical(tag: &str, threads: usize, seq: &[u8], par: &[u8]) {
    if seq == par {
        return;
    }
    let seq = std::str::from_utf8(seq).expect("stream is utf-8");
    let par = std::str::from_utf8(par).expect("stream is utf-8");
    let triage = match sharp_lll::obs::diff::diff_streams(seq, par, 3) {
        Some(d) => d.to_string(),
        None => "streams differ only in bytes outside any event line".to_string(),
    };
    panic!("{tag}: recorded sweep diverges at {threads} threads\n{triage}");
}

fn record<R>(run: impl FnOnce(&mut JsonlRecorder<Vec<u8>>) -> R) -> (R, Vec<u8>) {
    let mut rec = JsonlRecorder::new(Vec::new());
    let out = run(&mut rec);
    (out, rec.finish().expect("in-memory stream never fails"))
}

#[test]
fn plain_sweeps_match_reference() {
    for (name, inst) in rank2_families() {
        let seq = distributed_fixer2(&inst, 17, CriterionCheck::Enforce).expect("fixer2");
        assert!(seq.fix.is_success(), "{name} reference run succeeds");
        for threads in thread_counts() {
            let par = distributed_fixer2_parallel(&inst, 17, CriterionCheck::Enforce, threads)
                .expect("fixer2");
            assert_reports_agree(&format!("fixer2 on {name}"), threads, &seq, &par);
        }
    }
    for (name, inst) in rank3_families() {
        let seq = distributed_fixer3(&inst, 17, CriterionCheck::Enforce).expect("fixer3");
        assert!(seq.fix.is_success(), "{name} reference run succeeds");
        for threads in thread_counts() {
            let par = distributed_fixer3_parallel(&inst, 17, CriterionCheck::Enforce, threads)
                .expect("fixer3");
            assert_reports_agree(&format!("fixer3 on {name}"), threads, &seq, &par);
        }
    }
}

#[test]
fn recorded_sweeps_are_byte_identical() {
    for (name, inst) in rank2_families() {
        let (seq, seq_bytes) = record(|rec| {
            distributed_fixer2_recorded(&inst, 5, CriterionCheck::Enforce, 1, rec).expect("fixer2")
        });
        for threads in thread_counts() {
            let (par, par_bytes) = record(|rec| {
                distributed_fixer2_recorded(&inst, 5, CriterionCheck::Enforce, threads, rec)
                    .expect("fixer2")
            });
            assert_reports_agree(&format!("recorded fixer2 on {name}"), threads, &seq, &par);
            assert_streams_identical(
                &format!("recorded fixer2 on {name}"),
                threads,
                &seq_bytes,
                &par_bytes,
            );
        }
    }
    for (name, inst) in rank3_families() {
        let (seq, seq_bytes) = record(|rec| {
            distributed_fixer3_recorded(&inst, 5, CriterionCheck::Enforce, 1, rec).expect("fixer3")
        });
        for threads in thread_counts() {
            let (par, par_bytes) = record(|rec| {
                distributed_fixer3_recorded(&inst, 5, CriterionCheck::Enforce, threads, rec)
                    .expect("fixer3")
            });
            assert_reports_agree(&format!("recorded fixer3 on {name}"), threads, &seq, &par);
            assert_streams_identical(
                &format!("recorded fixer3 on {name}"),
                threads,
                &seq_bytes,
                &par_bytes,
            );
        }
    }
}

#[test]
fn audited_sweeps_match_reference() {
    for (name, inst) in rank2_families() {
        let p = inst.max_event_probability();
        let seq = distributed_fixer2_audited(&inst, 5, CriterionCheck::Enforce, 1, &p, &1e-9)
            .expect("audit passes at the true bound");
        for threads in thread_counts() {
            let par =
                distributed_fixer2_audited(&inst, 5, CriterionCheck::Enforce, threads, &p, &1e-9)
                    .expect("audit passes at the true bound");
            assert_reports_agree(&format!("audited fixer2 on {name}"), threads, &seq, &par);
        }
    }
    for (name, inst) in rank3_families() {
        let p = inst.max_event_probability();
        let seq = distributed_fixer3_audited(&inst, 5, CriterionCheck::Enforce, 1, &p, &1e-9)
            .expect("audit passes at the true bound");
        for threads in thread_counts() {
            let par =
                distributed_fixer3_audited(&inst, 5, CriterionCheck::Enforce, threads, &p, &1e-9)
                    .expect("audit passes at the true bound");
            assert_reports_agree(&format!("audited fixer3 on {name}"), threads, &seq, &par);
        }
    }
}

#[test]
fn audited_recorded_sweeps_are_byte_identical() {
    let (name, inst) = rank2_families().swap_remove(0);
    let p = inst.max_event_probability();
    let (seq, seq_bytes) = record(|rec| {
        distributed_fixer2_audited_recorded(&inst, 5, CriterionCheck::Enforce, 1, &p, &1e-9, rec)
            .expect("audit passes at the true bound")
    });
    for threads in thread_counts() {
        let (par, par_bytes) = record(|rec| {
            distributed_fixer2_audited_recorded(
                &inst,
                5,
                CriterionCheck::Enforce,
                threads,
                &p,
                &1e-9,
                rec,
            )
            .expect("audit passes at the true bound")
        });
        assert_reports_agree(
            &format!("audited recorded fixer2 on {name}"),
            threads,
            &seq,
            &par,
        );
        assert_streams_identical(
            &format!("audited recorded fixer2 on {name}"),
            threads,
            &seq_bytes,
            &par_bytes,
        );
    }
}

#[test]
fn audit_failures_are_identical_at_every_thread_count() {
    // An impossibly tight claimed bound must produce the *same*
    // `PStarViolated` error — same step, same variable, same violation
    // counts — no matter how many workers swept the class.
    let inst = rank2_instance(&ring(40), 3);
    let tight = inst.max_event_probability() / 2.0;
    let base = distributed_fixer2_audited(&inst, 5, CriterionCheck::Enforce, 1, &tight, &0.0)
        .expect_err("the true probability exceeds the claimed bound");
    assert!(matches!(base, DistError::Fixer(_)), "audit verdict error");
    for threads in thread_counts() {
        let err =
            distributed_fixer2_audited(&inst, 5, CriterionCheck::Enforce, threads, &tight, &0.0)
                .expect_err("the true probability exceeds the claimed bound");
        assert_eq!(
            format!("{base:?}"),
            format!("{err:?}"),
            "audit failure at {threads} threads"
        );
    }
}
