//! Cross-method integration: every solving method in the workspace —
//! the sharp-threshold fixers, the generic conditional-expectation
//! fallback, the auto-dispatcher, and all three Moser–Tardos variants —
//! run against the *same* instances and verified against each other.

use sharp_lll::core::dist::{distributed_fg, distributed_fixer3, CriterionCheck};
use sharp_lll::core::{solve_deterministically, Fixer2, Fixer3, Instance, InstanceBuilder};
use sharp_lll::graphs::gen::hyper_ring;
use sharp_lll::mt::dist::distributed_mt;
use sharp_lll::mt::{parallel_mt, sequential_mt};
use sharp_lll::numeric::Num;

fn ring_instance<T: Num>(n: usize, k: usize) -> Instance<T> {
    let mut b = InstanceBuilder::<T>::new(n);
    let vars: Vec<usize> = (0..n)
        .map(|i| b.add_uniform_variable(&[i, (i + 1) % n], k))
        .collect();
    for i in 0..n {
        let (l, r) = (vars[(i + n - 1) % n], vars[i]);
        b.set_event_predicate(i, move |vals| vals[l] == 0 && vals[r] == 0);
    }
    b.build().expect("valid instance")
}

fn hyper_instance<T: Num>(n: usize, k: usize) -> Instance<T> {
    let h = hyper_ring(n);
    let mut b = InstanceBuilder::<T>::new(n);
    let vars: Vec<usize> = (0..n)
        .map(|i| b.add_uniform_variable(h.edge(i).nodes(), k))
        .collect();
    for j in 0..n {
        let (x1, x2, x3) = (vars[(j + n - 2) % n], vars[(j + n - 1) % n], vars[j]);
        b.set_event_predicate(j, move |vals| {
            vals[x1] == 0 && vals[x2] == 0 && vals[x3] == 0
        });
    }
    b.build().expect("valid instance")
}

#[test]
fn every_method_solves_the_same_rank2_instance() {
    let inst = ring_instance::<f64>(36, 4); // p·2^d = 1/4
    let mut solutions = Vec::new();
    solutions.push((
        "fixer2",
        Fixer2::new(&inst)
            .unwrap()
            .run_default()
            .unwrap()
            .assignment()
            .to_vec(),
    ));
    solutions.push((
        "fixer3",
        Fixer3::new(&inst)
            .unwrap()
            .run_default()
            .unwrap()
            .assignment()
            .to_vec(),
    ));
    solutions.push((
        "auto",
        solve_deterministically(&inst)
            .unwrap()
            .assignment()
            .to_vec(),
    ));
    solutions.push((
        "mt-seq",
        sequential_mt(&inst, 1, 1 << 20).unwrap().assignment,
    ));
    solutions.push(("mt-par", parallel_mt(&inst, 1, 1 << 20).unwrap().assignment));
    solutions.push((
        "mt-msg",
        distributed_mt(&inst, 1, 1 << 20).unwrap().assignment,
    ));
    for (name, assignment) in solutions {
        assert!(
            inst.no_event_occurs(&assignment).unwrap(),
            "{name} produced a violating assignment"
        );
    }
}

#[test]
fn deterministic_methods_agree_on_rank3_applicability() {
    let inst = hyper_instance::<f64>(18, 3); // p·2^d = 16/27
    assert!(inst.satisfies_exponential_criterion());
    // The sharp machinery applies...
    let sharp = distributed_fixer3(&inst, 2, CriterionCheck::Enforce).unwrap();
    assert!(sharp.fix.is_success());
    // ...while the generic criterion refuses the same instance
    // (Enforce), yet its unchecked sweep still completes and the auto
    // dispatcher routes to the sharp fixer.
    assert!(distributed_fg(&inst, 2, CriterionCheck::Enforce).is_err());
    let auto = solve_deterministically(&inst).unwrap();
    assert!(auto.is_success());
}

#[test]
fn deterministic_and_randomized_agree_on_boundary_refusals() {
    // At the threshold: all deterministic guarantees off, randomization on.
    let inst = ring_instance::<f64>(24, 2); // p·2^d = 1
    assert!(solve_deterministically(&inst).is_err());
    let mt = sequential_mt(&inst, 7, 1 << 22).unwrap();
    assert!(inst.no_event_occurs(&mt.assignment).unwrap());
}

#[test]
fn methods_work_on_exact_backend_too() {
    use sharp_lll::numeric::BigRational;
    let inst = ring_instance::<BigRational>(12, 3);
    let report = solve_deterministically(&inst).unwrap();
    assert!(report.is_success());
    let d = distributed_fixer3(&inst, 0, CriterionCheck::Enforce).unwrap();
    assert!(d.fix.is_success());
}
