//! API-surface tests: error types display useful messages, common traits
//! are implemented (C-GOOD-ERR / C-COMMON-TRAITS), and the facade
//! re-exports compose.

use std::error::Error;

use sharp_lll::apps::AppError;
use sharp_lll::core::{BuildError, FixerError, InstanceBuilder};
use sharp_lll::graphs::{GenError, Graph, GraphError, HypergraphError};
use sharp_lll::local::SimError;
use sharp_lll::mt::MtError;
use sharp_lll::numeric::{BigInt, BigRational};

fn assert_error_contract<E: Error + Send + Sync + 'static>(err: E, needle: &str) {
    let msg = err.to_string();
    assert!(
        msg.contains(needle),
        "display {msg:?} should mention {needle:?}"
    );
    assert!(!msg.is_empty());
    assert!(
        !msg.ends_with('.'),
        "error messages are concise, no trailing period: {msg:?}"
    );
    // Boxable as dyn Error + Send + Sync (the common app requirement).
    let boxed: Box<dyn Error + Send + Sync> = Box::new(err);
    assert!(boxed.source().is_none());
}

#[test]
fn error_messages_are_meaningful() {
    assert_error_contract(GraphError::SelfLoop(3), "self loop");
    assert_error_contract(GraphError::NodeOutOfRange { node: 9, n: 4 }, "out of range");
    assert_error_contract(
        HypergraphError::RankTooLarge {
            edge: 1,
            rank: 5,
            max_rank: 3,
        },
        "rank 5",
    );
    assert_error_contract(GenError::RetriesExhausted, "retries");
    assert_error_contract(SimError::DuplicateIds, "not distinct");
    assert_error_contract(SimError::RoundLimitExceeded { limit: 7 }, "7");
    assert_error_contract(BuildError::EmptyAffects(2), "variable 2");
    assert_error_contract(BuildError::BadProbabilitySum(0), "sum to 1");
    assert_error_contract(
        FixerError::RankTooLarge {
            found: 4,
            supported: 3,
        },
        "rank-4",
    );
    assert_error_contract(
        FixerError::CriterionViolated {
            p_times_2_to_d: 1.5,
        },
        "1.5",
    );
    assert_error_contract(MtError::BudgetExhausted { budget: 9 }, "9");
    assert_error_contract(AppError::BadInput("because".to_owned()), "because");
    assert_error_contract("x1y".parse::<BigInt>().unwrap_err(), "x1y");
}

#[test]
fn common_traits_are_eagerly_implemented() {
    // Clone + PartialEq + Debug + Display on the value types.
    let r = BigRational::from_ratio(3, 4);
    let r2 = r.clone();
    assert_eq!(r, r2);
    assert_eq!(format!("{r}"), "3/4");
    assert!(format!("{r:?}").contains("3/4"));
    let i: BigInt = "-17".parse().unwrap();
    assert_eq!(format!("{i}"), "-17");
    assert_eq!(i, i.clone());
    // Ord on both number types.
    let mut v = [BigInt::from(3u8), BigInt::from(-5i8), BigInt::from(0u8)];
    v.sort();
    assert_eq!(v[0], BigInt::from(-5i8));
    // Default where it makes sense.
    assert_eq!(BigInt::default(), BigInt::zero());
    assert_eq!(BigRational::default(), BigRational::zero());
    assert_eq!(Graph::default_check(), 0);
}

/// Tiny helper exercising `Graph`'s common traits through a generic
/// bound (Clone + PartialEq + Debug must hold).
trait DefaultCheck {
    fn default_check() -> usize;
}

impl DefaultCheck for Graph {
    fn default_check() -> usize {
        fn needs_common<T: Clone + PartialEq + std::fmt::Debug>(t: &T) -> usize {
            let c = t.clone();
            assert_eq!(&c, t);
            format!("{t:?}").len().min(1)
        }
        needs_common(&Graph::empty(2)) - 1
    }
}

#[test]
fn facade_reexports_compose() {
    // One end-to-end flow written purely against the facade paths.
    let g = sharp_lll::graphs::gen::ring(12);
    let mut b = InstanceBuilder::<f64>::new(g.num_nodes());
    let vars: Vec<usize> = (0..g.num_edges())
        .map(|eid| {
            let (u, v) = g.edge(eid);
            b.add_uniform_variable(&[u, v], 3)
        })
        .collect();
    for v in 0..g.num_nodes() {
        let support: Vec<usize> = g.incident_edges(v).iter().map(|&e| vars[e]).collect();
        b.set_event_predicate(v, move |vals| support.iter().all(|&x| vals[x] == 0));
    }
    let inst = b.build().expect("valid");
    let summary = inst.summary();
    assert!(summary.exponential_criterion);
    assert!(summary.to_string().contains("sharp criterion:   true"));
    let report = sharp_lll::core::Fixer2::new(&inst)
        .expect("below threshold")
        .run_default()
        .expect("finite costs below the threshold");
    assert!(report.is_success());
}
