//! Cross-crate property tests: the paper's invariants under randomized
//! instance generation.

use proptest::prelude::*;
use sharp_lll::coloring::luby_mis;
use sharp_lll::core::triples::{decompose, is_representable, representability_score};
use sharp_lll::core::{audit_p_star, Fixer2, Fixer3, Instance, InstanceBuilder};
use sharp_lll::graphs::gen::{hyper_ring, ring};
use sharp_lll::graphs::Graph;
use sharp_lll::local::gather::GatherProgram;
use sharp_lll::local::Simulator;
use sharp_lll::numeric::BigRational;

fn q(n: i64, d: u64) -> BigRational {
    BigRational::from_ratio(n, d)
}

prop_compose! {
    /// A rational point in [0, 5)³ with small denominators.
    fn arb_triple()(a in 0i64..40, b in 0i64..40, c in 0i64..40) -> (BigRational, BigRational, BigRational) {
        (q(a, 8), q(b, 8), q(c, 8))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// S_rep is downward closed (shrinking coordinates keeps membership).
    #[test]
    fn s_rep_downward_closed((a, b, c) in arb_triple(), na in 1i64..8, nb in 1i64..8, nc in 1i64..8) {
        if is_representable(&a, &b, &c) {
            let (sa, sb, sc) = (
                &a * &q(na, 8),
                &b * &q(nb, 8),
                &c * &q(nc, 8),
            );
            prop_assert!(is_representable(&sa, &sb, &sc));
        }
    }

    /// Incurvedness (Lemma 3.7): segments between outside points stay
    /// outside.
    #[test]
    fn s_rep_incurved((a, b, c) in arb_triple(), (a2, b2, c2) in arb_triple(), t in 1i64..8) {
        prop_assume!(!is_representable(&a, &b, &c));
        prop_assume!(!is_representable(&a2, &b2, &c2));
        let lam = q(t, 8);
        let one = BigRational::one();
        let co = &one - &lam;
        let mid = (
            &(&a * &lam) + &(&a2 * &co),
            &(&b * &lam) + &(&b2 * &co),
            &(&c * &lam) + &(&c2 * &co),
        );
        prop_assert!(!is_representable(&mid.0, &mid.1, &mid.2));
    }

    /// Exact decompositions exist exactly on S_rep and verify exactly.
    #[test]
    fn decompose_iff_representable((a, b, c) in arb_triple()) {
        match decompose(&a, &b, &c) {
            Some(d) => {
                prop_assert!(is_representable(&a, &b, &c));
                prop_assert!(d.covers(&a, &b, &c, &BigRational::zero()));
                prop_assert_eq!(d.c2.clone() * d.c3.clone(), c);
            }
            None => prop_assert!(!is_representable(&a, &b, &c)),
        }
    }

    /// The score's sign decides membership (exact backend).
    #[test]
    fn score_sign_is_membership((a, b, c) in arb_triple()) {
        let score = representability_score(&a, &b, &c);
        prop_assert_eq!(score >= BigRational::zero(), is_representable(&a, &b, &c));
    }

    /// Theorem 1.1 as a property: random below-threshold rank-2
    /// instances are always fixed, whatever the (seeded) order.
    #[test]
    fn fixer2_always_succeeds_below_threshold(seed in 0u64..500, n in 6usize..14) {
        let g = ring(n);
        let inst = random_edge_instance(&g, seed);
        prop_assume!(inst.satisfies_exponential_criterion());
        let order = shuffled(inst.num_variables(), seed);
        let report = Fixer2::new(&inst)
            .expect("below threshold")
            .run(order)
            .expect("finite costs below the threshold");
        prop_assert!(report.is_success());
    }

    /// Theorem 1.3 as a property, with the exact P* audit at the end.
    #[test]
    fn fixer3_always_succeeds_below_threshold(seed in 0u64..200, n in 6usize..10) {
        let h = hyper_ring(n);
        let inst = random_hyper_instance(&h, seed);
        prop_assume!(inst.satisfies_exponential_criterion());
        let order = shuffled(inst.num_variables(), seed);
        let p = inst.max_event_probability();
        let mut fixer = Fixer3::new(&inst).expect("below threshold");
        for x in order {
            fixer.fix_variable(x).expect("exact costs are finite");
        }
        let audit = audit_p_star(&inst, fixer.partial(), fixer.phi(), &p, &BigRational::zero());
        prop_assert!(audit.holds());
        prop_assert!(fixer.into_report().is_success());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The weighted rank-2 lemma (Section 3.1 of the paper): for any
    /// distribution p over values y, any increase factors with
    /// expectation 1 per event, and any weights s + t ≤ 2, some value
    /// satisfies s·Inc_u(y) + t·Inc_v(y) ≤ 2. (Linearity of expectation
    /// — here checked on random data, exactly.)
    #[test]
    fn weighted_rank2_lemma(
        raw_p in prop::collection::vec(1i64..20, 2..6),
        raw_u in prop::collection::vec(0i64..20, 6),
        raw_v in prop::collection::vec(0i64..20, 6),
        s_num in 0i64..16,
    ) {
        let k = raw_p.len();
        let total: i64 = raw_p.iter().sum();
        let p: Vec<BigRational> = raw_p.iter().map(|&x| q(x, total as u64)).collect();
        // Inc with expectation exactly 1: normalize raw weights by their
        // p-expectation (guard against all-zero rows).
        let normalize = |raw: &[i64]| -> Option<Vec<BigRational>> {
            let mut exp = BigRational::zero();
            for (pi, &g) in p.iter().zip(raw) {
                exp = &exp + &(pi * &q(g, 1));
            }
            if exp.is_zero() {
                return None;
            }
            Some(raw.iter().map(|&g| &q(g, 1) / &exp).collect())
        };
        let (Some(inc_u), Some(inc_v)) = (normalize(&raw_u[..k]), normalize(&raw_v[..k])) else {
            return Ok(());
        };
        let s = q(s_num, 8);
        let t = &q(2, 1) - &s; // s + t = 2 (worst case)
        let best = (0..k)
            .map(|y| &(&s * &inc_u[y]) + &(&t * &inc_v[y]))
            .min()
            .expect("k >= 2");
        prop_assert!(best <= q(2, 1), "min weighted increase {best} > 2");
    }

    /// Lemma 3.9, contrapositive form: because S_rep is incurved, for
    /// every rank-3 variable (any distribution, any expectation-1
    /// increase factors) and every representable (a, b, c), some value's
    /// scaled triple stays representable — i.e. not all values are
    /// "(a,b,c)-evil".
    #[test]
    fn lemma_3_9_some_value_is_not_evil(
        raw_p in prop::collection::vec(1i64..20, 2..6),
        raw_u in prop::collection::vec(0i64..20, 6),
        raw_v in prop::collection::vec(0i64..20, 6),
        raw_w in prop::collection::vec(0i64..20, 6),
        ai in 0i64..32,
        bj in 0i64..32,
        cf in 0i64..8,
    ) {
        // Build a representable triple constructively: a + b <= 4, then
        // shrink a candidate c until it enters S_rep (downward closure;
        // c = 0 always qualifies).
        let a = q(ai, 8);
        let b = q((32 - ai).min(bj), 8);
        let mut c = &q(cf, 2) + &q(1, 4);
        for _ in 0..16 {
            if is_representable(&a, &b, &c) {
                break;
            }
            c = &c * &q(1, 2);
        }
        if !is_representable(&a, &b, &c) {
            c = BigRational::zero();
        }
        prop_assert!(is_representable(&a, &b, &c));
        let k = raw_p.len();
        let total: i64 = raw_p.iter().sum();
        let p: Vec<BigRational> = raw_p.iter().map(|&x| q(x, total as u64)).collect();
        let normalize = |raw: &[i64]| -> Option<Vec<BigRational>> {
            let mut exp = BigRational::zero();
            for (pi, &g) in p.iter().zip(raw) {
                exp = &exp + &(pi * &q(g, 1));
            }
            if exp.is_zero() {
                return None;
            }
            Some(raw.iter().map(|&g| &q(g, 1) / &exp).collect())
        };
        let (Some(iu), Some(iv), Some(iw)) =
            (normalize(&raw_u[..k]), normalize(&raw_v[..k]), normalize(&raw_w[..k]))
        else {
            return Ok(());
        };
        let good = (0..k).any(|y| {
            is_representable(&(&iu[y] * &a), &(&iv[y] * &b), &(&iw[y] * &c))
        });
        prop_assert!(good, "every value was evil for ({a}, {b}, {c})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Metamorphic equivariance: relabeling the graph's nodes by a
    /// random permutation (carrying the ids along) must permute the
    /// outputs of a LOCAL algorithm and change nothing else — round
    /// bills included — under both round engines. Checks the gather
    /// primitive (ball contents are id-based, so corresponding nodes
    /// get *equal* balls) and Luby MIS (membership is a function of ids
    /// and topology only, not of node numbering or worker count).
    #[test]
    fn local_outputs_are_equivariant_under_relabeling(
        n in 4usize..24,
        perm_seed in 0u64..1000,
        id_seed in 0u64..1000,
        threads in 2usize..6,
    ) {
        let g = ring(n);
        let perm = shuffled(n, perm_seed);
        let h = relabel(&g, &perm);
        let ids: Vec<u64> = shuffled(n, id_seed).iter().map(|&x| x as u64).collect();
        let mut hids = vec![0u64; n];
        for v in 0..n {
            hids[perm[v]] = ids[v];
        }
        let gsim = Simulator::with_ids(&g, ids).expect("ids are a permutation").seed(3);
        let hsim = Simulator::with_ids(&h, hids).expect("ids are a permutation").seed(3);
        for t in [1usize, threads] {
            let gb = gsim.run_parallel(t, |_| GatherProgram::new(2), 4).expect("gather");
            let hb = hsim.run_parallel(t, |_| GatherProgram::new(2), 4).expect("gather");
            for (v, &pv) in perm.iter().enumerate() {
                prop_assert_eq!(&gb.outputs[v], &hb.outputs[pv], "ball of node {}", v);
            }
            prop_assert_eq!(gb.rounds, hb.rounds);
            prop_assert_eq!(gb.messages, hb.messages);
            let gm = luby_mis(&gsim.clone().threads(t), 7).expect("mis");
            let hm = luby_mis(&hsim.clone().threads(t), 7).expect("mis");
            for (v, &pv) in perm.iter().enumerate() {
                prop_assert_eq!(gm.in_mis[v], hm.in_mis[pv], "membership of node {}", v);
            }
            prop_assert_eq!(gm.rounds, hm.rounds);
        }
    }
}

/// Renames node `v` to `perm[v]`, keeping the edge set.
fn relabel(g: &Graph, perm: &[usize]) -> Graph {
    Graph::from_edges(
        g.num_nodes(),
        g.edges().iter().map(|&(u, v)| (perm[u], perm[v])),
    )
    .expect("relabeled graph is valid")
}

fn shuffled(m: usize, seed: u64) -> Vec<usize> {
    use rand::seq::SliceRandom;
    use rand::{rngs::StdRng, SeedableRng};
    let mut o: Vec<usize> = (0..m).collect();
    o.shuffle(&mut StdRng::seed_from_u64(seed));
    o
}

/// Random rank-2 instance on the edges of `g`: 4-valued variables —
/// uniform or biased (1/10, 2/10, 3/10, 4/10) — with events occurring
/// on one random joint value. On a ring (`deg = d = 2`) the criterion
/// value is at most `(4/10)²·4 = 0.64 < 1`, so the generated instances
/// are below the threshold *by construction*.
fn random_edge_instance(g: &sharp_lll::graphs::Graph, seed: u64) -> Instance<BigRational> {
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = InstanceBuilder::<BigRational>::new(g.num_nodes());
    let vars: Vec<usize> = (0..g.num_edges())
        .map(|eid| {
            let (u, v) = g.edge(eid);
            let probs = if rng.random::<bool>() {
                vec![q(1, 4), q(1, 4), q(1, 4), q(1, 4)]
            } else {
                vec![q(1, 10), q(2, 10), q(3, 10), q(4, 10)]
            };
            b.add_variable(&[u, v], probs)
        })
        .collect();
    for v in 0..g.num_nodes() {
        let support: Vec<usize> = g.incident_edges(v).iter().map(|&e| vars[e]).collect();
        let pattern: Vec<usize> = support
            .iter()
            .map(|_| rng.random_range(0..4usize))
            .collect();
        let sp: Vec<(usize, usize)> = support.into_iter().zip(pattern).collect();
        b.set_event_predicate(v, move |vals| sp.iter().all(|&(x, want)| vals[x] == want));
    }
    b.build().expect("valid instance")
}

/// Random rank-3 instance on the hyperedges of `h`: 3-valued variables,
/// events occur on one random joint value (p = 3^-deg).
fn random_hyper_instance(h: &sharp_lll::graphs::Hypergraph, seed: u64) -> Instance<BigRational> {
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = InstanceBuilder::<BigRational>::new(h.num_nodes());
    let vars: Vec<usize> = (0..h.num_edges())
        .map(|i| b.add_uniform_variable(h.edge(i).nodes(), 3))
        .collect();
    for v in 0..h.num_nodes() {
        let support: Vec<usize> = h.incident(v).iter().map(|&i| vars[i]).collect();
        let pattern: Vec<usize> = support
            .iter()
            .map(|_| rng.random_range(0..3usize))
            .collect();
        let sp: Vec<(usize, usize)> = support.into_iter().zip(pattern).collect();
        b.set_event_predicate(v, move |vals| sp.iter().all(|&(x, want)| vals[x] == want));
    }
    b.build().expect("valid instance")
}
