//! End-to-end pipelines across every crate: graph generation → LLL
//! instance → LOCAL coloring → scheduled deterministic fixing →
//! verification, plus the randomized baseline on the same inputs.

use sharp_lll::apps::hyper_orientation::{
    heads_from_assignment, hyper_orientation_instance, is_valid_orientation,
};
use sharp_lll::apps::sat::{ring_formula, solve};
use sharp_lll::apps::sinkless::{
    is_sinkless, orientation_from_assignment, sinkless_orientation_instance,
};
use sharp_lll::apps::weak_splitting::{is_weak_splitting, weak_splitting_instance};
use sharp_lll::coloring::{distance2_coloring, edge_coloring, vertex_coloring};
use sharp_lll::core::dist::{distributed_fixer3, CriterionCheck};
use sharp_lll::graphs::gen::{
    hyper_ring, random_3_uniform, random_bipartite_biregular, random_regular, torus,
};
use sharp_lll::local::Simulator;
use sharp_lll::mt::{parallel_mt, sequential_mt};

#[test]
fn coloring_pipeline_on_generated_graphs() {
    for seed in 0..3u64 {
        let g = random_regular(60, 4, seed).expect("feasible parameters");
        let sim = Simulator::with_shuffled_ids(&g, seed);
        let vc = vertex_coloring(&sim, 10_000).expect("converges");
        assert!(g.is_proper_coloring(&vc.colors));
        assert_eq!(vc.palette, 5);
        let ec = edge_coloring(&sim, 10_000).expect("converges");
        assert!(g.is_proper_edge_coloring(&ec.colors));
        let d2 = distance2_coloring(&sim, 10_000).expect("converges");
        assert!(g.is_distance2_coloring(&d2.colors));
    }
}

#[test]
fn hypergraph_orientation_full_pipeline() {
    for seed in 0..3u64 {
        let h = random_3_uniform(24, 3, seed).expect("feasible parameters");
        let inst = hyper_orientation_instance::<f64>(&h).expect("valid input");
        assert!(inst.satisfies_exponential_criterion());
        let rep =
            distributed_fixer3(&inst, seed, CriterionCheck::Enforce).expect("below threshold");
        assert!(rep.fix.is_success(), "seed {seed}");
        let heads = heads_from_assignment(&h, rep.fix.assignment());
        assert!(is_valid_orientation(&h, &heads), "seed {seed}");
        // The randomized baseline agrees this is solvable.
        let mt = parallel_mt(&inst, seed, 1_000_000).expect("converges");
        let mt_heads = heads_from_assignment(&h, &mt.assignment);
        assert!(is_valid_orientation(&h, &mt_heads));
    }
}

#[test]
fn weak_splitting_full_pipeline() {
    let bip = random_bipartite_biregular(30, 3, 30, 3, 4).expect("feasible parameters");
    let inst = weak_splitting_instance::<f64>(&bip, 30, 16).expect("valid input");
    let rep = distributed_fixer3(&inst, 1, CriterionCheck::Enforce).expect("below threshold");
    assert!(rep.fix.is_success());
    assert!(is_weak_splitting(&bip, 30, rep.fix.assignment(), 2));
}

#[test]
fn sat_pipeline_and_mt_cross_check() {
    let cnf = ring_formula(30, 5, 2);
    let det = solve(&cnf).expect("inside the regime");
    assert!(cnf.is_satisfied(&det));
    // Moser–Tardos finds a (generally different) satisfying assignment.
    let inst = cnf.to_instance::<f64>().expect("well-formed");
    let mt = sequential_mt(&inst, 2, 1_000_000).expect("converges");
    let mt_assignment: Vec<bool> = mt.assignment.iter().map(|&v| v == 1).collect();
    assert!(cnf.is_satisfied(&mt_assignment));
}

#[test]
fn boundary_problem_randomized_only() {
    let g = torus(6, 6);
    let inst = sinkless_orientation_instance::<f64>(&g).expect("no isolated nodes");
    // Deterministic guarantee refused at the threshold...
    assert!(sharp_lll::core::Fixer2::new(&inst).is_err());
    // ...randomization succeeds.
    let mt = parallel_mt(&inst, 8, 1_000_000).expect("classic criterion holds for d = 4");
    let orientation = orientation_from_assignment(&g, &mt.assignment);
    assert!(is_sinkless(&g, &orientation));
}

#[test]
fn hyper_ring_all_seeds_and_both_drivers() {
    let h = hyper_ring(20);
    let inst = hyper_orientation_instance::<f64>(&h).expect("valid input");
    for seed in 0..4u64 {
        let rep =
            distributed_fixer3(&inst, seed, CriterionCheck::Enforce).expect("below threshold");
        assert!(rep.fix.is_success(), "seed {seed}");
        // Round bill sanity: coloring rounds dominate, classes > 0.
        assert!(rep.coloring_rounds > 0);
        assert!(rep.num_classes > 0);
        assert_eq!(rep.rounds, rep.coloring_rounds + 2 * rep.num_classes);
    }
}
