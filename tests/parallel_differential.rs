//! Differential battery: the parallel round engine must be bit-for-bit
//! identical to the sequential reference engine — outputs, round bill
//! and message bill — for every program in the workspace, on every
//! topology, at every worker count.
//!
//! Coverage: hand-written probe programs (an arithmetic aggregator, a
//! never-communicating program, ball gathering at radii 0..=3), the
//! coloring stack (Linial, Cole–Vishkin, vertex/edge/distance-2
//! reductions, Luby MIS with its per-node RNGs), and the paper's
//! distributed drivers (rank-2/rank-3 fixers, honest Moser–Tardos).
//!
//! Worker counts default to `{1, 2, 3, 8}`; CI overrides the list via
//! `LLL_DIFF_THREADS` (comma-separated) to pin a single count per job.

use std::env;

use sharp_lll::coloring::{
    cole_vishkin_ring, distance2_coloring, edge_coloring, linial_coloring, luby_mis,
    vertex_coloring, LubyProgram,
};
use sharp_lll::core::dist::{
    distributed_fixer2, distributed_fixer2_parallel, distributed_fixer3,
    distributed_fixer3_parallel, CriterionCheck,
};
use sharp_lll::core::{Instance, InstanceBuilder};
use sharp_lll::graphs::gen::{hyper_ring, path, random_regular, ring};
use sharp_lll::graphs::Graph;
use sharp_lll::local::gather::GatherProgram;
use sharp_lll::local::{broadcast, NodeContext, NodeProgram, RoundResult, Simulator};
use sharp_lll::mt::dist::{distributed_mt, distributed_mt_parallel};
use sharp_lll::numeric::Num;

/// Worker counts to exercise; `LLL_DIFF_THREADS=2` (or `1,2,3,8`, …)
/// overrides, so CI can run the battery once per pinned count.
fn thread_counts() -> Vec<usize> {
    match env::var("LLL_DIFF_THREADS") {
        Ok(list) => list
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .expect("LLL_DIFF_THREADS is a comma-separated list of positive integers")
            })
            .collect(),
        Err(_) => vec![1, 2, 3, 8],
    }
}

/// Rings, a random regular graph, a star and paths: regular topologies,
/// a hub whose shard is heavier than everyone else's, and degree-1
/// endpoints that halt early.
fn test_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("ring(3)", ring(3)),
        ("ring(17)", ring(17)),
        ("ring(64)", ring(64)),
        (
            "4-regular(48)",
            random_regular(48, 4, 11).expect("generator succeeds"),
        ),
        (
            "star(9)",
            Graph::from_edges(9, (1..9).map(|i| (0, i))).expect("valid star"),
        ),
        ("path(2)", path(2)),
        ("path(13)", path(13)),
    ]
}

/// Runs `make` through both engines and asserts the full outcome
/// (outputs, rounds, messages) matches at every worker count. On a
/// mismatch, both engines are re-run with a flight recorder and the
/// failure message carries the `obs::diff` first-divergence triage
/// (event index, kind, field-level delta, context) instead of only the
/// aggregate that happened to differ.
fn assert_engines_agree<P, F>(name: &str, sim: &Simulator<'_>, make: F, max_rounds: usize)
where
    P: NodeProgram + Send,
    P::Message: Send + Sync,
    P::Output: Send + PartialEq + std::fmt::Debug,
    F: Fn(&NodeContext) -> P,
{
    let reference = sim.run(|ctx| make(ctx), max_rounds).expect("reference run");
    for threads in thread_counts() {
        let par = sim
            .run_parallel(threads, |ctx| make(ctx), max_rounds)
            .expect("parallel run");
        if reference.outputs != par.outputs
            || reference.rounds != par.rounds
            || reference.messages != par.messages
        {
            let record = |run: &dyn Fn(&mut sharp_lll::obs::JsonlRecorder<Vec<u8>>)| {
                let mut rec = sharp_lll::obs::JsonlRecorder::new(Vec::new());
                run(&mut rec);
                String::from_utf8(rec.finish().expect("in-memory stream never fails"))
                    .expect("stream is utf-8")
            };
            let seq_stream = record(&|rec| {
                let _ = sim.run_recorded(|ctx| make(ctx), max_rounds, rec);
            });
            let par_stream = record(&|rec| {
                let _ = sim.run_parallel_recorded(threads, |ctx| make(ctx), max_rounds, rec);
            });
            let triage = match sharp_lll::obs::diff::diff_streams(&seq_stream, &par_stream, 3) {
                Some(d) => d.to_string(),
                None => "event streams agree; outcome aggregation diverged".to_string(),
            };
            panic!(
                "{name}: engines diverge at {threads} threads \
                 (rounds {} vs {}, messages {} vs {})\n{triage}",
                reference.rounds, par.rounds, reference.messages, par.messages
            );
        }
    }
}

/// Aggregator probe: floods ids for `ttl` rounds, halts with the
/// running sum of everything heard (exercises multi-round message flow
/// and an order-independent reduction at every node).
#[derive(Debug, Clone)]
struct Pulse {
    ttl: usize,
    acc: u64,
}

impl NodeProgram for Pulse {
    type Message = u64;
    type Output = u64;

    fn init(&mut self, ctx: &mut NodeContext) -> Vec<Option<u64>> {
        self.acc = ctx.id;
        broadcast(ctx.id, ctx.degree)
    }

    fn round(&mut self, ctx: &mut NodeContext, inbox: &[Option<u64>]) -> RoundResult<u64, u64> {
        for msg in inbox.iter().flatten() {
            self.acc = self.acc.wrapping_add(*msg);
        }
        self.ttl -= 1;
        if self.ttl == 0 {
            RoundResult::Halt(self.acc)
        } else {
            RoundResult::Continue(broadcast(self.acc, ctx.degree))
        }
    }
}

/// Probe that never communicates: both engines must bill zero rounds.
#[derive(Debug, Clone)]
struct Mute;

impl NodeProgram for Mute {
    type Message = ();
    type Output = u64;

    fn init(&mut self, ctx: &mut NodeContext) -> Vec<Option<()>> {
        vec![None; ctx.degree]
    }

    fn round(&mut self, ctx: &mut NodeContext, _inbox: &[Option<()>]) -> RoundResult<(), u64> {
        RoundResult::Halt(ctx.id * 2)
    }
}

#[test]
fn probe_programs_match_across_engines() {
    for (name, g) in test_graphs() {
        let sim = Simulator::with_shuffled_ids(&g, 42);
        for ttl in [1usize, 2, 5] {
            assert_engines_agree(
                &format!("pulse(ttl={ttl}) on {name}"),
                &sim,
                |_| Pulse { ttl, acc: 0 },
                ttl + 2,
            );
        }
        assert_engines_agree(&format!("mute on {name}"), &sim, |_| Mute, 4);
    }
}

#[test]
fn gather_matches_across_engines_at_all_radii() {
    for (name, g) in test_graphs() {
        let sim = Simulator::with_shuffled_ids(&g, 7);
        for radius in [0usize, 1, 2, 3] {
            assert_engines_agree(
                &format!("gather(r={radius}) on {name}"),
                &sim,
                |_| GatherProgram::new(radius),
                radius + 2,
            );
        }
    }
}

#[test]
fn luby_program_matches_across_engines() {
    // Program-level: per-node RNG streams must be identical under both
    // engines (seeded from the node id, not from execution order).
    for (name, g) in test_graphs() {
        let sim = Simulator::with_shuffled_ids(&g, 23).seed(5);
        assert_engines_agree(
            &format!("luby(12 iters) on {name}"),
            &sim,
            |_| LubyProgram::new(12),
            64,
        );
    }
}

#[test]
fn coloring_drivers_match_across_engines() {
    // Driver-level: the `threads` knob on the simulator must not change
    // any field of the returned `Coloring`.
    for (name, g) in test_graphs() {
        let sim = Simulator::with_shuffled_ids(&g, 3);
        let budget = 10_000 + 4 * g.num_nodes();
        let linial = linial_coloring(&sim, budget).expect("linial");
        let vertex = vertex_coloring(&sim, budget).expect("vertex");
        let dist2 = distance2_coloring(&sim, budget).expect("distance2");
        let edge = (g.num_edges() > 0).then(|| edge_coloring(&sim, budget).expect("edge"));
        for threads in thread_counts() {
            let psim = sim.clone().threads(threads);
            assert_eq!(
                linial,
                linial_coloring(&psim, budget).expect("linial"),
                "linial on {name} at {threads} threads"
            );
            assert_eq!(
                vertex,
                vertex_coloring(&psim, budget).expect("vertex"),
                "vertex on {name} at {threads} threads"
            );
            assert_eq!(
                dist2,
                distance2_coloring(&psim, budget).expect("distance2"),
                "distance2 on {name} at {threads} threads"
            );
            if let Some(edge) = &edge {
                assert_eq!(
                    *edge,
                    edge_coloring(&psim, budget).expect("edge"),
                    "edge on {name} at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn cole_vishkin_matches_across_engines() {
    for n in [3usize, 8, 65, 257] {
        let g = ring(n);
        let sim = Simulator::with_shuffled_ids(&g, n as u64);
        let reference = cole_vishkin_ring(&sim, 10_000).expect("cv");
        for threads in thread_counts() {
            let par = cole_vishkin_ring(&sim.clone().threads(threads), 10_000).expect("cv");
            assert_eq!(
                reference, par,
                "cole-vishkin ring({n}) at {threads} threads"
            );
        }
    }
}

#[test]
fn mis_driver_matches_across_engines() {
    for (name, g) in test_graphs() {
        let sim = Simulator::with_shuffled_ids(&g, 13);
        let reference = luby_mis(&sim, 99).expect("mis");
        for threads in thread_counts() {
            let par = luby_mis(&sim.clone().threads(threads), 99).expect("mis");
            assert_eq!(reference, par, "luby_mis on {name} at {threads} threads");
        }
    }
}

fn ring_instance<T: Num>(n: usize, k: usize) -> Instance<T> {
    let mut b = InstanceBuilder::<T>::new(n);
    let vars: Vec<usize> = (0..n)
        .map(|i| b.add_uniform_variable(&[i, (i + 1) % n], k))
        .collect();
    for i in 0..n {
        let (l, r) = (vars[(i + n - 1) % n], vars[i]);
        b.set_event_predicate(i, move |vals| vals[l] == 0 && vals[r] == 0);
    }
    b.build().expect("valid instance")
}

fn hyper_instance<T: Num>(n: usize, k: usize) -> Instance<T> {
    let h = hyper_ring(n);
    let mut b = InstanceBuilder::<T>::new(n);
    let vars: Vec<usize> = (0..n)
        .map(|i| b.add_uniform_variable(h.edge(i).nodes(), k))
        .collect();
    for j in 0..n {
        let (x1, x2, x3) = (vars[(j + n - 2) % n], vars[(j + n - 1) % n], vars[j]);
        b.set_event_predicate(j, move |vals| {
            vals[x1] == 0 && vals[x2] == 0 && vals[x3] == 0
        });
    }
    b.build().expect("valid instance")
}

#[test]
fn fixer_drivers_match_across_engines() {
    let inst2 = ring_instance::<f64>(72, 3);
    let inst3 = hyper_instance::<f64>(48, 3);
    let r2 = distributed_fixer2(&inst2, 17, CriterionCheck::Enforce).expect("fixer2");
    let r3 = distributed_fixer3(&inst3, 17, CriterionCheck::Enforce).expect("fixer3");
    for threads in thread_counts() {
        let p2 = distributed_fixer2_parallel(&inst2, 17, CriterionCheck::Enforce, threads)
            .expect("fixer2");
        let p3 = distributed_fixer3_parallel(&inst3, 17, CriterionCheck::Enforce, threads)
            .expect("fixer3");
        for (tag, seq, par) in [("fixer2", &r2, &p2), ("fixer3", &r3, &p3)] {
            assert_eq!(seq.rounds, par.rounds, "{tag} rounds at {threads} threads");
            assert_eq!(
                seq.coloring_rounds, par.coloring_rounds,
                "{tag} coloring rounds at {threads} threads"
            );
            assert_eq!(
                seq.num_classes, par.num_classes,
                "{tag} classes at {threads} threads"
            );
            assert_eq!(
                seq.fix.assignment(),
                par.fix.assignment(),
                "{tag} assignment at {threads} threads"
            );
        }
    }
}

#[test]
fn mt_driver_matches_across_engines() {
    let inst = ring_instance::<f64>(56, 4);
    let reference = distributed_mt(&inst, 31, 1 << 20).expect("mt");
    for threads in thread_counts() {
        let par = distributed_mt_parallel(&inst, 31, 1 << 20, threads).expect("mt");
        assert_eq!(reference, par, "distributed MT at {threads} threads");
    }
}
