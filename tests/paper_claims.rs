//! Executable statements of the paper's claims, spanning all crates.
//!
//! Each test names the theorem/lemma/corollary it exercises.

use sharp_lll::apps::sinkless::sinkless_orientation_instance;
use sharp_lll::core::dist::{distributed_fixer2, distributed_fixer3, CriterionCheck};
use sharp_lll::core::triples::{decompose, f_surface, is_representable};
use sharp_lll::core::{audit_p_star, Fixer2, Fixer3, FixerError, Instance, InstanceBuilder};
use sharp_lll::graphs::gen::{hyper_ring, random_3_uniform, random_regular, ring, torus};
use sharp_lll::local::log_star;
use sharp_lll::numeric::{BigRational, Num};

fn q(n: i64, d: u64) -> BigRational {
    BigRational::from_ratio(n, d)
}

/// One fair k-valued variable per edge; event at node v occurs iff all
/// incident variables take value 0: p = k^-deg, d = Δ.
fn edge_instance<T: Num>(g: &sharp_lll::graphs::Graph, k: usize) -> Instance<T> {
    let mut b = InstanceBuilder::<T>::new(g.num_nodes());
    let vars: Vec<usize> = (0..g.num_edges())
        .map(|eid| {
            let (u, v) = g.edge(eid);
            b.add_uniform_variable(&[u, v], k)
        })
        .collect();
    for v in 0..g.num_nodes() {
        let support: Vec<usize> = g.incident_edges(v).iter().map(|&e| vars[e]).collect();
        b.set_event_predicate(v, move |vals| support.iter().all(|&x| vals[x] == 0));
    }
    b.build().expect("valid instance")
}

/// One fair k-valued variable per hyperedge; event at node v occurs iff
/// all incident variables take value 0.
fn hyperedge_instance<T: Num>(h: &sharp_lll::graphs::Hypergraph, k: usize) -> Instance<T> {
    let mut b = InstanceBuilder::<T>::new(h.num_nodes());
    let vars: Vec<usize> = (0..h.num_edges())
        .map(|i| b.add_uniform_variable(h.edge(i).nodes(), k))
        .collect();
    for v in 0..h.num_nodes() {
        let support: Vec<usize> = h.incident(v).iter().map(|&i| vars[i]).collect();
        b.set_event_predicate(v, move |vals| support.iter().all(|&x| vals[x] == 0));
    }
    b.build().expect("valid instance")
}

#[test]
fn theorem_1_1_rank2_fixing_below_threshold() {
    // p < 2^-d and rank <= 2 ⇒ the sequential process avoids all events,
    // in any order. k = 3 on Δ-regular graphs gives p·2^d = (2/3)^Δ < 1.
    for (name, g) in [
        ("ring", ring(24)),
        ("torus", torus(4, 5)),
        ("5-regular", random_regular(24, 5, 1).expect("feasible")),
    ] {
        let inst = edge_instance::<BigRational>(&g, 3);
        assert!(inst.satisfies_exponential_criterion(), "{name}");
        for seed in 0..3u64 {
            let order = {
                use rand::seq::SliceRandom;
                use rand::{rngs::StdRng, SeedableRng};
                let mut o: Vec<usize> = (0..inst.num_variables()).collect();
                o.shuffle(&mut StdRng::seed_from_u64(seed));
                o
            };
            let report = Fixer2::new(&inst)
                .expect("below threshold")
                .run(order)
                .expect("finite costs below the threshold");
            assert!(report.is_success(), "{name}, seed {seed}");
        }
    }
}

#[test]
fn theorem_1_3_rank3_fixing_below_threshold_with_exact_p_star() {
    let h = hyper_ring(10);
    let inst = hyperedge_instance::<BigRational>(&h, 3); // p = 1/27, d = 4
    assert_eq!(inst.criterion_value(), q(16, 27));
    let p = inst.max_event_probability();
    let mut fixer = Fixer3::new(&inst).expect("below threshold");
    for x in 0..inst.num_variables() {
        fixer.fix_variable(x).expect("exact costs are finite");
        let audit = audit_p_star(
            &inst,
            fixer.partial(),
            fixer.phi(),
            &p,
            &BigRational::zero(),
        );
        assert!(audit.holds(), "P* violated after variable {x}: {audit:?}");
    }
    assert!(fixer.invariant_intact());
    assert!(fixer.into_report().is_success());
}

#[test]
fn lemma_3_5_characterization_spot_checks() {
    // Representability ⇔ a+b ≤ 4 ∧ c ≤ f(a,b); check exact membership
    // against the closed-form surface at rational points.
    for (a, b) in [(0.5f64, 0.5), (1.0, 2.0), (2.5, 1.0), (0.25, 3.5)] {
        let f = f_surface(a, b);
        let (qa, qb) = (
            BigRational::from_f64(a).expect("finite"),
            BigRational::from_f64(b).expect("finite"),
        );
        let below = BigRational::from_f64(f - 1e-9).expect("finite");
        let above = BigRational::from_f64(f + 1e-9).expect("finite");
        assert!(
            is_representable(&qa, &qb, &below),
            "({a},{b}) just below surface"
        );
        assert!(
            !is_representable(&qa, &qb, &above),
            "({a},{b}) just above surface"
        );
    }
}

#[test]
fn definition_3_3_decompositions_witness_membership() {
    // Every exact decomposition must reproduce the triple exactly and
    // satisfy the pair-sum constraints — over a rational grid.
    for i in 0..=6i64 {
        for j in 0..=6i64 {
            for l in 0..=6i64 {
                let (a, b, c) = (q(i, 2), q(j, 2), q(l, 2));
                let member = is_representable(&a, &b, &c);
                match decompose(&a, &b, &c) {
                    Some(d) => {
                        assert!(member, "decompose succeeded outside S_rep at ({a},{b},{c})");
                        assert!(d.covers(&a, &b, &c, &BigRational::zero()));
                    }
                    None => assert!(!member, "decompose failed inside S_rep at ({a},{b},{c})"),
                }
            }
        }
    }
}

#[test]
fn corollary_1_2_rounds_do_not_grow_with_n() {
    let sizes = [512usize, 4096, 32768];
    let mut rounds = Vec::new();
    for &n in &sizes {
        let g = ring(n);
        let inst = edge_instance::<f64>(&g, 3);
        let rep = distributed_fixer2(&inst, 9, CriterionCheck::Enforce).expect("below threshold");
        assert!(rep.fix.is_success());
        rounds.push(rep.rounds);
    }
    let slack = 2 * (log_star(32768) - log_star(512)) as usize + 4;
    assert!(
        rounds[2] <= rounds[0] + slack,
        "rounds {rounds:?} grew faster than log* over {sizes:?}"
    );
}

#[test]
fn corollary_1_4_rounds_do_not_grow_with_n() {
    let sizes = [1024usize, 8192];
    let mut rounds = Vec::new();
    for &n in &sizes {
        let h = hyper_ring(n);
        let inst = hyperedge_instance::<f64>(&h, 3);
        let rep = distributed_fixer3(&inst, 9, CriterionCheck::Enforce).expect("below threshold");
        assert!(rep.fix.is_success());
        rounds.push(rep.rounds);
    }
    let slack = 2 * (log_star(8192) - log_star(1024)) as usize + 4;
    assert!(
        rounds[1] <= rounds[0] + slack,
        "rounds {rounds:?} grew faster than log*"
    );
}

#[test]
fn corollaries_1_2_and_1_4_rounds_fit_the_d2_log_star_envelope() {
    // The paper's runtime is O(d² + log* n) LOCAL rounds. Pin the
    // reproduction to a concrete envelope A·d² + B·log* n + C with
    // recorded constants, across both the rank-2 ring family (d = 2)
    // and the rank-3 hyper-ring family (d = 4): any regression that
    // inflates the round bill — in the schedule coloring or in the
    // class sweep — trips this before it shows up in EXPERIMENTS.md.
    // Calibrated on the seed revision: rank-2 rings sit flat at 55
    // rounds (48 of them the edge coloring); rank-3 hyper-rings plateau
    // at 580 from n = 1024 on (562 of them the distance-2 coloring —
    // the palette reduction dominates, and stays n-independent past
    // the plateau per `corollary_1_4_rounds_do_not_grow_with_n`).
    const A: usize = 35;
    const B: usize = 3;
    const C: usize = 24;
    for &n in &[256usize, 1024, 4096] {
        let inst = edge_instance::<f64>(&ring(n), 3); // d = 2
        let rep = distributed_fixer2(&inst, 9, CriterionCheck::Enforce).expect("below threshold");
        assert!(rep.fix.is_success());
        let bound = A * 4 + B * log_star(n as u64) as usize + C;
        println!("fixer2 ring({n}): rounds = {}, bound = {bound}", rep.rounds);
        assert!(
            rep.rounds <= bound,
            "rank-2 rounds {} exceed the envelope {bound} at n = {n}",
            rep.rounds
        );
    }
    for &n in &[256usize, 1024] {
        let inst = hyperedge_instance::<f64>(&hyper_ring(n), 3); // d = 4
        let rep = distributed_fixer3(&inst, 9, CriterionCheck::Enforce).expect("below threshold");
        assert!(rep.fix.is_success());
        let bound = A * 16 + B * log_star(n as u64) as usize + C;
        println!(
            "fixer3 hyper_ring({n}): rounds = {} (coloring {}, classes {}), bound = {bound}",
            rep.rounds, rep.coloring_rounds, rep.num_classes
        );
        assert!(
            rep.rounds <= bound,
            "rank-3 rounds {} exceed the envelope {bound} at n = {n}",
            rep.rounds
        );
    }
}

#[test]
fn mt_rounds_stay_polylogarithmic_at_the_threshold() {
    // The flip side of the sharp threshold: at p·2^d = 1 (sinkless
    // orientation) the deterministic guarantee is gone, but randomized
    // Moser–Tardos still solves in polylog rounds. Pin the honest
    // message-passing MT round bill to K·log² n + C on the
    // sinkless-orientation family.
    const K: f64 = 2.0;
    const C: f64 = 30.0;
    for &n in &[32usize, 128, 512] {
        let g = random_regular(n, 4, 21).expect("feasible parameters");
        let inst = sinkless_orientation_instance::<f64>(&g).expect("no isolated nodes");
        let rep = sharp_lll::mt::dist::distributed_mt(&inst, 17, 1 << 20).expect("MT solves");
        assert!(inst
            .no_event_occurs(&rep.assignment)
            .expect("full assignment"));
        let lg = (n as f64).log2();
        println!("MT sinkless({n}): local rounds = {}", rep.rounds);
        assert!(
            (rep.rounds as f64) <= K * lg * lg + C,
            "MT round bill {} exceeds {K}·log²({n}) + {C}",
            rep.rounds
        );
    }
}

#[test]
fn sinkless_orientation_sits_exactly_at_the_threshold() {
    // The paper's boundary witness: p·2^d = 1 on regular graphs, and the
    // deterministic guarantee is refused.
    let g = random_regular(32, 4, 5).expect("feasible");
    let inst = sinkless_orientation_instance::<BigRational>(&g).expect("no isolated nodes");
    assert_eq!(inst.criterion_value(), BigRational::one());
    assert!(matches!(
        Fixer2::new(&inst),
        Err(FixerError::CriterionViolated { .. })
    ));
}

#[test]
fn order_obliviousness_is_real_not_just_lucky() {
    // Fix the *same* instance under many adversarial orders including
    // reversed and interleaved; every one must succeed (Theorem 1.3
    // quantifies over all orders).
    // Random 3-uniform hypergraphs can reach dependency degree 6, so
    // k = 5 is needed for p = k^-3 < 2^-6.
    let h = random_3_uniform(15, 3, 2).expect("feasible");
    let inst = hyperedge_instance::<f64>(&h, 5);
    assert!(inst.satisfies_exponential_criterion());
    let m = inst.num_variables();
    // The stride-7 order is a permutation because gcd(7, m) = 1.
    assert!(
        !m.is_multiple_of(7) && m == 15,
        "stride order needs gcd(7, m) = 1"
    );
    let orders: Vec<Vec<usize>> = vec![
        (0..m).collect(),
        (0..m).rev().collect(),
        (0..m).map(|i| (i * 7) % m).collect(),
    ];
    for (i, order) in orders.into_iter().enumerate() {
        let report = Fixer3::new(&inst)
            .expect("below threshold")
            .run(order)
            .expect("finite costs below the threshold");
        assert!(report.is_success(), "order family {i}");
    }
}

#[test]
fn backends_agree_end_to_end() {
    let h = hyper_ring(8);
    let exact = hyperedge_instance::<BigRational>(&h, 3);
    let float = hyperedge_instance::<f64>(&h, 3);
    let re = Fixer3::new(&exact)
        .expect("below threshold")
        .run_default()
        .unwrap();
    let rf = Fixer3::new(&float)
        .expect("below threshold")
        .run_default()
        .unwrap();
    assert_eq!(re.assignment(), rf.assignment());
    assert!((exact.criterion_value().to_f64() - float.criterion_value()).abs() < 1e-12);
}
