//! Distributed LLL below the sharp threshold (Corollaries 1.2 and 1.4).
//!
//! Both corollaries follow the same scheme: a coloring computed by a real
//! LOCAL algorithm (on the [`Simulator`]) schedules the order-oblivious
//! sequential fixers so that variables fixed in the same round never
//! share an event:
//!
//! * **Rank ≤ 2 (Corollary 1.2)**: variables sit on dependency-graph
//!   edges; a proper *edge coloring* guarantees that same-colored edges
//!   share no endpoint, so all their variables can be fixed
//!   simultaneously. `O(d + log* n)` rounds in the paper with
//!   Panconesi–Rizzi; our Linial-based substitute gives
//!   `O(d²) + log* n` (see `DESIGN.md`).
//! * **Rank ≤ 3 (Corollary 1.4)**: a *distance-2 coloring* of the
//!   dependency graph guarantees that same-colored event nodes are ≥ 3
//!   apart, so each can fix **all** of its incident variables without
//!   touching another fixer's events. `O(d² + log* n)` in the paper with
//!   FHK'16; `O(d⁴) + log* n` with our substitute.
//!
//! Round accounting: the coloring rounds are measured exactly on the
//! simulator; each color class then costs 2 rounds (one to exchange the
//! freshly fixed values and `φ` entries with the 1-hop neighborhood, one
//! to hand over to the next class), matching how the paper iterates
//! through color classes. The scheduling loop below executes the *same*
//! fixing steps a message-passing implementation would — the
//! order-obliviousness of Theorems 1.1/1.3 is exactly what makes the
//! schedule correct — and asserts the no-conflict property of every
//! class as an executable witness.

use std::fmt;

use lll_coloring::{distance2_coloring, edge_coloring};
use lll_local::{SimError, Simulator};
use lll_numeric::Num;
use lll_obs::timing::{span_nanos, span_start};
use lll_obs::{Event, NullRecorder, NullTiming, Recorder, TimingScope, TimingSink};

use crate::audit::{AuditDelta, IncrementalAuditor};
use crate::error::FixerError;
use crate::fg::FgFixer;
use crate::fixer2::{audit_event, fix_run_start_event};
use crate::instance::Instance;
use crate::sweep::{fix_class_sharded, ClassFixer};
use crate::{FixReport, Fixer2, Fixer3};

/// Whether to enforce the exponential criterion `p < 2^-d` before
/// running (threshold experiments run the greedy process unchecked).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CriterionCheck {
    /// Fail with [`FixerError::CriterionViolated`] above the threshold.
    #[default]
    Enforce,
    /// Run the greedy process regardless.
    Skip,
}

/// Error produced by the distributed drivers.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// The underlying LOCAL simulation failed.
    Sim(SimError),
    /// The fixer rejected the instance.
    Fixer(FixerError),
    /// A precomputed [`Schedule`] was supplied for a different graph (or
    /// the wrong schedule kind for the driver).
    ScheduleMismatch {
        /// Schedule slots the driver requires (edges for the rank-2
        /// driver, nodes for the rank-3 driver).
        expected: usize,
        /// Slots the supplied schedule actually carries.
        found: usize,
    },
    /// A resumed run's recorded step prefix contradicts the schedule it
    /// is replayed against — wrong schedule or instance, a prefix from a
    /// different driver, or corrupt audit accounting. The resumed
    /// drivers fail loudly rather than continue a stream they could not
    /// reproduce byte for byte.
    ResumeMismatch {
        /// Index into the recorded step prefix at which replay failed
        /// (`prefix.len()` for end-of-prefix accounting failures).
        at: usize,
        /// What the schedule expected at that point.
        expected: String,
        /// What the recorded prefix actually carried.
        found: String,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Sim(e) => write!(f, "simulation error: {e}"),
            DistError::Fixer(e) => write!(f, "fixer error: {e}"),
            DistError::ScheduleMismatch { expected, found } => write!(
                f,
                "schedule mismatch: driver needs {expected} schedule slots, schedule has {found}"
            ),
            DistError::ResumeMismatch {
                at,
                expected,
                found,
            } => write!(
                f,
                "resume mismatch at recorded step {at}: expected {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for DistError {}

impl From<SimError> for DistError {
    fn from(e: SimError) -> Self {
        DistError::Sim(e)
    }
}

impl From<FixerError> for DistError {
    fn from(e: FixerError) -> Self {
        DistError::Fixer(e)
    }
}

/// Outcome of a distributed run: the fixing report plus the honest round
/// bill.
#[derive(Debug, Clone)]
pub struct DistReport {
    /// Total LOCAL rounds: coloring + 2 per color class (+1 for the
    /// rank-1 warm-up class in the rank-2 driver).
    pub rounds: usize,
    /// Rounds spent computing the schedule coloring.
    pub coloring_rounds: usize,
    /// Number of color classes iterated.
    pub num_classes: usize,
    /// The assignment outcome.
    pub fix: FixReport,
}

/// Budget for the coloring subroutines; generous, only a guard against
/// runaway simulations.
fn round_budget(n: usize) -> usize {
    10_000 + 4 * n
}

/// Which coloring a [`Schedule`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleKind {
    /// A proper edge coloring (one color slot per edge) — drives the
    /// rank-2 sweep of Corollary 1.2.
    Edge,
    /// A distance-2 vertex coloring (one color slot per node) — drives
    /// the rank-3 sweep of Corollary 1.4.
    Distance2,
}

/// A reusable scheduling artifact: the coloring a distributed driver
/// computes before its fixing sweep, detached from any one instance.
///
/// The coloring depends only on the dependency *graph* (its labeled
/// structure and the schedule seed), never on probabilities, predicates,
/// or the fixing state — which is what makes it shareable across every
/// instance with the same graph shape. `lll-serve` exploits exactly
/// this: its topology cache keys schedules by
/// [`Graph::fingerprint`](lll_graphs::Graph::fingerprint) and replays
/// them through [`distributed_fixer2_scheduled_recorded`] /
/// [`distributed_fixer3_scheduled_recorded`], so only the fixing sweep
/// runs per request. Determinism contract: the scheduled drivers execute
/// the *same* fixing steps the self-scheduling drivers would (those are
/// now thin wrappers that compute a `Schedule` and delegate), so a
/// cached replay is byte-identical to a cold run — assignment, bills,
/// and recorded stream — at every worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    kind: ScheduleKind,
    colors: Vec<usize>,
    palette: usize,
    coloring_rounds: usize,
}

impl Schedule {
    /// Computes the rank-2 schedule: a proper edge coloring of `g` via
    /// the real LOCAL simulation (`threads` simulator workers; the
    /// result is identical for every count).
    ///
    /// # Errors
    ///
    /// [`SimError`] if the coloring simulation fails.
    pub fn edge(g: &lll_graphs::Graph, seed: u64, threads: usize) -> Result<Schedule, SimError> {
        if g.num_edges() == 0 {
            return Ok(Schedule {
                kind: ScheduleKind::Edge,
                colors: Vec::new(),
                palette: 0,
                coloring_rounds: 0,
            });
        }
        let sim = Simulator::with_shuffled_ids(g, seed).threads(threads);
        let col = edge_coloring(&sim, round_budget(g.num_nodes()))?;
        Ok(Schedule {
            kind: ScheduleKind::Edge,
            colors: col.colors,
            palette: col.palette,
            coloring_rounds: col.rounds,
        })
    }

    /// Computes the rank-3 schedule: a distance-2 coloring of `g` via the
    /// real LOCAL simulation (`threads` simulator workers; the result is
    /// identical for every count).
    ///
    /// # Errors
    ///
    /// [`SimError`] if the coloring simulation fails.
    pub fn distance2(
        g: &lll_graphs::Graph,
        seed: u64,
        threads: usize,
    ) -> Result<Schedule, SimError> {
        if g.num_nodes() == 0 {
            return Ok(Schedule {
                kind: ScheduleKind::Distance2,
                colors: Vec::new(),
                palette: 0,
                coloring_rounds: 0,
            });
        }
        let sim = Simulator::with_shuffled_ids(g, seed).threads(threads);
        let col = distance2_coloring(&sim, round_budget(g.num_nodes()))?;
        Ok(Schedule {
            kind: ScheduleKind::Distance2,
            colors: col.colors,
            palette: col.palette,
            coloring_rounds: col.rounds,
        })
    }

    /// Which sweep this schedule drives.
    pub fn kind(&self) -> ScheduleKind {
        self.kind
    }

    /// One color per edge ([`ScheduleKind::Edge`]) or node
    /// ([`ScheduleKind::Distance2`]).
    pub fn colors(&self) -> &[usize] {
        &self.colors
    }

    /// Number of color classes.
    pub fn palette(&self) -> usize {
        self.palette
    }

    /// LOCAL rounds the coloring simulation took — billed once per
    /// *computation*; cached replays still report it so cold and warm
    /// responses agree byte for byte.
    pub fn coloring_rounds(&self) -> usize {
        self.coloring_rounds
    }

    /// Approximate heap footprint in bytes — the color vector plus the
    /// struct header. Feeds the serve daemon's topology-cache memory
    /// gauge; an estimate for accounting, not an allocator truth.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Schedule>() + self.colors.capacity() * std::mem::size_of::<usize>()
    }
}

/// Where to pick an interrupted fixing run back up: the recorded
/// `(variable, value)` step prefix up to a durable `#checkpoint `
/// sidecar, plus the stream accounting the resumed drivers need to
/// continue the event stream byte for byte.
///
/// The fixers are pure functions of their applied step sequence, so the
/// prefix alone determines the mid-run state exactly; the counters
/// determine which bracketing/audit events the prefix already contains
/// (and therefore must *not* be re-emitted). Build one from a folded
/// [`RunState`](lll_obs::replay::RunState) via
/// [`ResumeCursor::from_run_state`], or assemble the parts manually.
#[derive(Debug, Clone, Copy)]
pub struct ResumeCursor<'a> {
    steps: &'a [(u64, u64)],
    audits: u64,
    fix_run_started: bool,
}

impl<'a> ResumeCursor<'a> {
    /// A cursor from raw parts: the step prefix to replay, the number of
    /// audit events the prefix already contains, and whether the prefix
    /// contains the run's `fix_run_start` bracket (it does whenever the
    /// checkpoint landed inside the fixing run).
    pub fn new(steps: &'a [(u64, u64)], audits: u64, fix_run_started: bool) -> ResumeCursor<'a> {
        ResumeCursor {
            steps,
            audits,
            fix_run_started,
        }
    }

    /// The cursor at `state`'s last verified checkpoint, or `None` if
    /// the folded prefix contains no `#checkpoint ` sidecar (or the
    /// fold is short of the sidecar's step count, which means the
    /// caller folded the wrong stream).
    ///
    /// `state` should be the fold of the durable prefix being resumed —
    /// the bytes up to
    /// [`Checkpoint::resume_offset`](lll_obs::Checkpoint::resume_offset).
    /// Folding a *longer* stream also works: the cursor slices the step
    /// list back to the checkpoint.
    pub fn from_run_state(state: &'a lll_obs::replay::RunState) -> Option<ResumeCursor<'a>> {
        let rp = state.last_checkpoint()?;
        let n = usize::try_from(rp.checkpoint.step).ok()?;
        Some(ResumeCursor {
            steps: state.steps().get(..n)?,
            audits: rp.audits,
            fix_run_started: rp.fix_runs > 0,
        })
    }

    /// The recorded step prefix this cursor replays.
    pub fn steps(&self) -> &'a [(u64, u64)] {
        self.steps
    }
}

fn resume_mismatch(at: usize, expected: impl Into<String>, found: impl Into<String>) -> DistError {
    DistError::ResumeMismatch {
        at,
        expected: expected.into(),
        found: found.into(),
    }
}

/// The replay phase of a resumed sweep: walks the recorded step prefix
/// through the schedule's class order, verifying each recorded step
/// against the variable the schedule puts there, and hands the run over
/// to live execution at the exact step where the prefix ends.
struct ReplayPhase<'a> {
    steps: &'a [(u64, u64)],
    pos: usize,
    /// Audit events the prefix already contains.
    audits: u64,
    /// Non-empty classes fully replayed so far.
    classes_replayed: u64,
}

impl ReplayPhase<'_> {
    /// Replays one scheduled class from the prefix. Returns `false`
    /// while the prefix extends beyond the class (the class was fully
    /// replayed, nothing live happened) and `true` once the prefix is
    /// exhausted — at the class boundary or inside the class, in which
    /// case the in-class remainder has been fixed live (sequentially:
    /// identical event order to the shard-merged emission), the
    /// boundary audit emitted, and `auditor` rebuilt for the remaining
    /// classes.
    ///
    /// Rebuilding the auditor by a full scan is sound because the
    /// incremental cache is a pure function of `(partial, φ)` — see
    /// [`ClassFixer::fresh_auditor`]. The boundary class's audit
    /// verdict therefore equals the uninterrupted run's, whose cache
    /// described the same state.
    fn replay_class<T: Num, F: ClassFixer<T>, R: Recorder>(
        &mut self,
        inst: &Instance<T>,
        fixer: &mut F,
        class_vars: &[usize],
        audit: Option<(&T, &T)>,
        auditor: &mut Option<IncrementalAuditor<T>>,
        rec: &mut R,
    ) -> Result<bool, DistError> {
        let take = (self.steps.len() - self.pos).min(class_vars.len());
        for &x in &class_vars[..take] {
            let (rx, ry) = self.steps[self.pos];
            if rx != x as u64 {
                return Err(resume_mismatch(
                    self.pos,
                    format!("variable {x} (schedule order)"),
                    format!("variable {rx}"),
                ));
            }
            let k = inst.variable(x).num_values();
            if ry >= k as u64 {
                return Err(resume_mismatch(
                    self.pos,
                    format!("a value below {k} for variable {x}"),
                    format!("value {ry}"),
                ));
            }
            fixer.replay(x, ry as usize).map_err(DistError::Fixer)?;
            self.pos += 1;
        }
        let boundary_exact = take == class_vars.len();
        if boundary_exact {
            self.classes_replayed += 1;
            if self.pos < self.steps.len() {
                return Ok(false);
            }
        } else {
            // The prefix ends inside this class: the rest of the class
            // runs live. Sequential cell order equals the sharded
            // drivers' static merge order, so the continued stream
            // stays byte-identical at every thread count.
            fixer
                .fix_cell(&class_vars[take..], rec)
                .map_err(DistError::Fixer)?;
        }
        if let Some((p_bound, tol)) = audit {
            let rebuilt = fixer.fresh_auditor(p_bound, tol);
            // Checkpoints land only after event lines, and the class
            // audit event follows the class's last fix_step — so a
            // prefix ending exactly at a class boundary may still owe
            // that class's audit event.
            let pending = if boundary_exact {
                if self.audits == self.classes_replayed {
                    false
                } else if self.audits + 1 == self.classes_replayed {
                    true
                } else {
                    return Err(resume_mismatch(
                        self.pos,
                        format!(
                            "{} or {} audit events for {} replayed classes",
                            self.classes_replayed - 1,
                            self.classes_replayed,
                            self.classes_replayed
                        ),
                        format!("{} audit events", self.audits),
                    ));
                }
            } else {
                if self.audits != self.classes_replayed {
                    return Err(resume_mismatch(
                        self.pos,
                        format!(
                            "{} audit events for {} replayed classes",
                            self.classes_replayed, self.classes_replayed
                        ),
                        format!("{} audit events", self.audits),
                    ));
                }
                true
            };
            if pending {
                let report = rebuilt.report();
                let step = fixer.steps_done() - 1;
                let variable = *class_vars.last().expect("class is non-empty");
                if R::ENABLED {
                    rec.record(&audit_event(step, variable, &report));
                }
                if !report.holds() {
                    return Err(DistError::Fixer(FixerError::PStarViolated {
                        step,
                        variable,
                        pair_violations: report.pair_violations,
                        prob_violations: report.prob_violations,
                    }));
                }
            }
            *auditor = Some(rebuilt);
        }
        Ok(true)
    }
}

/// Sets up the replay phase for a driver: validates the cursor's audit
/// accounting against the driver's mode and decides whether the
/// `fix_run_start` bracket must still be emitted. Returns
/// `(replay, emit_fix_run_start)`.
fn begin_replay<'a>(
    resume: Option<&ResumeCursor<'a>>,
    audited: bool,
) -> Result<(Option<ReplayPhase<'a>>, bool), DistError> {
    let Some(cursor) = resume else {
        return Ok((None, true));
    };
    if !audited && cursor.audits != 0 {
        return Err(resume_mismatch(
            cursor.steps.len(),
            "no audit events (unaudited driver)",
            format!("{} audit events", cursor.audits),
        ));
    }
    let replay = if cursor.steps.is_empty() {
        None
    } else {
        Some(ReplayPhase {
            steps: cursor.steps,
            pos: 0,
            audits: cursor.audits,
            classes_replayed: 0,
        })
    };
    Ok((replay, !cursor.fix_run_started))
}

/// Distributed rank-2 LLL (Corollary 1.2): edge-color the dependency
/// graph, then fix each color class of variables in parallel.
///
/// # Errors
///
/// [`DistError::Fixer`] if the instance has rank > 2 or (under
/// [`CriterionCheck::Enforce`]) violates `p < 2^-d`;
/// [`DistError::Sim`] if the coloring simulation fails.
pub fn distributed_fixer2<T: Num>(
    inst: &Instance<T>,
    seed: u64,
    check: CriterionCheck,
) -> Result<DistReport, DistError> {
    fixer2_driver(inst, seed, check, 1, None, &mut NullRecorder)
}

/// [`distributed_fixer2`] with the coloring simulation *and* the fixing
/// sweep running on `threads` worker threads: each color class's cells
/// (one dependency edge's variables each) are sharded across workers,
/// which is legitimate precisely because same-colored edges share no
/// event (the witness this driver asserts). The outcome is identical
/// for every thread count — see `crate::sweep`.
///
/// # Errors
///
/// As [`distributed_fixer2`].
pub fn distributed_fixer2_parallel<T: Num>(
    inst: &Instance<T>,
    seed: u64,
    check: CriterionCheck,
    threads: usize,
) -> Result<DistReport, DistError> {
    fixer2_driver(inst, seed, check, threads, None, &mut NullRecorder)
}

/// [`distributed_fixer2_parallel`] with a flight recorder: brackets the
/// fixing steps with [`Event::FixRunStart`]/[`Event::FixRunEnd`] and
/// emits one `fix_step` per variable. Per-shard events are buffered and
/// merged in static shard order, so the stream is byte-identical at
/// every thread count.
///
/// # Errors
///
/// As [`distributed_fixer2`].
pub fn distributed_fixer2_recorded<T: Num, R: Recorder>(
    inst: &Instance<T>,
    seed: u64,
    check: CriterionCheck,
    threads: usize,
    rec: &mut R,
) -> Result<DistReport, DistError> {
    fixer2_driver(inst, seed, check, threads, None, rec)
}

/// [`distributed_fixer2_parallel`] with a `P*` audit: after each color
/// class, the auditor re-verifies the union of the class variables'
/// `affects` sets ([`IncrementalAuditor::reverify_class`]) — the checks
/// are computed inside the sweep workers and merged, so the audited
/// driver parallelizes end to end. Verdicts are identical to auditing
/// step by step, because a class's cells touch disjoint events.
///
/// # Errors
///
/// As [`distributed_fixer2`], plus [`FixerError::PStarViolated`]
/// (wrapped in [`DistError::Fixer`]) at the first class after which the
/// invariant no longer holds.
pub fn distributed_fixer2_audited<T: Num>(
    inst: &Instance<T>,
    seed: u64,
    check: CriterionCheck,
    threads: usize,
    p_bound: &T,
    tol: &T,
) -> Result<DistReport, DistError> {
    fixer2_driver(
        inst,
        seed,
        check,
        threads,
        Some((p_bound, tol)),
        &mut NullRecorder,
    )
}

/// [`distributed_fixer2_audited`] with a flight recorder: additionally
/// emits one [`Event::AuditPass`]/[`Event::AuditViolation`] per color
/// class, tagged with the class's last step and variable.
///
/// # Errors
///
/// As [`distributed_fixer2_audited`].
pub fn distributed_fixer2_audited_recorded<T: Num, R: Recorder>(
    inst: &Instance<T>,
    seed: u64,
    check: CriterionCheck,
    threads: usize,
    p_bound: &T,
    tol: &T,
    rec: &mut R,
) -> Result<DistReport, DistError> {
    fixer2_driver(inst, seed, check, threads, Some((p_bound, tol)), rec)
}

/// [`distributed_fixer2_parallel`] driven by a precomputed [`Schedule`]
/// instead of a fresh coloring simulation: only the fixing sweep runs.
/// The self-scheduling drivers are wrappers over this entry point, so a
/// replayed schedule produces the identical report (and, via the
/// recorded variant, the identical event stream) a cold run would.
///
/// # Errors
///
/// As [`distributed_fixer2`], plus [`DistError::ScheduleMismatch`] if
/// `schedule` is not an edge schedule sized for this instance's
/// dependency graph.
pub fn distributed_fixer2_scheduled<T: Num>(
    inst: &Instance<T>,
    schedule: &Schedule,
    check: CriterionCheck,
    threads: usize,
) -> Result<DistReport, DistError> {
    fixer2_scheduled_driver(
        inst,
        schedule,
        check,
        threads,
        None,
        None,
        &mut NullRecorder,
        &mut NullTiming,
    )
}

/// [`distributed_fixer2_scheduled`] with a flight recorder; the stream
/// is byte-identical to [`distributed_fixer2_recorded`]'s for the same
/// seed, at every worker count.
///
/// # Errors
///
/// As [`distributed_fixer2_scheduled`].
pub fn distributed_fixer2_scheduled_recorded<T: Num, R: Recorder>(
    inst: &Instance<T>,
    schedule: &Schedule,
    check: CriterionCheck,
    threads: usize,
    rec: &mut R,
) -> Result<DistReport, DistError> {
    fixer2_scheduled_driver(
        inst,
        schedule,
        check,
        threads,
        None,
        None,
        rec,
        &mut NullTiming,
    )
}

/// [`distributed_fixer2_scheduled_recorded`] with a side-band timing
/// sink: the whole sweep is one [`TimingScope::FixRun`] span and each
/// color class one [`TimingScope::FixClass`] span. This is the serve
/// daemon's request-scoped entry point — the caller constructs a
/// per-request recorder (tagged with the request's correlation id) and
/// a per-request sink, so every event and span attributes to the
/// request that caused it. Wall-clock flows only into `sink`; the
/// recorder stream stays byte-identical to the untimed drivers'.
///
/// # Errors
///
/// As [`distributed_fixer2_scheduled`].
pub fn distributed_fixer2_scheduled_traced<T: Num, R: Recorder, S: TimingSink>(
    inst: &Instance<T>,
    schedule: &Schedule,
    check: CriterionCheck,
    threads: usize,
    rec: &mut R,
    sink: &mut S,
) -> Result<DistReport, DistError> {
    fixer2_scheduled_driver(inst, schedule, check, threads, None, None, rec, sink)
}

/// [`distributed_fixer2_scheduled_recorded`] resumed from a recorded
/// checkpoint: replays `cursor`'s step prefix through the schedule
/// (verifying every recorded step against the variable the schedule
/// puts there), then continues live from the exact step where the
/// prefix ends. The events written to `rec` are precisely the
/// uninterrupted run's stream minus the prefix — concatenating the
/// durable prefix bytes with `rec`'s output reproduces the
/// uninterrupted stream byte for byte, at every `threads` count
/// (DESIGN.md §3.12). The returned report bills the *whole* logical
/// run, identical to the uninterrupted report.
///
/// # Errors
///
/// As [`distributed_fixer2_scheduled`], plus
/// [`DistError::ResumeMismatch`] if the prefix contradicts the schedule
/// (wrong schedule/instance, or a prefix from an audited run).
pub fn distributed_fixer2_scheduled_resumed<T: Num, R: Recorder>(
    inst: &Instance<T>,
    schedule: &Schedule,
    check: CriterionCheck,
    threads: usize,
    cursor: &ResumeCursor<'_>,
    rec: &mut R,
) -> Result<DistReport, DistError> {
    fixer2_scheduled_driver(
        inst,
        schedule,
        check,
        threads,
        None,
        Some(cursor),
        rec,
        &mut NullTiming,
    )
}

/// The audited counterpart of [`distributed_fixer2_scheduled_resumed`]:
/// resumes a stream produced by an *audited* recorded run. Audit events
/// already contained in the prefix (per `cursor`) are not re-emitted;
/// the audit cache is rebuilt by a full scan at the live boundary,
/// which equals the incremental cache the uninterrupted run carried
/// there — so every remaining verdict, and the continued stream, are
/// identical to the uninterrupted run's.
///
/// # Errors
///
/// As [`distributed_fixer2_audited`], plus
/// [`DistError::ResumeMismatch`] if the prefix contradicts the schedule
/// or its audit accounting.
#[allow(clippy::too_many_arguments)]
pub fn distributed_fixer2_scheduled_resumed_audited<T: Num, R: Recorder>(
    inst: &Instance<T>,
    schedule: &Schedule,
    check: CriterionCheck,
    threads: usize,
    p_bound: &T,
    tol: &T,
    cursor: &ResumeCursor<'_>,
    rec: &mut R,
) -> Result<DistReport, DistError> {
    fixer2_scheduled_driver(
        inst,
        schedule,
        check,
        threads,
        Some((p_bound, tol)),
        Some(cursor),
        rec,
        &mut NullTiming,
    )
}

fn fixer2_driver<T: Num, R: Recorder>(
    inst: &Instance<T>,
    seed: u64,
    check: CriterionCheck,
    threads: usize,
    audit: Option<(&T, &T)>,
    rec: &mut R,
) -> Result<DistReport, DistError> {
    let schedule = Schedule::edge(inst.dependency_graph(), seed, threads)?;
    fixer2_scheduled_driver(
        inst,
        &schedule,
        check,
        threads,
        audit,
        None,
        rec,
        &mut NullTiming,
    )
}

#[allow(clippy::too_many_arguments)]
fn fixer2_scheduled_driver<T: Num, R: Recorder, S: TimingSink>(
    inst: &Instance<T>,
    schedule: &Schedule,
    check: CriterionCheck,
    threads: usize,
    audit: Option<(&T, &T)>,
    resume: Option<&ResumeCursor<'_>>,
    rec: &mut R,
    sink: &mut S,
) -> Result<DistReport, DistError> {
    let mut fixer = match check {
        CriterionCheck::Enforce => Fixer2::new(inst)?,
        CriterionCheck::Skip => Fixer2::new_unchecked(inst)?,
    };
    let g = inst.dependency_graph();
    if schedule.kind() != ScheduleKind::Edge || schedule.colors().len() != g.num_edges() {
        return Err(DistError::ScheduleMismatch {
            expected: g.num_edges(),
            found: schedule.colors().len(),
        });
    }
    let (colors, palette, coloring_rounds) = (
        schedule.colors(),
        schedule.palette(),
        schedule.coloring_rounds(),
    );

    // Schedule: the rank-1 warm-up class first (cells = one event's
    // variables — no two rank-1 variables on different events interact,
    // and several on one event are fixed by that event's node locally),
    // then one class per edge color (cells = one dependency edge's
    // variables, which one endpoint fixes locally and sequentially).
    let mut by_event: Vec<Vec<usize>> = vec![Vec::new(); inst.num_events()];
    let mut by_edge: Vec<Vec<usize>> = vec![Vec::new(); g.num_edges()];
    for x in 0..inst.num_variables() {
        match *inst.variable(x).affects() {
            [u] => by_event[u].push(x),
            [u, v] => {
                let eid = g.edge_id(u, v).expect("co-affected events are adjacent");
                by_edge[eid].push(x);
            }
            _ => unreachable!("rank validated at construction"),
        }
    }
    let mut classes: Vec<Vec<Vec<usize>>> = Vec::with_capacity(palette + 1);
    classes.push(by_event.into_iter().filter(|c| !c.is_empty()).collect());
    classes.resize_with(palette + 1, Vec::new);
    for (eid, cell) in by_edge.into_iter().enumerate() {
        if !cell.is_empty() {
            classes[colors[eid] + 1].push(cell);
        }
    }

    let (mut replay, emit_start) = begin_replay(resume, audit.is_some())?;
    if R::ENABLED && emit_start {
        rec.record(&fix_run_start_event(inst));
    }
    let mut auditor = if replay.is_some() {
        // Rebuilt at the live boundary (see ReplayPhase::replay_class);
        // scanning here would describe pre-replay state.
        None
    } else {
        audit.map(|(p_bound, tol)| {
            IncrementalAuditor::new(inst, fixer.partial(), fixer.phi(), p_bound, tol)
        })
    };

    let run_started = span_start::<S>();
    for cells in &classes {
        if cells.is_empty() {
            continue;
        }
        let class_started = span_start::<S>();
        let class_vars: Vec<usize> = cells.iter().flatten().copied().collect();
        assert_no_shared_events_across_edges(inst, &class_vars);
        if let Some(rp) = replay.as_mut() {
            if rp.replay_class(inst, &mut fixer, &class_vars, audit, &mut auditor, rec)? {
                replay = None;
            }
            continue;
        }
        let deltas = fix_class_sharded(&mut fixer, cells, threads, audit, rec)?;
        audit_class(&mut auditor, &deltas, &fixer, &class_vars, rec)?;
        if S::ENABLED {
            sink.record_span(TimingScope::FixClass, span_nanos(class_started));
        }
    }
    if S::ENABLED {
        sink.record_span(TimingScope::FixRun, span_nanos(run_started));
    }
    if let Some(rp) = replay {
        return Err(resume_mismatch(
            rp.pos,
            "end of the schedule",
            format!(
                "{} recorded steps beyond the schedule",
                rp.steps.len() - rp.pos
            ),
        ));
    }

    finish_driver(fixer.into_report(), coloring_rounds, palette, 1, rec)
}

/// Distributed rank-3 LLL (Corollary 1.4): distance-2 color the
/// dependency graph; in each class, every node of that color fixes *all*
/// of its still-unfixed incident variables.
///
/// # Errors
///
/// [`DistError::Fixer`] if the instance has rank > 3 or (under
/// [`CriterionCheck::Enforce`]) violates `p < 2^-d`;
/// [`DistError::Sim`] if the coloring simulation fails.
pub fn distributed_fixer3<T: Num>(
    inst: &Instance<T>,
    seed: u64,
    check: CriterionCheck,
) -> Result<DistReport, DistError> {
    distributed_fixer3_parallel(inst, seed, check, 1)
}

/// [`distributed_fixer3`] with the coloring simulation *and* the fixing
/// sweep running on `threads` worker threads: each color class's cells
/// (one class node's still-unfixed incident variables each) are sharded
/// across workers, which is legitimate precisely because same-colored
/// nodes are ≥ 3 apart in the dependency graph and therefore touch
/// disjoint events (the witness this driver asserts). The outcome is
/// identical for every thread count — see `crate::sweep`.
///
/// # Errors
///
/// As [`distributed_fixer3`].
pub fn distributed_fixer3_parallel<T: Num>(
    inst: &Instance<T>,
    seed: u64,
    check: CriterionCheck,
    threads: usize,
) -> Result<DistReport, DistError> {
    fixer3_driver(inst, seed, check, threads, None, &mut NullRecorder)
}

/// [`distributed_fixer3_parallel`] with a flight recorder: brackets the
/// fixing steps with [`Event::FixRunStart`]/[`Event::FixRunEnd`] and
/// emits one `fix_step` per variable. Per-shard events are buffered and
/// merged in static shard order, so the stream is byte-identical at
/// every thread count.
///
/// # Errors
///
/// As [`distributed_fixer3`].
pub fn distributed_fixer3_recorded<T: Num, R: Recorder>(
    inst: &Instance<T>,
    seed: u64,
    check: CriterionCheck,
    threads: usize,
    rec: &mut R,
) -> Result<DistReport, DistError> {
    fixer3_driver(inst, seed, check, threads, None, rec)
}

/// [`distributed_fixer3_parallel`] with a `P*` audit: after each color
/// class, the auditor re-verifies the union of the class variables'
/// `affects` sets ([`IncrementalAuditor::reverify_class`]) — the checks
/// are computed inside the sweep workers and merged, so the audited
/// driver parallelizes end to end. Verdicts are identical to auditing
/// step by step, because a class's cells touch disjoint events.
///
/// # Errors
///
/// As [`distributed_fixer3`], plus [`FixerError::PStarViolated`]
/// (wrapped in [`DistError::Fixer`]) at the first class after which the
/// invariant no longer holds.
pub fn distributed_fixer3_audited<T: Num>(
    inst: &Instance<T>,
    seed: u64,
    check: CriterionCheck,
    threads: usize,
    p_bound: &T,
    tol: &T,
) -> Result<DistReport, DistError> {
    fixer3_driver(
        inst,
        seed,
        check,
        threads,
        Some((p_bound, tol)),
        &mut NullRecorder,
    )
}

/// [`distributed_fixer3_audited`] with a flight recorder: additionally
/// emits one [`Event::AuditPass`]/[`Event::AuditViolation`] per color
/// class, tagged with the class's last step and variable.
///
/// # Errors
///
/// As [`distributed_fixer3_audited`].
pub fn distributed_fixer3_audited_recorded<T: Num, R: Recorder>(
    inst: &Instance<T>,
    seed: u64,
    check: CriterionCheck,
    threads: usize,
    p_bound: &T,
    tol: &T,
    rec: &mut R,
) -> Result<DistReport, DistError> {
    fixer3_driver(inst, seed, check, threads, Some((p_bound, tol)), rec)
}

/// [`distributed_fixer3_parallel`] driven by a precomputed [`Schedule`]
/// instead of a fresh coloring simulation: only the fixing sweep runs.
/// The self-scheduling drivers are wrappers over this entry point, so a
/// replayed schedule produces the identical report (and, via the
/// recorded variant, the identical event stream) a cold run would.
///
/// # Errors
///
/// As [`distributed_fixer3`], plus [`DistError::ScheduleMismatch`] if
/// `schedule` is not a distance-2 schedule sized for this instance's
/// dependency graph.
pub fn distributed_fixer3_scheduled<T: Num>(
    inst: &Instance<T>,
    schedule: &Schedule,
    check: CriterionCheck,
    threads: usize,
) -> Result<DistReport, DistError> {
    fixer3_scheduled_driver(
        inst,
        schedule,
        check,
        threads,
        None,
        None,
        &mut NullRecorder,
        &mut NullTiming,
    )
}

/// [`distributed_fixer3_scheduled`] with a flight recorder; the stream
/// is byte-identical to [`distributed_fixer3_recorded`]'s for the same
/// seed, at every worker count.
///
/// # Errors
///
/// As [`distributed_fixer3_scheduled`].
pub fn distributed_fixer3_scheduled_recorded<T: Num, R: Recorder>(
    inst: &Instance<T>,
    schedule: &Schedule,
    check: CriterionCheck,
    threads: usize,
    rec: &mut R,
) -> Result<DistReport, DistError> {
    fixer3_scheduled_driver(
        inst,
        schedule,
        check,
        threads,
        None,
        None,
        rec,
        &mut NullTiming,
    )
}

/// [`distributed_fixer3_scheduled_recorded`] with a side-band timing
/// sink — the rank-3 counterpart of
/// [`distributed_fixer2_scheduled_traced`]: one
/// [`TimingScope::FixRun`] span for the sweep, one
/// [`TimingScope::FixClass`] span per color class, attributed to the
/// caller's per-request recorder/sink pair. The recorder stream stays
/// byte-identical to the untimed drivers'.
///
/// # Errors
///
/// As [`distributed_fixer3_scheduled`].
pub fn distributed_fixer3_scheduled_traced<T: Num, R: Recorder, S: TimingSink>(
    inst: &Instance<T>,
    schedule: &Schedule,
    check: CriterionCheck,
    threads: usize,
    rec: &mut R,
    sink: &mut S,
) -> Result<DistReport, DistError> {
    fixer3_scheduled_driver(inst, schedule, check, threads, None, None, rec, sink)
}

/// The rank-3 counterpart of [`distributed_fixer2_scheduled_resumed`]:
/// resumes a recorded rank-3 sweep from a checkpoint, continuing the
/// stream byte for byte at every `threads` count. Replay reproduces the
/// partial assignment exactly, so the per-class still-unfixed cell
/// membership the live phase computes equals the uninterrupted run's.
///
/// # Errors
///
/// As [`distributed_fixer3_scheduled`], plus
/// [`DistError::ResumeMismatch`] if the prefix contradicts the
/// schedule.
pub fn distributed_fixer3_scheduled_resumed<T: Num, R: Recorder>(
    inst: &Instance<T>,
    schedule: &Schedule,
    check: CriterionCheck,
    threads: usize,
    cursor: &ResumeCursor<'_>,
    rec: &mut R,
) -> Result<DistReport, DistError> {
    fixer3_scheduled_driver(
        inst,
        schedule,
        check,
        threads,
        None,
        Some(cursor),
        rec,
        &mut NullTiming,
    )
}

/// The audited counterpart of [`distributed_fixer3_scheduled_resumed`]
/// (see [`distributed_fixer2_scheduled_resumed_audited`] for the audit
/// rebuild argument).
///
/// # Errors
///
/// As [`distributed_fixer3_audited`], plus
/// [`DistError::ResumeMismatch`] if the prefix contradicts the schedule
/// or its audit accounting.
#[allow(clippy::too_many_arguments)]
pub fn distributed_fixer3_scheduled_resumed_audited<T: Num, R: Recorder>(
    inst: &Instance<T>,
    schedule: &Schedule,
    check: CriterionCheck,
    threads: usize,
    p_bound: &T,
    tol: &T,
    cursor: &ResumeCursor<'_>,
    rec: &mut R,
) -> Result<DistReport, DistError> {
    fixer3_scheduled_driver(
        inst,
        schedule,
        check,
        threads,
        Some((p_bound, tol)),
        Some(cursor),
        rec,
        &mut NullTiming,
    )
}

fn fixer3_driver<T: Num, R: Recorder>(
    inst: &Instance<T>,
    seed: u64,
    check: CriterionCheck,
    threads: usize,
    audit: Option<(&T, &T)>,
    rec: &mut R,
) -> Result<DistReport, DistError> {
    let schedule = Schedule::distance2(inst.dependency_graph(), seed, threads)?;
    fixer3_scheduled_driver(
        inst,
        &schedule,
        check,
        threads,
        audit,
        None,
        rec,
        &mut NullTiming,
    )
}

#[allow(clippy::too_many_arguments)]
fn fixer3_scheduled_driver<T: Num, R: Recorder, S: TimingSink>(
    inst: &Instance<T>,
    schedule: &Schedule,
    check: CriterionCheck,
    threads: usize,
    audit: Option<(&T, &T)>,
    resume: Option<&ResumeCursor<'_>>,
    rec: &mut R,
    sink: &mut S,
) -> Result<DistReport, DistError> {
    let mut fixer = match check {
        CriterionCheck::Enforce => Fixer3::new(inst)?,
        CriterionCheck::Skip => Fixer3::new_unchecked(inst)?,
    };
    let g = inst.dependency_graph();
    let n = g.num_nodes();
    if schedule.kind() != ScheduleKind::Distance2 || schedule.colors().len() != n {
        return Err(DistError::ScheduleMismatch {
            expected: n,
            found: schedule.colors().len(),
        });
    }
    let (colors, palette, coloring_rounds) = (
        schedule.colors(),
        schedule.palette(),
        schedule.coloring_rounds(),
    );

    // Variables incident to each event node.
    let mut vars_of: Vec<Vec<usize>> = vec![Vec::new(); n];
    for x in 0..inst.num_variables() {
        for &v in inst.variable(x).affects() {
            vars_of[v].push(x);
        }
    }

    let mut classes: Vec<Vec<usize>> = vec![Vec::new(); palette];
    for (v, &c) in colors.iter().enumerate() {
        classes[c].push(v);
    }

    let (mut replay, emit_start) = begin_replay(resume, audit.is_some())?;
    if R::ENABLED && emit_start {
        rec.record(&fix_run_start_event(inst));
    }
    let mut auditor = if replay.is_some() {
        // Rebuilt at the live boundary (see ReplayPhase::replay_class);
        // scanning here would describe pre-replay state.
        None
    } else {
        audit.map(|(p_bound, tol)| {
            IncrementalAuditor::new(inst, fixer.partial(), fixer.phi(), p_bound, tol)
        })
    };

    let run_started = span_start::<S>();
    for class in &classes {
        let class_started = span_start::<S>();
        assert_no_shared_events_across_nodes(inst, class, &vars_of);
        // Cells: one class node's still-unfixed incident variables.
        // Membership is stable while the class runs — the witness above
        // guarantees no other cell of the class touches these events, so
        // the filter can be evaluated up front. During replay the same
        // expression holds: replayed steps update the partial
        // assignment exactly like live ones, so each class sees the
        // membership the uninterrupted run saw.
        let cells: Vec<Vec<usize>> = class
            .iter()
            .map(|&v| {
                vars_of[v]
                    .iter()
                    .copied()
                    .filter(|&x| fixer.partial().get(x).is_none())
                    .collect::<Vec<usize>>()
            })
            .filter(|cell| !cell.is_empty())
            .collect();
        if cells.is_empty() {
            continue;
        }
        let class_vars: Vec<usize> = cells.iter().flatten().copied().collect();
        if let Some(rp) = replay.as_mut() {
            if rp.replay_class(inst, &mut fixer, &class_vars, audit, &mut auditor, rec)? {
                replay = None;
            }
            continue;
        }
        let deltas = fix_class_sharded(&mut fixer, &cells, threads, audit, rec)?;
        audit_class(&mut auditor, &deltas, &fixer, &class_vars, rec)?;
        if S::ENABLED {
            sink.record_span(TimingScope::FixClass, span_nanos(class_started));
        }
    }
    if S::ENABLED {
        sink.record_span(TimingScope::FixRun, span_nanos(run_started));
    }
    if let Some(rp) = replay {
        return Err(resume_mismatch(
            rp.pos,
            "end of the schedule",
            format!(
                "{} recorded steps beyond the schedule",
                rp.steps.len() - rp.pos
            ),
        ));
    }

    finish_driver(fixer.into_report(), coloring_rounds, palette, 0, rec)
}

/// Applies a class's worker-computed audit deltas, emits the per-class
/// audit event, and converts a failed verdict into
/// [`FixerError::PStarViolated`] tagged with the class's last step and
/// variable. No-op when the run is not audited.
fn audit_class<T: Num, F: ClassFixer<T>, R: Recorder>(
    auditor: &mut Option<IncrementalAuditor<T>>,
    deltas: &[AuditDelta<T>],
    fixer: &F,
    class_vars: &[usize],
    rec: &mut R,
) -> Result<(), DistError> {
    let Some(auditor) = auditor.as_mut() else {
        return Ok(());
    };
    for delta in deltas {
        auditor.apply_delta(delta);
    }
    let report = auditor.report();
    let step = fixer.steps_done() - 1;
    let variable = *class_vars.last().expect("class is non-empty");
    if R::ENABLED {
        rec.record(&audit_event(step, variable, &report));
    }
    if report.holds() {
        Ok(())
    } else {
        Err(DistError::Fixer(FixerError::PStarViolated {
            step,
            variable,
            pair_violations: report.pair_violations,
            prob_violations: report.prob_violations,
        }))
    }
}

/// Emits the [`Event::FixRunEnd`] bracket and assembles the round bill:
/// coloring rounds + 2 per color class (+1 for the rank-2 driver's
/// rank-1 warm-up class).
fn finish_driver<R: Recorder>(
    fix: FixReport,
    coloring_rounds: usize,
    palette: usize,
    warmup_classes: usize,
    rec: &mut R,
) -> Result<DistReport, DistError> {
    if R::ENABLED {
        rec.record(&Event::FixRunEnd {
            steps: fix.num_steps(),
            violated: fix.violated_events().len(),
        });
    }
    Ok(DistReport {
        rounds: coloring_rounds + 2 * palette + warmup_classes,
        coloring_rounds,
        num_classes: palette + warmup_classes,
        fix,
    })
}

/// Distributed conditional-expectation fixer (the Remark after
/// Conjecture 1.5): distance-2 color the dependency graph and run the
/// Fischer–Ghaffari-style sweep over the classes. Requires the *strong*
/// criterion `p·(d+1)^C < 1` with `C` the palette actually computed —
/// exponentially more demanding than the sharp `p < 2^-d`, which is the
/// gap experiment E13 documents. Works for any variable rank.
///
/// # Errors
///
/// [`DistError::Fixer`] under [`CriterionCheck::Enforce`] when the
/// strong criterion fails; [`DistError::Sim`] on simulation failure.
pub fn distributed_fg<T: Num>(
    inst: &Instance<T>,
    seed: u64,
    check: CriterionCheck,
) -> Result<DistReport, DistError> {
    distributed_fg_parallel(inst, seed, check, 1)
}

/// [`distributed_fg`] with the coloring simulation running on `threads`
/// worker threads (see [`Simulator::run_parallel`]); the outcome is
/// identical for every thread count.
///
/// # Errors
///
/// As [`distributed_fg`].
pub fn distributed_fg_parallel<T: Num>(
    inst: &Instance<T>,
    seed: u64,
    check: CriterionCheck,
    threads: usize,
) -> Result<DistReport, DistError> {
    let g = inst.dependency_graph();
    let n = g.num_nodes();
    let (colors, palette, coloring_rounds) = if n == 0 {
        (Vec::new(), 0, 0)
    } else {
        let sim = Simulator::with_shuffled_ids(g, seed).threads(threads);
        let col = distance2_coloring(&sim, round_budget(n))?;
        (col.colors, col.palette, col.rounds)
    };
    let fixer = match check {
        CriterionCheck::Enforce => FgFixer::new(inst, palette)?,
        CriterionCheck::Skip => FgFixer::new_unchecked(inst),
    };
    let fix = fixer.run(&colors);
    Ok(DistReport {
        rounds: coloring_rounds + 2 * palette,
        coloring_rounds,
        num_classes: palette,
        fix,
    })
}

/// Witness that a rank-2 color class is conflict-free: variables on the
/// same dependency edge may cohabit (one endpoint fixes them locally,
/// sequentially), but variables on different edges of the class must not
/// share an event.
fn assert_no_shared_events_across_edges<T: Num>(inst: &Instance<T>, class: &[usize]) {
    let mut owner: Vec<Option<(usize, usize)>> = vec![None; inst.num_events()];
    for &x in class {
        if let [u, v] = *inst.variable(x).affects() {
            for ev in [u, v] {
                match owner[ev] {
                    Some(edge) if edge != (u, v) => {
                        panic!(
                            "class schedules edges {edge:?} and {:?} sharing event {ev}",
                            (u, v)
                        )
                    }
                    _ => owner[ev] = Some((u, v)),
                }
            }
        }
    }
}

/// Witness that a rank-3 color class is conflict-free: the events
/// touched by different fixer nodes of the class are disjoint.
fn assert_no_shared_events_across_nodes<T: Num>(
    inst: &Instance<T>,
    class: &[usize],
    vars_of: &[Vec<usize>],
) {
    let mut owner: Vec<Option<usize>> = vec![None; inst.num_events()];
    for &v in class {
        for &x in &vars_of[v] {
            for &ev in inst.variable(x).affects() {
                match owner[ev] {
                    Some(other) if other != v => {
                        panic!("class schedules nodes {other} and {v} touching event {ev}")
                    }
                    _ => owner[ev] = Some(v),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use lll_local::log_star;

    fn ring_instance(n: usize, k: usize) -> Instance<f64> {
        let mut b = InstanceBuilder::<f64>::new(n);
        let vars: Vec<usize> = (0..n)
            .map(|i| b.add_uniform_variable(&[i, (i + 1) % n], k))
            .collect();
        for i in 0..n {
            let (l, r) = (vars[(i + n - 1) % n], vars[i]);
            b.set_event_predicate(i, move |vals| vals[l] == 0 && vals[r] == 0);
        }
        b.build().unwrap()
    }

    fn hyper_ring_instance(n: usize, k: usize) -> Instance<f64> {
        let mut b = InstanceBuilder::<f64>::new(n);
        let vars: Vec<usize> = (0..n)
            .map(|i| b.add_uniform_variable(&[i, (i + 1) % n, (i + 2) % n], k))
            .collect();
        for j in 0..n {
            let (x1, x2, x3) = (vars[(j + n - 2) % n], vars[(j + n - 1) % n], vars[j]);
            b.set_event_predicate(j, move |vals| {
                vals[x1] == 0 && vals[x2] == 0 && vals[x3] == 0
            });
        }
        b.build().unwrap()
    }

    #[test]
    fn distributed_rank2_solves_rings() {
        for n in [8, 32, 128] {
            let inst = ring_instance(n, 3);
            let rep = distributed_fixer2(&inst, 5, CriterionCheck::Enforce).unwrap();
            assert!(rep.fix.is_success(), "n = {n}");
            assert!(inst.no_event_occurs(rep.fix.assignment()).unwrap());
            assert!(rep.rounds > rep.coloring_rounds);
        }
    }

    #[test]
    fn distributed_rank3_solves_hyper_rings() {
        for n in [8, 32, 128] {
            let inst = hyper_ring_instance(n, 3);
            let rep = distributed_fixer3(&inst, 11, CriterionCheck::Enforce).unwrap();
            assert!(rep.fix.is_success(), "n = {n}");
        }
    }

    #[test]
    fn rounds_scale_like_log_star_not_n() {
        // d is constant on rings, so rounds must be ~constant + log*.
        // Start the comparison above Linial's fixed-point palette (tiny
        // id spaces skip Linial entirely and reduce straight from n,
        // which makes very small n artificially cheap).
        let r_small = distributed_fixer2(&ring_instance(512, 3), 1, CriterionCheck::Enforce)
            .unwrap()
            .rounds;
        let r_large = distributed_fixer2(&ring_instance(65536, 3), 1, CriterionCheck::Enforce)
            .unwrap()
            .rounds;
        let slack = 2 * (log_star(65536) - log_star(512)) as usize + 4;
        assert!(
            r_large <= r_small + slack,
            "rounds grew from {r_small} to {r_large}, more than log* allows"
        );
    }

    #[test]
    fn criterion_enforcement() {
        let at_threshold = ring_instance(8, 2); // p·2^d = 1
        assert!(matches!(
            distributed_fixer2(&at_threshold, 0, CriterionCheck::Enforce),
            Err(DistError::Fixer(FixerError::CriterionViolated { .. }))
        ));
        let rep = distributed_fixer2(&at_threshold, 0, CriterionCheck::Skip).unwrap();
        assert_eq!(rep.fix.assignment().len(), 8);
    }

    #[test]
    fn rank3_driver_accepts_rank2_instances() {
        let inst = ring_instance(16, 3);
        let rep = distributed_fixer3(&inst, 3, CriterionCheck::Enforce).unwrap();
        assert!(rep.fix.is_success());
    }

    #[test]
    fn seeds_change_schedule_not_correctness() {
        let inst = hyper_ring_instance(20, 3);
        for seed in 0..5 {
            let rep = distributed_fixer3(&inst, seed, CriterionCheck::Enforce).unwrap();
            assert!(rep.fix.is_success(), "seed {seed}");
        }
    }

    #[test]
    fn parallel_drivers_match_sequential_bit_for_bit() {
        let inst2 = ring_instance(64, 3);
        let base2 = distributed_fixer2(&inst2, 5, CriterionCheck::Enforce).unwrap();
        let inst3 = hyper_ring_instance(32, 3);
        let base3 = distributed_fixer3(&inst3, 7, CriterionCheck::Enforce).unwrap();
        let baseg = distributed_fg(&inst2, 5, CriterionCheck::Skip).unwrap();
        for t in [2usize, 8] {
            let p2 = distributed_fixer2_parallel(&inst2, 5, CriterionCheck::Enforce, t).unwrap();
            assert_eq!(p2.rounds, base2.rounds, "fixer2 threads {t}");
            assert_eq!(p2.coloring_rounds, base2.coloring_rounds);
            assert_eq!(p2.num_classes, base2.num_classes);
            assert_eq!(p2.fix.assignment(), base2.fix.assignment());
            let p3 = distributed_fixer3_parallel(&inst3, 7, CriterionCheck::Enforce, t).unwrap();
            assert_eq!(p3.rounds, base3.rounds, "fixer3 threads {t}");
            assert_eq!(p3.coloring_rounds, base3.coloring_rounds);
            assert_eq!(p3.fix.assignment(), base3.fix.assignment());
            let pg = distributed_fg_parallel(&inst2, 5, CriterionCheck::Skip, t).unwrap();
            assert_eq!(pg.rounds, baseg.rounds, "fg threads {t}");
            assert_eq!(pg.fix.assignment(), baseg.fix.assignment());
        }
    }

    fn recorded_fixer2_bytes(inst: &Instance<f64>, threads: usize) -> (Vec<u8>, DistReport) {
        let mut rec = lll_obs::JsonlRecorder::new(Vec::new());
        let rep = distributed_fixer2_recorded(inst, 5, CriterionCheck::Enforce, threads, &mut rec)
            .unwrap();
        (rec.finish().unwrap(), rep)
    }

    fn recorded_fixer3_bytes(inst: &Instance<f64>, threads: usize) -> (Vec<u8>, DistReport) {
        let mut rec = lll_obs::JsonlRecorder::new(Vec::new());
        let rep = distributed_fixer3_recorded(inst, 7, CriterionCheck::Enforce, threads, &mut rec)
            .unwrap();
        (rec.finish().unwrap(), rep)
    }

    #[test]
    fn sweep_streams_are_byte_identical_at_every_thread_count() {
        let inst2 = ring_instance(96, 3);
        let (bytes2, base2) = recorded_fixer2_bytes(&inst2, 1);
        assert!(!bytes2.is_empty());
        let inst3 = hyper_ring_instance(48, 3);
        let (bytes3, base3) = recorded_fixer3_bytes(&inst3, 1);
        for t in [2usize, 3, 8] {
            let (b2, p2) = recorded_fixer2_bytes(&inst2, t);
            assert_eq!(b2, bytes2, "fixer2 stream diverged at threads {t}");
            assert_eq!(p2.fix.steps(), base2.fix.steps(), "fixer2 threads {t}");
            assert_eq!(p2.fix.assignment(), base2.fix.assignment());
            let (b3, p3) = recorded_fixer3_bytes(&inst3, t);
            assert_eq!(b3, bytes3, "fixer3 stream diverged at threads {t}");
            assert_eq!(p3.fix.steps(), base3.fix.steps(), "fixer3 threads {t}");
            assert_eq!(p3.fix.assignment(), base3.fix.assignment());
        }
    }

    #[test]
    fn audited_sweep_matches_sequential_verdicts() {
        // Below the threshold the audited drivers must succeed — with
        // identical outputs — at every thread count.
        let inst2 = ring_instance(64, 3);
        let p2 = inst2.max_event_probability();
        let inst3 = hyper_ring_instance(32, 3);
        let p3 = inst3.max_event_probability();
        let base2 =
            distributed_fixer2_audited(&inst2, 5, CriterionCheck::Enforce, 1, &p2, &1e-9).unwrap();
        let base3 =
            distributed_fixer3_audited(&inst3, 7, CriterionCheck::Enforce, 1, &p3, &1e-9).unwrap();
        for t in [2usize, 8] {
            let a2 = distributed_fixer2_audited(&inst2, 5, CriterionCheck::Enforce, t, &p2, &1e-9)
                .unwrap();
            assert_eq!(a2.fix.assignment(), base2.fix.assignment(), "threads {t}");
            let a3 = distributed_fixer3_audited(&inst3, 7, CriterionCheck::Enforce, t, &p3, &1e-9)
                .unwrap();
            assert_eq!(a3.fix.assignment(), base3.fix.assignment(), "threads {t}");
        }

        // With an artificially halved probability bound the audit must
        // fail, at the same class (step, variable) for every thread
        // count.
        let tight = p3 / 2.0;
        let base_err =
            distributed_fixer3_audited(&inst3, 7, CriterionCheck::Enforce, 1, &tight, &0.0)
                .expect_err("halved bound violates P*");
        for t in [2usize, 8] {
            let err =
                distributed_fixer3_audited(&inst3, 7, CriterionCheck::Enforce, t, &tight, &0.0)
                    .expect_err("halved bound violates P*");
            assert_eq!(err, base_err, "audit verdict diverged at threads {t}");
        }
    }

    #[test]
    fn audited_recorded_sweep_emits_one_audit_event_per_class() {
        let inst = ring_instance(32, 3);
        let p = inst.max_event_probability();
        let mut rec = lll_obs::JsonlRecorder::new(Vec::new());
        let rep = distributed_fixer2_audited_recorded(
            &inst,
            5,
            CriterionCheck::Enforce,
            4,
            &p,
            &1e-9,
            &mut rec,
        )
        .unwrap();
        let bytes = rec.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let audits = text
            .lines()
            .filter(|l| l.contains("\"audit_pass\""))
            .count();
        // One audit per *non-empty* scheduled class, ≤ the class bill.
        assert!(audits >= 1 && audits <= rep.num_classes, "{audits} audits");
        assert_eq!(
            text.lines().filter(|l| l.contains("\"fix_step\"")).count(),
            rep.fix.num_steps()
        );
    }

    #[test]
    fn scheduled_drivers_replay_cold_runs_byte_for_byte() {
        let inst2 = ring_instance(64, 3);
        let g2 = inst2.dependency_graph();
        let sched2 = Schedule::edge(g2, 5, 1).unwrap();
        let (cold_bytes2, cold2) = recorded_fixer2_bytes(&inst2, 1);
        let inst3 = hyper_ring_instance(32, 3);
        let sched3 = Schedule::distance2(inst3.dependency_graph(), 7, 1).unwrap();
        let (cold_bytes3, cold3) = recorded_fixer3_bytes(&inst3, 1);
        for t in [1usize, 2, 8] {
            let mut rec = lll_obs::JsonlRecorder::new(Vec::new());
            let warm2 = distributed_fixer2_scheduled_recorded(
                &inst2,
                &sched2,
                CriterionCheck::Enforce,
                t,
                &mut rec,
            )
            .unwrap();
            assert_eq!(rec.finish().unwrap(), cold_bytes2, "fixer2 threads {t}");
            assert_eq!(warm2.fix.assignment(), cold2.fix.assignment());
            assert_eq!(warm2.rounds, cold2.rounds);
            assert_eq!(warm2.coloring_rounds, cold2.coloring_rounds);
            assert_eq!(warm2.num_classes, cold2.num_classes);

            let mut rec = lll_obs::JsonlRecorder::new(Vec::new());
            let warm3 = distributed_fixer3_scheduled_recorded(
                &inst3,
                &sched3,
                CriterionCheck::Enforce,
                t,
                &mut rec,
            )
            .unwrap();
            assert_eq!(rec.finish().unwrap(), cold_bytes3, "fixer3 threads {t}");
            assert_eq!(warm3.fix.assignment(), cold3.fix.assignment());
            assert_eq!(warm3.rounds, cold3.rounds);
            assert_eq!(warm3.coloring_rounds, cold3.coloring_rounds);
        }
    }

    fn checkpoints_in(text: &str) -> Vec<lll_obs::Checkpoint> {
        text.lines()
            .filter(|l| l.starts_with(lll_obs::CHECKPOINT_PREFIX))
            .map(|l| lll_obs::Checkpoint::parse(l).unwrap())
            .collect()
    }

    fn cursor_for(prefix: &[u8]) -> (lll_obs::replay::RunState, ()) {
        let (state, torn) =
            lll_obs::replay::RunState::from_stream(std::str::from_utf8(prefix).unwrap()).unwrap();
        assert_eq!(torn, None, "a checkpoint prefix has no torn tail");
        (state, ())
    }

    #[test]
    fn resumed_runs_continue_checkpointed_streams_byte_for_byte() {
        let interval = 3;
        let inst2 = ring_instance(64, 3);
        let sched2 = Schedule::edge(inst2.dependency_graph(), 5, 1).unwrap();
        let mut rec = lll_obs::JsonlRecorder::new(Vec::new()).checkpoint_every(interval);
        let full2 = distributed_fixer2_scheduled_recorded(
            &inst2,
            &sched2,
            CriterionCheck::Enforce,
            1,
            &mut rec,
        )
        .unwrap();
        let bytes2 = rec.finish().unwrap();

        let inst3 = hyper_ring_instance(32, 3);
        let sched3 = Schedule::distance2(inst3.dependency_graph(), 7, 1).unwrap();
        let mut rec = lll_obs::JsonlRecorder::new(Vec::new()).checkpoint_every(interval);
        let full3 = distributed_fixer3_scheduled_recorded(
            &inst3,
            &sched3,
            CriterionCheck::Enforce,
            1,
            &mut rec,
        )
        .unwrap();
        let bytes3 = rec.finish().unwrap();

        for (bytes, rank2) in [(&bytes2, true), (&bytes3, false)] {
            let cks = checkpoints_in(std::str::from_utf8(bytes).unwrap());
            assert!(
                cks.len() >= 3,
                "want several checkpoints, got {}",
                cks.len()
            );
            for ck in &cks {
                let prefix = &bytes[..ck.resume_offset() as usize];
                let (state, ()) = cursor_for(prefix);
                let cursor = ResumeCursor::from_run_state(&state).unwrap();
                assert_eq!(cursor.steps().len() as u64, ck.step);
                for t in [1usize, 2, 8] {
                    let mut tail = lll_obs::JsonlRecorder::resumed(Vec::new(), interval, ck);
                    let (rep, full) = if rank2 {
                        (
                            distributed_fixer2_scheduled_resumed(
                                &inst2,
                                &sched2,
                                CriterionCheck::Enforce,
                                t,
                                &cursor,
                                &mut tail,
                            )
                            .unwrap(),
                            &full2,
                        )
                    } else {
                        (
                            distributed_fixer3_scheduled_resumed(
                                &inst3,
                                &sched3,
                                CriterionCheck::Enforce,
                                t,
                                &cursor,
                                &mut tail,
                            )
                            .unwrap(),
                            &full3,
                        )
                    };
                    let mut joined = prefix.to_vec();
                    joined.extend_from_slice(&tail.finish().unwrap());
                    assert_eq!(
                        &joined, bytes,
                        "stream diverged: threads {t}, checkpoint at step {}",
                        ck.step
                    );
                    assert_eq!(rep.fix.assignment(), full.fix.assignment());
                    assert_eq!(rep.rounds, full.rounds);
                    assert_eq!(rep.num_classes, full.num_classes);
                }
            }
        }
    }

    #[test]
    fn resumed_audited_runs_rebuild_audit_state_exactly() {
        // Interval 1 puts a checkpoint after *every* fixing step, which
        // covers the boundary case where the prefix ends exactly at a
        // class boundary with that class's audit event still owed.
        let inst2 = ring_instance(48, 3);
        let p2 = inst2.max_event_probability();
        let sched2 = Schedule::edge(inst2.dependency_graph(), 5, 1).unwrap();
        let mut rec = lll_obs::JsonlRecorder::new(Vec::new()).checkpoint_every(1);
        let full2 = distributed_fixer2_audited_recorded(
            &inst2,
            5,
            CriterionCheck::Enforce,
            1,
            &p2,
            &1e-9,
            &mut rec,
        )
        .unwrap();
        let bytes2 = rec.finish().unwrap();

        let inst3 = hyper_ring_instance(24, 3);
        let p3 = inst3.max_event_probability();
        let sched3 = Schedule::distance2(inst3.dependency_graph(), 7, 1).unwrap();
        let mut rec = lll_obs::JsonlRecorder::new(Vec::new()).checkpoint_every(1);
        let full3 = distributed_fixer3_audited_recorded(
            &inst3,
            7,
            CriterionCheck::Enforce,
            1,
            &p3,
            &1e-9,
            &mut rec,
        )
        .unwrap();
        let bytes3 = rec.finish().unwrap();

        for (bytes, rank2) in [(&bytes2, true), (&bytes3, false)] {
            let cks = checkpoints_in(std::str::from_utf8(bytes).unwrap());
            assert!(!cks.is_empty());
            for ck in &cks {
                let prefix = &bytes[..ck.resume_offset() as usize];
                let (state, ()) = cursor_for(prefix);
                let cursor = ResumeCursor::from_run_state(&state).unwrap();
                for t in [1usize, 2] {
                    let mut tail = lll_obs::JsonlRecorder::resumed(Vec::new(), 1, ck);
                    let (rep, full) = if rank2 {
                        (
                            distributed_fixer2_scheduled_resumed_audited(
                                &inst2,
                                &sched2,
                                CriterionCheck::Enforce,
                                t,
                                &p2,
                                &1e-9,
                                &cursor,
                                &mut tail,
                            )
                            .unwrap(),
                            &full2,
                        )
                    } else {
                        (
                            distributed_fixer3_scheduled_resumed_audited(
                                &inst3,
                                &sched3,
                                CriterionCheck::Enforce,
                                t,
                                &p3,
                                &1e-9,
                                &cursor,
                                &mut tail,
                            )
                            .unwrap(),
                            &full3,
                        )
                    };
                    let mut joined = prefix.to_vec();
                    joined.extend_from_slice(&tail.finish().unwrap());
                    assert_eq!(
                        &joined, bytes,
                        "audited stream diverged: threads {t}, step {}",
                        ck.step
                    );
                    assert_eq!(rep.fix.assignment(), full.fix.assignment());
                }
            }
        }
    }

    #[test]
    fn resume_mismatches_fail_loudly() {
        let inst = ring_instance(16, 3);
        let sched = Schedule::edge(inst.dependency_graph(), 5, 1).unwrap();
        let mut rec = lll_obs::JsonlRecorder::new(Vec::new()).checkpoint_every(4);
        distributed_fixer2_scheduled_recorded(&inst, &sched, CriterionCheck::Enforce, 1, &mut rec)
            .unwrap();
        let bytes = rec.finish().unwrap();
        let (state, ()) = cursor_for(&bytes);
        let honest = state.steps().to_vec();
        assert_eq!(honest.len(), 16);

        // A prefix whose first step names a variable the schedule does
        // not put there.
        let mut steps = honest.clone();
        steps[0].0 += 1;
        let cur = ResumeCursor::new(&steps[..4], 0, true);
        let err = distributed_fixer2_scheduled_resumed(
            &inst,
            &sched,
            CriterionCheck::Enforce,
            1,
            &cur,
            &mut NullRecorder,
        )
        .unwrap_err();
        assert!(
            matches!(err, DistError::ResumeMismatch { at: 0, .. }),
            "{err}"
        );

        // A recorded value outside the variable's domain.
        let mut steps = honest.clone();
        steps[0].1 = 999;
        let cur = ResumeCursor::new(&steps[..4], 0, true);
        let err = distributed_fixer2_scheduled_resumed(
            &inst,
            &sched,
            CriterionCheck::Enforce,
            1,
            &cur,
            &mut NullRecorder,
        )
        .unwrap_err();
        assert!(
            matches!(err, DistError::ResumeMismatch { at: 0, .. }),
            "{err}"
        );

        // More recorded steps than the schedule has variables.
        let mut steps = honest.clone();
        steps.push((0, 0));
        let cur = ResumeCursor::new(&steps, 0, true);
        let err = distributed_fixer2_scheduled_resumed(
            &inst,
            &sched,
            CriterionCheck::Enforce,
            1,
            &cur,
            &mut NullRecorder,
        )
        .unwrap_err();
        match err {
            DistError::ResumeMismatch { at, .. } => assert_eq!(at, honest.len()),
            other => panic!("expected overrun mismatch, got {other}"),
        }

        // An audited prefix fed to the unaudited driver.
        let cur = ResumeCursor::new(&honest[..4], 2, true);
        let err = distributed_fixer2_scheduled_resumed(
            &inst,
            &sched,
            CriterionCheck::Enforce,
            1,
            &cur,
            &mut NullRecorder,
        )
        .unwrap_err();
        assert!(matches!(err, DistError::ResumeMismatch { .. }), "{err}");
    }

    #[test]
    fn mismatched_schedules_are_rejected_not_misapplied() {
        let inst2 = ring_instance(16, 3);
        let inst3 = hyper_ring_instance(32, 3);
        let edge16 = Schedule::edge(inst2.dependency_graph(), 5, 1).unwrap();
        let d2_32 = Schedule::distance2(inst3.dependency_graph(), 7, 1).unwrap();
        // Wrong kind for the driver.
        assert!(matches!(
            distributed_fixer2_scheduled(&inst2, &d2_32, CriterionCheck::Enforce, 1),
            Err(DistError::ScheduleMismatch { .. })
        ));
        assert!(matches!(
            distributed_fixer3_scheduled(&inst3, &edge16, CriterionCheck::Enforce, 1),
            Err(DistError::ScheduleMismatch { .. })
        ));
        // Right kind, wrong graph size.
        let edge64 = Schedule::edge(ring_instance(64, 3).dependency_graph(), 5, 1).unwrap();
        assert!(matches!(
            distributed_fixer2_scheduled(&inst2, &edge64, CriterionCheck::Enforce, 1),
            Err(DistError::ScheduleMismatch {
                expected: 16,
                found: 64
            })
        ));
    }
}
