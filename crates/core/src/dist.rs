//! Distributed LLL below the sharp threshold (Corollaries 1.2 and 1.4).
//!
//! Both corollaries follow the same scheme: a coloring computed by a real
//! LOCAL algorithm (on the [`Simulator`]) schedules the order-oblivious
//! sequential fixers so that variables fixed in the same round never
//! share an event:
//!
//! * **Rank ≤ 2 (Corollary 1.2)**: variables sit on dependency-graph
//!   edges; a proper *edge coloring* guarantees that same-colored edges
//!   share no endpoint, so all their variables can be fixed
//!   simultaneously. `O(d + log* n)` rounds in the paper with
//!   Panconesi–Rizzi; our Linial-based substitute gives
//!   `O(d²) + log* n` (see `DESIGN.md`).
//! * **Rank ≤ 3 (Corollary 1.4)**: a *distance-2 coloring* of the
//!   dependency graph guarantees that same-colored event nodes are ≥ 3
//!   apart, so each can fix **all** of its incident variables without
//!   touching another fixer's events. `O(d² + log* n)` in the paper with
//!   FHK'16; `O(d⁴) + log* n` with our substitute.
//!
//! Round accounting: the coloring rounds are measured exactly on the
//! simulator; each color class then costs 2 rounds (one to exchange the
//! freshly fixed values and `φ` entries with the 1-hop neighborhood, one
//! to hand over to the next class), matching how the paper iterates
//! through color classes. The scheduling loop below executes the *same*
//! fixing steps a message-passing implementation would — the
//! order-obliviousness of Theorems 1.1/1.3 is exactly what makes the
//! schedule correct — and asserts the no-conflict property of every
//! class as an executable witness.

use std::fmt;

use lll_coloring::{distance2_coloring, edge_coloring};
use lll_local::{SimError, Simulator};
use lll_numeric::Num;

use crate::error::FixerError;
use crate::fg::FgFixer;
use crate::instance::Instance;
use crate::{FixReport, Fixer2, Fixer3};

/// Whether to enforce the exponential criterion `p < 2^-d` before
/// running (threshold experiments run the greedy process unchecked).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CriterionCheck {
    /// Fail with [`FixerError::CriterionViolated`] above the threshold.
    #[default]
    Enforce,
    /// Run the greedy process regardless.
    Skip,
}

/// Error produced by the distributed drivers.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// The underlying LOCAL simulation failed.
    Sim(SimError),
    /// The fixer rejected the instance.
    Fixer(FixerError),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Sim(e) => write!(f, "simulation error: {e}"),
            DistError::Fixer(e) => write!(f, "fixer error: {e}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<SimError> for DistError {
    fn from(e: SimError) -> Self {
        DistError::Sim(e)
    }
}

impl From<FixerError> for DistError {
    fn from(e: FixerError) -> Self {
        DistError::Fixer(e)
    }
}

/// Outcome of a distributed run: the fixing report plus the honest round
/// bill.
#[derive(Debug, Clone)]
pub struct DistReport {
    /// Total LOCAL rounds: coloring + 2 per color class (+1 for the
    /// rank-1 warm-up class in the rank-2 driver).
    pub rounds: usize,
    /// Rounds spent computing the schedule coloring.
    pub coloring_rounds: usize,
    /// Number of color classes iterated.
    pub num_classes: usize,
    /// The assignment outcome.
    pub fix: FixReport,
}

/// Budget for the coloring subroutines; generous, only a guard against
/// runaway simulations.
fn round_budget(n: usize) -> usize {
    10_000 + 4 * n
}

/// Distributed rank-2 LLL (Corollary 1.2): edge-color the dependency
/// graph, then fix each color class of variables in parallel.
///
/// # Errors
///
/// [`DistError::Fixer`] if the instance has rank > 2 or (under
/// [`CriterionCheck::Enforce`]) violates `p < 2^-d`;
/// [`DistError::Sim`] if the coloring simulation fails.
pub fn distributed_fixer2<T: Num>(
    inst: &Instance<T>,
    seed: u64,
    check: CriterionCheck,
) -> Result<DistReport, DistError> {
    distributed_fixer2_parallel(inst, seed, check, 1)
}

/// [`distributed_fixer2`] with the coloring simulation running on
/// `threads` worker threads (see [`Simulator::run_parallel`]); the
/// outcome is identical for every thread count.
///
/// # Errors
///
/// As [`distributed_fixer2`].
pub fn distributed_fixer2_parallel<T: Num>(
    inst: &Instance<T>,
    seed: u64,
    check: CriterionCheck,
    threads: usize,
) -> Result<DistReport, DistError> {
    let mut fixer = match check {
        CriterionCheck::Enforce => Fixer2::new(inst)?,
        CriterionCheck::Skip => Fixer2::new_unchecked(inst)?,
    };
    let g = inst.dependency_graph();

    let (colors, palette, coloring_rounds) = if g.num_edges() == 0 {
        (Vec::new(), 0, 0)
    } else {
        let sim = Simulator::with_shuffled_ids(g, seed).threads(threads);
        let col = edge_coloring(&sim, round_budget(g.num_nodes()))?;
        (col.colors, col.palette, col.rounds)
    };

    // Rank-1 warm-up class: no two rank-1 variables share an event pair
    // beyond their single event, and several on one event are fixed by
    // that event's node locally in the same round.
    for x in 0..inst.num_variables() {
        if inst.variable(x).rank() == 1 {
            fixer.fix_variable(x);
        }
    }

    // Group rank-2 variables by the color of their dependency edge.
    let mut classes: Vec<Vec<usize>> = vec![Vec::new(); palette];
    for x in 0..inst.num_variables() {
        let var = inst.variable(x);
        if let [u, v] = *var.affects() {
            let eid = g.edge_id(u, v).expect("co-affected events are adjacent");
            classes[colors[eid]].push(x);
        }
    }
    for class in &classes {
        assert_no_shared_events_across_edges(inst, class);
        for &x in class {
            fixer.fix_variable(x);
        }
    }

    Ok(DistReport {
        rounds: coloring_rounds + 2 * palette + 1,
        coloring_rounds,
        num_classes: palette + 1,
        fix: fixer.into_report(),
    })
}

/// Distributed rank-3 LLL (Corollary 1.4): distance-2 color the
/// dependency graph; in each class, every node of that color fixes *all*
/// of its still-unfixed incident variables.
///
/// # Errors
///
/// [`DistError::Fixer`] if the instance has rank > 3 or (under
/// [`CriterionCheck::Enforce`]) violates `p < 2^-d`;
/// [`DistError::Sim`] if the coloring simulation fails.
pub fn distributed_fixer3<T: Num>(
    inst: &Instance<T>,
    seed: u64,
    check: CriterionCheck,
) -> Result<DistReport, DistError> {
    distributed_fixer3_parallel(inst, seed, check, 1)
}

/// [`distributed_fixer3`] with the coloring simulation running on
/// `threads` worker threads (see [`Simulator::run_parallel`]); the
/// outcome is identical for every thread count.
///
/// # Errors
///
/// As [`distributed_fixer3`].
pub fn distributed_fixer3_parallel<T: Num>(
    inst: &Instance<T>,
    seed: u64,
    check: CriterionCheck,
    threads: usize,
) -> Result<DistReport, DistError> {
    let mut fixer = match check {
        CriterionCheck::Enforce => Fixer3::new(inst)?,
        CriterionCheck::Skip => Fixer3::new_unchecked(inst)?,
    };
    let g = inst.dependency_graph();
    let n = g.num_nodes();

    let (colors, palette, coloring_rounds) = if n == 0 {
        (Vec::new(), 0, 0)
    } else {
        let sim = Simulator::with_shuffled_ids(g, seed).threads(threads);
        let col = distance2_coloring(&sim, round_budget(n))?;
        (col.colors, col.palette, col.rounds)
    };

    // Variables incident to each event node.
    let mut vars_of: Vec<Vec<usize>> = vec![Vec::new(); n];
    for x in 0..inst.num_variables() {
        for &v in inst.variable(x).affects() {
            vars_of[v].push(x);
        }
    }

    let mut classes: Vec<Vec<usize>> = vec![Vec::new(); palette];
    for (v, &c) in colors.iter().enumerate() {
        classes[c].push(v);
    }
    for class in &classes {
        assert_no_shared_events_across_nodes(inst, class, &vars_of);
        for &v in class {
            for &x in &vars_of[v] {
                if fixer.partial().get(x).is_none() {
                    fixer.fix_variable(x);
                }
            }
        }
    }

    Ok(DistReport {
        rounds: coloring_rounds + 2 * palette,
        coloring_rounds,
        num_classes: palette,
        fix: fixer.into_report(),
    })
}

/// Distributed conditional-expectation fixer (the Remark after
/// Conjecture 1.5): distance-2 color the dependency graph and run the
/// Fischer–Ghaffari-style sweep over the classes. Requires the *strong*
/// criterion `p·(d+1)^C < 1` with `C` the palette actually computed —
/// exponentially more demanding than the sharp `p < 2^-d`, which is the
/// gap experiment E13 documents. Works for any variable rank.
///
/// # Errors
///
/// [`DistError::Fixer`] under [`CriterionCheck::Enforce`] when the
/// strong criterion fails; [`DistError::Sim`] on simulation failure.
pub fn distributed_fg<T: Num>(
    inst: &Instance<T>,
    seed: u64,
    check: CriterionCheck,
) -> Result<DistReport, DistError> {
    distributed_fg_parallel(inst, seed, check, 1)
}

/// [`distributed_fg`] with the coloring simulation running on `threads`
/// worker threads (see [`Simulator::run_parallel`]); the outcome is
/// identical for every thread count.
///
/// # Errors
///
/// As [`distributed_fg`].
pub fn distributed_fg_parallel<T: Num>(
    inst: &Instance<T>,
    seed: u64,
    check: CriterionCheck,
    threads: usize,
) -> Result<DistReport, DistError> {
    let g = inst.dependency_graph();
    let n = g.num_nodes();
    let (colors, palette, coloring_rounds) = if n == 0 {
        (Vec::new(), 0, 0)
    } else {
        let sim = Simulator::with_shuffled_ids(g, seed).threads(threads);
        let col = distance2_coloring(&sim, round_budget(n))?;
        (col.colors, col.palette, col.rounds)
    };
    let fixer = match check {
        CriterionCheck::Enforce => FgFixer::new(inst, palette)?,
        CriterionCheck::Skip => FgFixer::new_unchecked(inst),
    };
    let fix = fixer.run(&colors);
    Ok(DistReport {
        rounds: coloring_rounds + 2 * palette,
        coloring_rounds,
        num_classes: palette,
        fix,
    })
}

/// Witness that a rank-2 color class is conflict-free: variables on the
/// same dependency edge may cohabit (one endpoint fixes them locally,
/// sequentially), but variables on different edges of the class must not
/// share an event.
fn assert_no_shared_events_across_edges<T: Num>(inst: &Instance<T>, class: &[usize]) {
    let mut owner: Vec<Option<(usize, usize)>> = vec![None; inst.num_events()];
    for &x in class {
        if let [u, v] = *inst.variable(x).affects() {
            for ev in [u, v] {
                match owner[ev] {
                    Some(edge) if edge != (u, v) => {
                        panic!(
                            "class schedules edges {edge:?} and {:?} sharing event {ev}",
                            (u, v)
                        )
                    }
                    _ => owner[ev] = Some((u, v)),
                }
            }
        }
    }
}

/// Witness that a rank-3 color class is conflict-free: the events
/// touched by different fixer nodes of the class are disjoint.
fn assert_no_shared_events_across_nodes<T: Num>(
    inst: &Instance<T>,
    class: &[usize],
    vars_of: &[Vec<usize>],
) {
    let mut owner: Vec<Option<usize>> = vec![None; inst.num_events()];
    for &v in class {
        for &x in &vars_of[v] {
            for &ev in inst.variable(x).affects() {
                match owner[ev] {
                    Some(other) if other != v => {
                        panic!("class schedules nodes {other} and {v} touching event {ev}")
                    }
                    _ => owner[ev] = Some(v),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use lll_local::log_star;

    fn ring_instance(n: usize, k: usize) -> Instance<f64> {
        let mut b = InstanceBuilder::<f64>::new(n);
        let vars: Vec<usize> = (0..n)
            .map(|i| b.add_uniform_variable(&[i, (i + 1) % n], k))
            .collect();
        for i in 0..n {
            let (l, r) = (vars[(i + n - 1) % n], vars[i]);
            b.set_event_predicate(i, move |vals| vals[l] == 0 && vals[r] == 0);
        }
        b.build().unwrap()
    }

    fn hyper_ring_instance(n: usize, k: usize) -> Instance<f64> {
        let mut b = InstanceBuilder::<f64>::new(n);
        let vars: Vec<usize> = (0..n)
            .map(|i| b.add_uniform_variable(&[i, (i + 1) % n, (i + 2) % n], k))
            .collect();
        for j in 0..n {
            let (x1, x2, x3) = (vars[(j + n - 2) % n], vars[(j + n - 1) % n], vars[j]);
            b.set_event_predicate(j, move |vals| {
                vals[x1] == 0 && vals[x2] == 0 && vals[x3] == 0
            });
        }
        b.build().unwrap()
    }

    #[test]
    fn distributed_rank2_solves_rings() {
        for n in [8, 32, 128] {
            let inst = ring_instance(n, 3);
            let rep = distributed_fixer2(&inst, 5, CriterionCheck::Enforce).unwrap();
            assert!(rep.fix.is_success(), "n = {n}");
            assert!(inst.no_event_occurs(rep.fix.assignment()).unwrap());
            assert!(rep.rounds > rep.coloring_rounds);
        }
    }

    #[test]
    fn distributed_rank3_solves_hyper_rings() {
        for n in [8, 32, 128] {
            let inst = hyper_ring_instance(n, 3);
            let rep = distributed_fixer3(&inst, 11, CriterionCheck::Enforce).unwrap();
            assert!(rep.fix.is_success(), "n = {n}");
        }
    }

    #[test]
    fn rounds_scale_like_log_star_not_n() {
        // d is constant on rings, so rounds must be ~constant + log*.
        // Start the comparison above Linial's fixed-point palette (tiny
        // id spaces skip Linial entirely and reduce straight from n,
        // which makes very small n artificially cheap).
        let r_small = distributed_fixer2(&ring_instance(512, 3), 1, CriterionCheck::Enforce)
            .unwrap()
            .rounds;
        let r_large = distributed_fixer2(&ring_instance(65536, 3), 1, CriterionCheck::Enforce)
            .unwrap()
            .rounds;
        let slack = 2 * (log_star(65536) - log_star(512)) as usize + 4;
        assert!(
            r_large <= r_small + slack,
            "rounds grew from {r_small} to {r_large}, more than log* allows"
        );
    }

    #[test]
    fn criterion_enforcement() {
        let at_threshold = ring_instance(8, 2); // p·2^d = 1
        assert!(matches!(
            distributed_fixer2(&at_threshold, 0, CriterionCheck::Enforce),
            Err(DistError::Fixer(FixerError::CriterionViolated { .. }))
        ));
        let rep = distributed_fixer2(&at_threshold, 0, CriterionCheck::Skip).unwrap();
        assert_eq!(rep.fix.assignment().len(), 8);
    }

    #[test]
    fn rank3_driver_accepts_rank2_instances() {
        let inst = ring_instance(16, 3);
        let rep = distributed_fixer3(&inst, 3, CriterionCheck::Enforce).unwrap();
        assert!(rep.fix.is_success());
    }

    #[test]
    fn seeds_change_schedule_not_correctness() {
        let inst = hyper_ring_instance(20, 3);
        for seed in 0..5 {
            let rep = distributed_fixer3(&inst, seed, CriterionCheck::Enforce).unwrap();
            assert!(rep.fix.is_success(), "seed {seed}");
        }
    }

    #[test]
    fn parallel_drivers_match_sequential_bit_for_bit() {
        let inst2 = ring_instance(64, 3);
        let base2 = distributed_fixer2(&inst2, 5, CriterionCheck::Enforce).unwrap();
        let inst3 = hyper_ring_instance(32, 3);
        let base3 = distributed_fixer3(&inst3, 7, CriterionCheck::Enforce).unwrap();
        let baseg = distributed_fg(&inst2, 5, CriterionCheck::Skip).unwrap();
        for t in [2usize, 8] {
            let p2 = distributed_fixer2_parallel(&inst2, 5, CriterionCheck::Enforce, t).unwrap();
            assert_eq!(p2.rounds, base2.rounds, "fixer2 threads {t}");
            assert_eq!(p2.coloring_rounds, base2.coloring_rounds);
            assert_eq!(p2.num_classes, base2.num_classes);
            assert_eq!(p2.fix.assignment(), base2.fix.assignment());
            let p3 = distributed_fixer3_parallel(&inst3, 7, CriterionCheck::Enforce, t).unwrap();
            assert_eq!(p3.rounds, base3.rounds, "fixer3 threads {t}");
            assert_eq!(p3.coloring_rounds, base3.coloring_rounds);
            assert_eq!(p3.fix.assignment(), base3.fix.assignment());
            let pg = distributed_fg_parallel(&inst2, 5, CriterionCheck::Skip, t).unwrap();
            assert_eq!(pg.rounds, baseg.rounds, "fg threads {t}");
            assert_eq!(pg.fix.assignment(), baseg.fix.assignment());
        }
    }
}
