//! LLL instances: discrete random variables, bad events, and the exact
//! conditional-probability engine.

use std::fmt;
use std::ops::Index;
use std::sync::Arc;

use lll_graphs::{Graph, GraphBuilder, Hyperedge, Hypergraph};
use lll_numeric::Num;

use crate::error::BuildError;

/// Threshold on the truth-table size below which event predicates are
/// precomputed into a lookup table (pure optimization; semantics are
/// unchanged).
const TABLE_LIMIT: usize = 1 << 15;

/// A view of the values assigned to the support variables of an event,
/// indexable by variable id.
///
/// Passed to event predicates; `vals[x]` is the value of variable `x`,
/// which must belong to the event's support.
#[derive(Debug, Clone, Copy)]
pub struct VarValues<'a> {
    support: &'a [usize],
    values: &'a [usize],
}

impl Index<usize> for VarValues<'_> {
    type Output = usize;

    /// # Panics
    ///
    /// Panics if `var` is not in the event's support.
    fn index(&self, var: usize) -> &usize {
        let pos = self
            .support
            .binary_search(&var)
            .unwrap_or_else(|_| panic!("variable {var} is not in this event's support"));
        &self.values[pos]
    }
}

type Predicate = Arc<dyn Fn(&VarValues<'_>) -> bool + Send + Sync>;

/// A discrete random variable of the instance.
#[derive(Clone)]
pub struct Variable<T> {
    probs: Vec<T>,
    affects: Vec<usize>,
}

impl<T: Num> Variable<T> {
    /// Number of values the variable can assume (values are `0..k`).
    pub fn num_values(&self) -> usize {
        self.probs.len()
    }

    /// Probability of value `y`.
    pub fn prob(&self, y: usize) -> &T {
        &self.probs[y]
    }

    /// The events this variable affects (sorted). Its length is the
    /// variable's *rank* — the paper's parameter `r` bounds this.
    pub fn affects(&self) -> &[usize] {
        &self.affects
    }

    /// Rank of the variable (`affects().len()`).
    pub fn rank(&self) -> usize {
        self.affects.len()
    }
}

impl<T: fmt::Debug> fmt::Debug for Variable<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Variable")
            .field("probs", &self.probs)
            .field("affects", &self.affects)
            .finish()
    }
}

/// A bad event of the instance.
#[derive(Clone)]
pub struct Event<T> {
    support: Vec<usize>,
    predicate: Predicate,
    /// Mixed-radix truth table over support values (small supports only).
    table: Option<Vec<bool>>,
    /// Strides for table indexing, aligned with `support`.
    strides: Vec<usize>,
    /// The occurring support tuples, flattened with stride
    /// `support.len()`, in table-index order — which is exactly the
    /// probability engine's odometer order (position 0 fastest). Present
    /// whenever `table` is: LLL workloads are sparse (few bad tuples per
    /// event), so iterating this list replaces the full mixed-radix scan
    /// in the conditional-probability engine. Values fit `u16` because
    /// every `num_values` is bounded by the table size limit.
    occ: Option<Vec<u16>>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Num> Event<T> {
    /// The variables the event depends on (sorted ascending).
    pub fn support(&self) -> &[usize] {
        &self.support
    }

    /// Evaluates the event: does it occur under these support values?
    ///
    /// `values[i]` is the value of `support()[i]`.
    pub fn occurs(&self, values: &[usize]) -> bool {
        debug_assert_eq!(values.len(), self.support.len());
        if let Some(table) = &self.table {
            let idx: usize = values.iter().zip(&self.strides).map(|(&v, &s)| v * s).sum();
            table[idx]
        } else {
            (self.predicate)(&VarValues {
                support: &self.support,
                values,
            })
        }
    }
}

impl<T> fmt::Debug for Event<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Event")
            .field("support", &self.support)
            .field("tabled", &self.table.is_some())
            .finish()
    }
}

/// A partial assignment of values to variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialAssignment {
    values: Vec<Option<usize>>,
    fixed: usize,
}

impl PartialAssignment {
    /// The empty assignment over `num_vars` variables.
    pub fn new(num_vars: usize) -> PartialAssignment {
        PartialAssignment {
            values: vec![None; num_vars],
            fixed: 0,
        }
    }

    /// The value of variable `x`, if fixed.
    pub fn get(&self, x: usize) -> Option<usize> {
        self.values[x]
    }

    /// Fixes variable `x` to `value` (irrevocably, matching the paper's
    /// process).
    ///
    /// # Panics
    ///
    /// Panics if `x` is already fixed — the fixers never re-fix.
    pub fn fix(&mut self, x: usize, value: usize) {
        assert!(self.values[x].is_none(), "variable {x} already fixed");
        self.values[x] = Some(value);
        self.fixed += 1;
    }

    /// Number of fixed variables.
    pub fn num_fixed(&self) -> usize {
        self.fixed
    }

    /// Whether every variable is fixed.
    pub fn is_complete(&self) -> bool {
        self.fixed == self.values.len()
    }

    /// Extracts the complete assignment.
    ///
    /// # Panics
    ///
    /// Panics if some variable is unfixed.
    pub fn into_complete(self) -> Vec<usize> {
        self.values
            .into_iter()
            .map(|v| v.expect("assignment is complete"))
            .collect()
    }
}

/// An immutable LLL instance.
///
/// Construct through [`InstanceBuilder`]. The instance owns the derived
/// dependency graph and variable hypergraph, and provides the exact
/// conditional-probability engine the fixers and the `P*` audit rely on.
#[derive(Debug, Clone)]
pub struct Instance<T> {
    variables: Vec<Variable<T>>,
    events: Vec<Event<T>>,
    dependency: Graph,
    hypergraph: Hypergraph,
}

impl<T: Num> Instance<T> {
    /// Number of bad events.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Number of random variables.
    pub fn num_variables(&self) -> usize {
        self.variables.len()
    }

    /// The variable with id `x`.
    pub fn variable(&self, x: usize) -> &Variable<T> {
        &self.variables[x]
    }

    /// The event at node `v`.
    pub fn event(&self, v: usize) -> &Event<T> {
        &self.events[v]
    }

    /// Maximum rank over all variables (the paper's `r`).
    pub fn max_rank(&self) -> usize {
        self.variables.iter().map(Variable::rank).max().unwrap_or(0)
    }

    /// The dependency graph: events are adjacent iff they share a
    /// variable.
    pub fn dependency_graph(&self) -> &Graph {
        &self.dependency
    }

    /// The variable hypergraph `H`: one hyperedge per variable,
    /// connecting the events it affects (hyperedge index = variable id).
    pub fn hypergraph(&self) -> &Hypergraph {
        &self.hypergraph
    }

    /// Maximum dependency degree `d` — the `d` of the criterion
    /// `p < 2^-d`.
    pub fn max_dependency_degree(&self) -> usize {
        self.dependency.max_degree()
    }

    /// Conditional probability of event `v` given the fixed variables of
    /// `partial` (unfixed variables keep their distribution).
    ///
    /// Exact for exact backends: enumerates the product distribution of
    /// the unfixed support variables — the cost is exponential in the
    /// number of *unfixed* support variables (`Π k_x`), which is what
    /// bounded dependency degree keeps small in every LLL workload.
    ///
    /// # Examples
    ///
    /// ```
    /// use lll_core::{InstanceBuilder, PartialAssignment};
    /// use lll_numeric::BigRational;
    ///
    /// let mut b = InstanceBuilder::<BigRational>::new(1);
    /// let x = b.add_uniform_variable(&[0], 2);
    /// let y = b.add_uniform_variable(&[0], 2);
    /// b.set_event_predicate(0, move |vals| vals[x] == 0 && vals[y] == 0);
    /// let inst = b.build()?;
    ///
    /// let mut partial = PartialAssignment::new(2);
    /// assert_eq!(inst.probability(0, &partial), BigRational::from_ratio(1, 4));
    /// partial.fix(x, 0); // conditioning doubles the probability
    /// assert_eq!(inst.probability(0, &partial), BigRational::from_ratio(1, 2));
    /// # Ok::<(), lll_core::BuildError>(())
    /// ```
    pub fn probability(&self, v: usize, partial: &PartialAssignment) -> T {
        self.prob_impl(v, |x| partial.get(x))
    }

    /// Conditional probability of event `v` given `partial` *and* the
    /// hypothetical additional fix `var = value` — the quantity inside
    /// the paper's increase factor `Inc(v, y)`, without cloning the
    /// assignment.
    pub fn probability_with(
        &self,
        v: usize,
        partial: &PartialAssignment,
        var: usize,
        value: usize,
    ) -> T {
        self.prob_impl(v, |x| {
            if x == var {
                Some(value)
            } else {
                partial.get(x)
            }
        })
    }

    fn prob_impl(&self, v: usize, lookup: impl Fn(usize) -> Option<usize>) -> T {
        // The fixers call this in a tight loop; supports are small
        // (bounded dependency degree), so stack buffers avoid three heap
        // allocations per call on the hot path.
        const STACK: usize = 16;
        let support_len = self.events[v].support.len();
        if support_len <= STACK {
            let mut values = [0usize; STACK];
            let mut free = [0usize; STACK];
            let mut counters = [0usize; STACK];
            self.prob_loop(
                v,
                lookup,
                &mut values[..support_len],
                &mut free[..support_len],
                &mut counters[..support_len],
            )
        } else {
            let mut values = vec![0usize; support_len];
            let mut free = vec![0usize; support_len];
            let mut counters = vec![0usize; support_len];
            self.prob_loop(v, lookup, &mut values, &mut free, &mut counters)
        }
    }

    fn prob_loop(
        &self,
        v: usize,
        lookup: impl Fn(usize) -> Option<usize>,
        values: &mut [usize],
        free_buf: &mut [usize],
        counters: &mut [usize],
    ) -> T {
        let event = &self.events[v];
        let support = &event.support;
        let mut num_free = 0usize; // positions in support
        for (pos, &x) in support.iter().enumerate() {
            match lookup(x) {
                Some(val) => values[pos] = val,
                None => {
                    free_buf[num_free] = pos;
                    num_free += 1;
                }
            }
        }
        let free = &free_buf[..num_free];
        if free.is_empty() {
            return if event.occurs(values) {
                T::one()
            } else {
                T::zero()
            };
        }
        if let Some(occ) = &event.occ {
            return self.prob_sparse(v, occ, values, free);
        }
        // Odometer over the free positions. For exact backends the tuple
        // weights are buffered in odometer order and folded through the
        // `Num` accumulation kernels, whose overrides renormalize once
        // per call instead of once per tuple; the kernel *defaults* are
        // the literal inline folds below, so the two arms compute the
        // same sequence of `Num` operations and inexact backends keep
        // the historical allocation-free loop (the `is_exact` branch is
        // resolved at monomorphization).
        let mut total = T::zero();
        let mut weights: Vec<T> = Vec::new();
        let counters = &mut counters[..num_free];
        counters.fill(0);
        'tuples: loop {
            for (ci, &pos) in free.iter().enumerate() {
                values[pos] = counters[ci];
            }
            if event.occurs(values) {
                let probs = |ci: usize| {
                    let pos = free[ci];
                    &self.variables[support[pos]].probs[counters[ci]]
                };
                if T::is_exact() {
                    weights.push(T::product_of((0..free.len()).map(probs)));
                } else {
                    let mut w = T::one();
                    for ci in 0..free.len() {
                        w = w * probs(ci).clone();
                    }
                    total = total + w;
                }
            }
            // increment odometer
            let mut ci = 0;
            loop {
                if ci == free.len() {
                    break 'tuples;
                }
                counters[ci] += 1;
                if counters[ci] < self.variables[support[free[ci]]].num_values() {
                    break;
                }
                counters[ci] = 0;
                ci += 1;
            }
        }
        if T::is_exact() {
            T::sum_of(weights.iter())
        } else {
            total
        }
    }

    /// The sparse arm of [`prob_loop`](Instance::prob_loop): iterates the
    /// event's precomputed occurring tuples instead of the full odometer.
    /// The list is stored in odometer order, consistency filtering
    /// preserves that order, and the weight/accumulation arithmetic below
    /// is literally the odometer arm's — so the two paths produce the
    /// same sequence of `Num` operations and are bit-identical on every
    /// backend; only the cost of *rejecting* non-occurring tuples
    /// disappears.
    fn prob_sparse(&self, v: usize, occ: &[u16], values: &[usize], free: &[usize]) -> T {
        let event = &self.events[v];
        let support = &event.support;
        let s = support.len();
        let mut total = T::zero();
        let mut weights: Vec<T> = Vec::new();
        'tuples: for tuple in occ.chunks_exact(s) {
            // `free` lists free positions ascending, so one merge pointer
            // splits positions into free (skipped) and fixed (matched).
            let mut fi = 0usize;
            for (pos, &t_val) in tuple.iter().enumerate() {
                if fi < free.len() && free[fi] == pos {
                    fi += 1;
                } else if t_val as usize != values[pos] {
                    continue 'tuples;
                }
            }
            let probs = |ci: usize| {
                let pos = free[ci];
                &self.variables[support[pos]].probs[tuple[pos] as usize]
            };
            if T::is_exact() {
                weights.push(T::product_of((0..free.len()).map(probs)));
            } else {
                let mut w = T::one();
                for ci in 0..free.len() {
                    w = w * probs(ci).clone();
                }
                total = total + w;
            }
        }
        if T::is_exact() {
            T::sum_of(weights.iter())
        } else {
            total
        }
    }

    /// Unconditional probability of event `v`.
    pub fn unconditional_probability(&self, v: usize) -> T {
        self.probability(v, &PartialAssignment::new(self.num_variables()))
    }

    /// The maximum unconditional event probability `p`.
    pub fn max_event_probability(&self) -> T {
        let mut best = T::zero();
        for v in 0..self.num_events() {
            let p = self.unconditional_probability(v);
            if p > best {
                best = p;
            }
        }
        best
    }

    /// The criterion value `p · 2^d`; the paper's sharp threshold sits at
    /// exactly 1.
    pub fn criterion_value(&self) -> T {
        let mut c = self.max_event_probability();
        for _ in 0..self.max_dependency_degree() {
            c = c * T::from_ratio(2, 1);
        }
        c
    }

    /// Whether the exponential criterion `p < 2^-d` holds (the regime of
    /// Theorems 1.1/1.3).
    pub fn satisfies_exponential_criterion(&self) -> bool {
        self.criterion_value() < T::one()
    }

    /// Whether the classic symmetric LLL criterion `e·p·(d+1) < 1` holds
    /// (the regime of the Moser–Tardos baseline). Evaluated in `f64` —
    /// `e` is irrational, and nothing downstream needs this exactly.
    pub fn satisfies_classic_criterion(&self) -> bool {
        let p = self.max_event_probability().to_f64();
        let d = self.max_dependency_degree() as f64;
        std::f64::consts::E * p * (d + 1.0) < 1.0
    }

    /// Whether the Chung–Pettie–Su polynomial criterion `e·p·d² < 1`
    /// holds (the regime of their `O(log_{1/epd²} n)` algorithm the
    /// paper's related-work section discusses). Evaluated in `f64`.
    pub fn satisfies_cps_criterion(&self) -> bool {
        let p = self.max_event_probability().to_f64();
        let d = self.max_dependency_degree() as f64;
        std::f64::consts::E * p * d * d < 1.0
    }

    /// A one-stop summary of the instance's LLL parameters, for display
    /// and logging.
    pub fn summary(&self) -> InstanceSummary {
        InstanceSummary {
            num_events: self.num_events(),
            num_variables: self.num_variables(),
            max_rank: self.max_rank(),
            max_dependency_degree: self.max_dependency_degree(),
            max_event_probability: self.max_event_probability().to_f64(),
            criterion_value: self.criterion_value().to_f64(),
            exponential_criterion: self.satisfies_exponential_criterion(),
            classic_criterion: self.satisfies_classic_criterion(),
        }
    }

    /// Events occurring under a complete assignment.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidAssignment`] if the assignment has
    /// the wrong length or an out-of-range value.
    pub fn violated_events(&self, assignment: &[usize]) -> Result<Vec<usize>, BuildError> {
        if assignment.len() != self.num_variables() {
            return Err(BuildError::InvalidAssignment(format!(
                "assignment length {} != {} variables",
                assignment.len(),
                self.num_variables()
            )));
        }
        for (x, &val) in assignment.iter().enumerate() {
            if val >= self.variables[x].num_values() {
                return Err(BuildError::InvalidAssignment(format!(
                    "value {val} out of range for variable {x}"
                )));
            }
        }
        let mut bad = Vec::new();
        for (v, event) in self.events.iter().enumerate() {
            let values: Vec<usize> = event.support.iter().map(|&x| assignment[x]).collect();
            if event.occurs(&values) {
                bad.push(v);
            }
        }
        Ok(bad)
    }

    /// Whether no bad event occurs under a complete assignment.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidAssignment`] on malformed input.
    pub fn no_event_occurs(&self, assignment: &[usize]) -> Result<bool, BuildError> {
        Ok(self.violated_events(assignment)?.is_empty())
    }
}

/// Summary of an instance's LLL parameters (see [`Instance::summary`]).
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceSummary {
    /// Number of bad events.
    pub num_events: usize,
    /// Number of random variables.
    pub num_variables: usize,
    /// Maximum variable rank `r`.
    pub max_rank: usize,
    /// Maximum dependency degree `d`.
    pub max_dependency_degree: usize,
    /// Maximum event probability `p` (as `f64` for display).
    pub max_event_probability: f64,
    /// The criterion value `p·2^d`.
    pub criterion_value: f64,
    /// Whether `p < 2^-d` holds.
    pub exponential_criterion: bool,
    /// Whether `e·p·(d+1) < 1` holds.
    pub classic_criterion: bool,
}

impl fmt::Display for InstanceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "events:            {}", self.num_events)?;
        writeln!(f, "variables:         {}", self.num_variables)?;
        writeln!(f, "max rank r:        {}", self.max_rank)?;
        writeln!(f, "dependency deg d:  {}", self.max_dependency_degree)?;
        writeln!(f, "max event prob p:  {:.6}", self.max_event_probability)?;
        writeln!(f, "criterion p*2^d:   {:.6}", self.criterion_value)?;
        writeln!(f, "sharp criterion:   {}", self.exponential_criterion)?;
        write!(f, "classic criterion: {}", self.classic_criterion)
    }
}

/// Builder for [`Instance`].
///
/// The number of events is fixed up front; variables are added with the
/// list of events they affect; predicates are attached per event (the
/// default predicate never occurs). See the crate-level example.
pub struct InstanceBuilder<T> {
    num_events: usize,
    variables: Vec<(Vec<usize>, Vec<T>)>,
    predicates: Vec<Option<Predicate>>,
}

impl<T: Num> InstanceBuilder<T> {
    /// Starts an instance with `num_events` bad events.
    pub fn new(num_events: usize) -> InstanceBuilder<T> {
        InstanceBuilder {
            num_events,
            variables: Vec::new(),
            predicates: vec![None; num_events],
        }
    }

    /// Adds a variable with explicit value probabilities; returns its id.
    ///
    /// `affects` lists the events depending on the variable (its rank is
    /// `affects.len()` after deduplication). Validation happens in
    /// [`InstanceBuilder::build`].
    pub fn add_variable(&mut self, affects: &[usize], probs: Vec<T>) -> usize {
        let mut a = affects.to_vec();
        a.sort_unstable();
        a.dedup();
        self.variables.push((a, probs));
        self.variables.len() - 1
    }

    /// Adds a uniform variable over `k` values; returns its id.
    pub fn add_uniform_variable(&mut self, affects: &[usize], k: usize) -> usize {
        let probs = (0..k).map(|_| T::from_ratio(1, k as u64)).collect();
        self.add_variable(affects, probs)
    }

    /// Sets the predicate of event `v` (replacing any previous one).
    ///
    /// The predicate receives the values of the event's support variables
    /// and returns `true` iff the bad event occurs.
    pub fn set_event_predicate<F>(&mut self, v: usize, pred: F) -> &mut Self
    where
        F: Fn(&VarValues<'_>) -> bool + Send + Sync + 'static,
    {
        self.predicates[v] = Some(Arc::new(pred));
        self
    }

    /// Finalizes the instance.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if a variable affects an out-of-range or
    /// empty event set, has no values, has a non-positive probability, or
    /// probabilities that do not sum to 1 (exactly for exact backends,
    /// within `1e-9` for `f64`).
    pub fn build(&self) -> Result<Instance<T>, BuildError> {
        // Validate variables.
        for (x, (affects, probs)) in self.variables.iter().enumerate() {
            if affects.is_empty() {
                return Err(BuildError::EmptyAffects(x));
            }
            if let Some(&v) = affects.iter().find(|&&v| v >= self.num_events) {
                return Err(BuildError::EventOutOfRange {
                    variable: x,
                    event: v,
                });
            }
            if probs.is_empty() {
                return Err(BuildError::NoValues(x));
            }
            let mut sum = T::zero();
            for p in probs {
                if !p.is_positive() {
                    return Err(BuildError::NonPositiveProbability(x));
                }
                sum = sum + p.clone();
            }
            let ok = if T::is_exact() {
                sum == T::one()
            } else {
                (sum.to_f64() - 1.0).abs() <= 1e-9
            };
            if !ok {
                return Err(BuildError::BadProbabilitySum(x));
            }
        }

        // Support of each event = variables affecting it, ascending.
        let mut supports: Vec<Vec<usize>> = vec![Vec::new(); self.num_events];
        for (x, (affects, _)) in self.variables.iter().enumerate() {
            for &v in affects {
                supports[v].push(x);
            }
        }

        let variables: Vec<Variable<T>> = self
            .variables
            .iter()
            .map(|(affects, probs)| Variable {
                probs: probs.clone(),
                affects: affects.clone(),
            })
            .collect();

        let mut events = Vec::with_capacity(self.num_events);
        for (v, support) in supports.into_iter().enumerate() {
            let predicate: Predicate = self.predicates[v]
                .clone()
                .unwrap_or_else(|| Arc::new(|_| false));
            // Truth-table precomputation for small supports.
            let mut strides = vec![0usize; support.len()];
            let mut size: usize = 1;
            let mut fits = true;
            for (pos, &x) in support.iter().enumerate() {
                strides[pos] = size;
                size = match size.checked_mul(variables[x].num_values()) {
                    Some(s) if s <= TABLE_LIMIT => s,
                    _ => {
                        fits = false;
                        break;
                    }
                };
            }
            let (table, occ) = if fits {
                let mut table = vec![false; size];
                let mut occ = Vec::new();
                let mut values = vec![0usize; support.len()];
                for (idx, slot) in table.iter_mut().enumerate() {
                    let mut rest = idx;
                    for (pos, &x) in support.iter().enumerate() {
                        values[pos] = rest % variables[x].num_values();
                        rest /= variables[x].num_values();
                    }
                    *slot = predicate(&VarValues {
                        support: &support,
                        values: &values,
                    });
                    if *slot {
                        occ.extend(values.iter().map(|&v| v as u16));
                    }
                }
                (Some(table), Some(occ))
            } else {
                (None, None)
            };
            events.push(Event {
                support,
                predicate,
                table,
                strides,
                occ,
                _marker: std::marker::PhantomData,
            });
        }

        // Dependency graph & hypergraph.
        let mut gb = GraphBuilder::new(self.num_events);
        let mut hyperedges = Vec::with_capacity(variables.len());
        let mut max_rank = 1;
        for var in &variables {
            let a = &var.affects;
            max_rank = max_rank.max(a.len());
            hyperedges.push(Hyperedge::new(a.iter().copied()));
            for i in 0..a.len() {
                for j in i + 1..a.len() {
                    gb.add_edge(a[i], a[j]);
                }
            }
        }
        let dependency = gb.build().expect("validated event indices");
        let hypergraph = Hypergraph::new(self.num_events, hyperedges, max_rank)
            .expect("validated event indices");

        Ok(Instance {
            variables,
            events,
            dependency,
            hypergraph,
        })
    }
}

impl<T: Num> fmt::Debug for InstanceBuilder<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InstanceBuilder")
            .field("num_events", &self.num_events)
            .field("num_variables", &self.variables.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lll_numeric::BigRational;

    /// Two events, one shared fair coin plus one private coin each; event
    /// occurs iff both its coins are heads (value 0).
    fn two_event_instance<T: Num>() -> Instance<T> {
        let mut b = InstanceBuilder::<T>::new(2);
        let shared = b.add_uniform_variable(&[0, 1], 2);
        let p0 = b.add_uniform_variable(&[0], 2);
        let p1 = b.add_uniform_variable(&[1], 2);
        b.set_event_predicate(0, move |vals| vals[shared] == 0 && vals[p0] == 0);
        b.set_event_predicate(1, move |vals| vals[shared] == 0 && vals[p1] == 0);
        b.build().unwrap()
    }

    #[test]
    fn builds_dependency_structures() {
        let inst = two_event_instance::<f64>();
        assert_eq!(inst.num_events(), 2);
        assert_eq!(inst.num_variables(), 3);
        assert_eq!(inst.max_rank(), 2);
        assert!(inst.dependency_graph().has_edge(0, 1));
        assert_eq!(inst.max_dependency_degree(), 1);
        assert_eq!(inst.hypergraph().num_edges(), 3);
        assert_eq!(inst.hypergraph().edge(0).nodes(), &[0, 1]);
    }

    #[test]
    fn exact_probabilities() {
        let inst = two_event_instance::<BigRational>();
        let empty = PartialAssignment::new(3);
        assert_eq!(inst.probability(0, &empty), BigRational::from_ratio(1, 4));
        assert_eq!(inst.max_event_probability(), BigRational::from_ratio(1, 4));
        // criterion: p·2^d = 1/4 · 2 = 1/2 < 1
        assert_eq!(inst.criterion_value(), BigRational::from_ratio(1, 2));
        assert!(inst.satisfies_exponential_criterion());
        // CPS: e·(1/4)·1 < 1 holds; classic: e·(1/4)·2 > 1 fails.
        assert!(inst.satisfies_cps_criterion());
        assert!(!inst.satisfies_classic_criterion());

        // Condition on the shared coin being heads.
        let mut partial = PartialAssignment::new(3);
        partial.fix(0, 0);
        assert_eq!(inst.probability(0, &partial), BigRational::from_ratio(1, 2));
        // Condition on the shared coin being tails: impossible.
        let mut partial = PartialAssignment::new(3);
        partial.fix(0, 1);
        assert_eq!(inst.probability(0, &partial), BigRational::zero());
        // Fully fixed.
        let mut partial = PartialAssignment::new(3);
        partial.fix(0, 0);
        partial.fix(1, 0);
        partial.fix(2, 1);
        assert_eq!(inst.probability(0, &partial), BigRational::one());
        assert_eq!(inst.probability(1, &partial), BigRational::zero());
    }

    #[test]
    fn f64_probabilities_match_exact() {
        let f = two_event_instance::<f64>();
        let r = two_event_instance::<BigRational>();
        let empty_f = PartialAssignment::new(3);
        for v in 0..2 {
            let pf = f.probability(v, &empty_f);
            let pr = r.probability(v, &empty_f).to_f64();
            assert!((pf - pr).abs() < 1e-12);
        }
    }

    #[test]
    fn violated_events_and_validation() {
        let inst = two_event_instance::<f64>();
        assert_eq!(inst.violated_events(&[0, 0, 1]).unwrap(), vec![0]);
        assert_eq!(inst.violated_events(&[0, 0, 0]).unwrap(), vec![0, 1]);
        assert_eq!(
            inst.violated_events(&[1, 0, 0]).unwrap(),
            Vec::<usize>::new()
        );
        assert!(inst.no_event_occurs(&[1, 0, 0]).unwrap());
        assert!(inst.violated_events(&[0, 0]).is_err());
        assert!(inst.violated_events(&[0, 0, 2]).is_err());
    }

    #[test]
    fn default_predicate_never_occurs() {
        let mut b = InstanceBuilder::<f64>::new(1);
        b.add_uniform_variable(&[0], 2);
        let inst = b.build().unwrap();
        assert_eq!(inst.unconditional_probability(0), 0.0);
        assert!(inst.no_event_occurs(&[1]).unwrap());
    }

    #[test]
    fn empty_support_events() {
        let b = InstanceBuilder::<f64>::new(1);
        let inst = b.build().unwrap();
        assert_eq!(inst.unconditional_probability(0), 0.0);
        assert_eq!(inst.max_dependency_degree(), 0);
    }

    #[test]
    fn build_validation_errors() {
        let mut b = InstanceBuilder::<f64>::new(1);
        b.add_variable(&[], vec![1.0]);
        assert!(matches!(b.build(), Err(BuildError::EmptyAffects(0))));

        let mut b = InstanceBuilder::<f64>::new(1);
        b.add_variable(&[3], vec![1.0]);
        assert!(matches!(
            b.build(),
            Err(BuildError::EventOutOfRange {
                variable: 0,
                event: 3
            })
        ));

        let mut b = InstanceBuilder::<f64>::new(1);
        b.add_variable(&[0], vec![]);
        assert!(matches!(b.build(), Err(BuildError::NoValues(0))));

        let mut b = InstanceBuilder::<f64>::new(1);
        b.add_variable(&[0], vec![0.5, 0.6]);
        assert!(matches!(b.build(), Err(BuildError::BadProbabilitySum(0))));

        let mut b = InstanceBuilder::<f64>::new(1);
        b.add_variable(&[0], vec![1.5, -0.5]);
        assert!(matches!(
            b.build(),
            Err(BuildError::NonPositiveProbability(0))
        ));

        let mut b = InstanceBuilder::<BigRational>::new(1);
        b.add_variable(
            &[0],
            vec![BigRational::from_ratio(1, 3), BigRational::from_ratio(1, 3)],
        );
        assert!(matches!(b.build(), Err(BuildError::BadProbabilitySum(0))));
    }

    #[test]
    fn duplicate_affects_are_deduplicated() {
        let mut b = InstanceBuilder::<f64>::new(2);
        let x = b.add_uniform_variable(&[1, 0, 1], 2);
        let inst = b.build().unwrap();
        assert_eq!(inst.variable(x).affects(), &[0, 1]);
        assert_eq!(inst.variable(x).rank(), 2);
    }

    #[test]
    fn biased_variable_probabilities() {
        let mut b = InstanceBuilder::<BigRational>::new(1);
        let x = b.add_variable(
            &[0],
            vec![BigRational::from_ratio(1, 4), BigRational::from_ratio(3, 4)],
        );
        b.set_event_predicate(0, move |vals| vals[x] == 0);
        let inst = b.build().unwrap();
        assert_eq!(
            inst.unconditional_probability(0),
            BigRational::from_ratio(1, 4)
        );
    }

    #[test]
    fn large_support_skips_table_but_matches() {
        // 15 binary variables on one event -> table (2^15 > limit) skipped.
        let mut b = InstanceBuilder::<f64>::new(1);
        let vars: Vec<usize> = (0..15).map(|_| b.add_uniform_variable(&[0], 2)).collect();
        let v0 = vars[0];
        b.set_event_predicate(0, move |vals| vals[v0] == 0);
        let inst = b.build().unwrap();
        assert!((inst.unconditional_probability(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn summary_reports_the_parameters() {
        let inst = two_event_instance::<f64>();
        let s = inst.summary();
        assert_eq!(s.num_events, 2);
        assert_eq!(s.num_variables, 3);
        assert_eq!(s.max_rank, 2);
        assert_eq!(s.max_dependency_degree, 1);
        assert!((s.max_event_probability - 0.25).abs() < 1e-12);
        assert!(s.exponential_criterion);
        let text = s.to_string();
        assert!(text.contains("criterion p*2^d"));
        assert!(text.contains("events:            2"));
    }

    #[test]
    fn single_valued_variables_are_legal() {
        // k = 1 (a constant "random" variable): probability 1 on its
        // only value; the engine and fixers must handle it.
        let mut b = InstanceBuilder::<f64>::new(2);
        let c = b.add_uniform_variable(&[0, 1], 1);
        let x = b.add_uniform_variable(&[0, 1], 8);
        b.set_event_predicate(0, move |vals| vals[c] == 0 && vals[x] == 0);
        b.set_event_predicate(1, move |vals| vals[x] == 1);
        let inst = b.build().unwrap();
        assert!((inst.unconditional_probability(0) - 0.125).abs() < 1e-12);
        let report = crate::Fixer3::new(&inst).unwrap().run_default().unwrap();
        assert!(report.is_success());
    }

    #[test]
    fn partial_assignment_bookkeeping() {
        let mut pa = PartialAssignment::new(3);
        assert_eq!(pa.num_fixed(), 0);
        assert!(!pa.is_complete());
        pa.fix(1, 7);
        assert_eq!(pa.get(1), Some(7));
        assert_eq!(pa.get(0), None);
        pa.fix(0, 1);
        pa.fix(2, 0);
        assert!(pa.is_complete());
        assert_eq!(pa.into_complete(), vec![1, 7, 0]);
    }

    #[test]
    #[should_panic(expected = "already fixed")]
    fn refixing_panics() {
        let mut pa = PartialAssignment::new(1);
        pa.fix(0, 0);
        pa.fix(0, 1);
    }
}
