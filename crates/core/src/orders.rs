//! Fixing-order adversaries.
//!
//! Theorems 1.1 and 1.3 hold for *any* order in which the variables are
//! fixed — the paper notes the order may even be chosen by an
//! **adaptive** adversary who watches the process. This module provides
//! that adversary: static order families plus adaptive strategies that
//! inspect the fixer's live state (the potential `φ` and the partial
//! assignment) to pick the most hostile next variable.
//!
//! The experiment `E11` and several tests run the fixers to completion
//! under these adversaries and re-verify success and property `P*`.

use lll_numeric::Num;

use crate::fixer3::Fixer3;
use crate::triples::representability_score;
use crate::{FixReport, Fixer2, FixerError};

/// A static order family over `m` variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticOrder {
    /// `0, 1, 2, …` — the default.
    Identity,
    /// `m-1, m-2, …`.
    Reversed,
    /// `0, s, 2s, … (mod m)` for a stride `s` coprime to `m`.
    Stride(usize),
}

impl StaticOrder {
    /// Materialises the order as a permutation of `0..m`.
    ///
    /// # Panics
    ///
    /// Panics if a stride is not coprime to `m` (the walk would not be a
    /// permutation).
    pub fn materialize(self, m: usize) -> Vec<usize> {
        match self {
            StaticOrder::Identity => (0..m).collect(),
            StaticOrder::Reversed => (0..m).rev().collect(),
            StaticOrder::Stride(s) => {
                assert!(
                    m == 0 || gcd(s % m.max(1), m) == 1,
                    "stride must be coprime to m"
                );
                (0..m).map(|i| (i * s) % m).collect()
            }
        }
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Runs [`Fixer2`] under an adaptive adversary that always picks the
/// unfixed variable whose *best available* weighted increase sum is
/// largest — i.e. the variable for which even the fixer's best response
/// is worst.
///
/// Returns the report; below the threshold Theorem 1.1 still guarantees
/// success.
///
/// # Errors
///
/// [`FixerError::NonFiniteCost`] if a fixing step computes an
/// incomparable cost (see [`Fixer2::fix_variable`]).
pub fn run_fixer2_adaptive_worst<T: Num>(
    mut fixer: Fixer2<'_, T>,
) -> Result<FixReport, FixerError> {
    let inst = fixer.instance();
    let m = inst.num_variables();
    for _ in 0..m {
        let next = (0..m)
            .filter(|&x| fixer.partial().get(x).is_none())
            .map(|x| (fixer2_best_cost(&fixer, x), x))
            .max_by(|(a, _), (b, _)| a.partial_cmp(b).expect("finite costs"))
            .map(|(_, x)| x)
            .expect("an unfixed variable remains");
        fixer.fix_variable(next)?;
    }
    Ok(fixer.into_report())
}

/// The cost the fixer would pay for its best value of `x` right now
/// (the adversary's damage estimate).
fn fixer2_best_cost<T: Num>(fixer: &Fixer2<'_, T>, x: usize) -> T {
    let inst = fixer.instance();
    let var = inst.variable(x);
    let g = inst.dependency_graph();
    let k = var.num_values();
    let inc = |ev: usize, y: usize| -> T {
        let old = inst.probability(ev, fixer.partial());
        if old.is_zero() {
            T::zero()
        } else {
            inst.probability_with(ev, fixer.partial(), x, y) / old
        }
    };
    match *var.affects() {
        [u] => (0..k)
            .map(|y| inc(u, y))
            .min_by(|a, b| a.partial_cmp(b).expect("finite"))
            .expect("k >= 1"),
        [u, v] => {
            let eid = g.edge_id(u, v).expect("co-affected events are adjacent");
            let s = fixer
                .phi()
                .get(eid, u)
                .expect("u is an endpoint of its edge")
                .clone();
            let t = fixer
                .phi()
                .get(eid, v)
                .expect("v is an endpoint of its edge")
                .clone();
            (0..k)
                .map(|y| inc(u, y) * s.clone() + inc(v, y) * t.clone())
                .min_by(|a, b| a.partial_cmp(b).expect("finite"))
                .expect("k >= 1")
        }
        _ => unreachable!("Fixer2 validated rank <= 2"),
    }
}

/// Runs [`Fixer3`] under an adaptive adversary that always picks the
/// unfixed variable whose best candidate triple has the *smallest*
/// representability margin — the variable closest to exhausting the
/// geometry of `S_rep`.
///
/// # Errors
///
/// [`FixerError::NonFiniteCost`] if a fixing step computes an
/// incomparable cost (see [`Fixer3::fix_variable`]).
pub fn run_fixer3_adaptive_worst<T: Num>(
    mut fixer: Fixer3<'_, T>,
) -> Result<FixReport, FixerError> {
    let inst = fixer.instance();
    let m = inst.num_variables();
    for _ in 0..m {
        let next = (0..m)
            .filter(|&x| fixer.partial().get(x).is_none())
            .map(|x| (fixer3_best_margin(&fixer, x), x))
            .min_by(|(a, _), (b, _)| a.partial_cmp(b).expect("finite margins"))
            .map(|(_, x)| x)
            .expect("an unfixed variable remains");
        fixer.fix_variable(next)?;
    }
    Ok(fixer.into_report())
}

/// The best representability score over the values of `x` given the
/// fixer's current state (rank-3 variables; lower = more hostile).
/// Rank-1/2 variables get a large margin — they cannot strain the
/// triple geometry.
fn fixer3_best_margin<T: Num>(fixer: &Fixer3<'_, T>, x: usize) -> T {
    let inst = fixer.instance();
    let var = inst.variable(x);
    let [u, v, w] = *var.affects() else {
        return T::from_ratio(i64::MAX, 1);
    };
    let g = inst.dependency_graph();
    let e = g.edge_id(u, v).expect("adjacent");
    let e1 = g.edge_id(u, w).expect("adjacent");
    let e2 = g.edge_id(v, w).expect("adjacent");
    let phi = fixer.phi();
    let at = |eid: usize, node: usize| {
        phi.get(eid, node)
            .expect("node is an endpoint of its edge")
            .clone()
    };
    let a = at(e, u) * at(e1, u);
    let b = at(e, v) * at(e2, v);
    let c = at(e1, w) * at(e2, w);
    let inc = |ev: usize, y: usize| -> T {
        let old = inst.probability(ev, fixer.partial());
        if old.is_zero() {
            T::zero()
        } else {
            inst.probability_with(ev, fixer.partial(), x, y) / old
        }
    };
    (0..var.num_values())
        .map(|y| {
            representability_score(
                &(inc(u, y) * a.clone()),
                &(inc(v, y) * b.clone()),
                &(inc(w, y) * c.clone()),
            )
        })
        .max_by(|s1, s2| s1.partial_cmp(s2).expect("finite scores"))
        .expect("k >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit_p_star;
    use crate::instance::{Instance, InstanceBuilder};
    use lll_numeric::BigRational;

    fn ring_instance(n: usize, k: usize) -> Instance<BigRational> {
        let mut b = InstanceBuilder::new(n);
        let vars: Vec<usize> = (0..n)
            .map(|i| b.add_uniform_variable(&[i, (i + 1) % n], k))
            .collect();
        for i in 0..n {
            let (l, r) = (vars[(i + n - 1) % n], vars[i]);
            b.set_event_predicate(i, move |vals| vals[l] == 0 && vals[r] == 0);
        }
        b.build().unwrap()
    }

    fn hyper_ring_instance(n: usize, k: usize) -> Instance<BigRational> {
        let mut b = InstanceBuilder::new(n);
        let vars: Vec<usize> = (0..n)
            .map(|i| b.add_uniform_variable(&[i, (i + 1) % n, (i + 2) % n], k))
            .collect();
        for j in 0..n {
            let (x1, x2, x3) = (vars[(j + n - 2) % n], vars[(j + n - 1) % n], vars[j]);
            b.set_event_predicate(j, move |vals| {
                vals[x1] == 0 && vals[x2] == 0 && vals[x3] == 0
            });
        }
        b.build().unwrap()
    }

    #[test]
    fn static_orders_are_permutations() {
        for order in [
            StaticOrder::Identity,
            StaticOrder::Reversed,
            StaticOrder::Stride(7),
        ] {
            let mut v = order.materialize(10);
            v.sort_unstable();
            assert_eq!(v, (0..10).collect::<Vec<_>>());
        }
        assert_eq!(StaticOrder::Identity.materialize(0), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "coprime")]
    fn stride_must_be_coprime() {
        StaticOrder::Stride(4).materialize(10);
    }

    #[test]
    fn fixer2_survives_static_and_adaptive_adversaries() {
        let inst = ring_instance(10, 3);
        for order in [
            StaticOrder::Identity,
            StaticOrder::Reversed,
            StaticOrder::Stride(7),
        ] {
            let report = Fixer2::new(&inst)
                .expect("below threshold")
                .run(order.materialize(inst.num_variables()))
                .unwrap();
            assert!(report.is_success(), "{order:?}");
        }
        let report =
            run_fixer2_adaptive_worst(Fixer2::new(&inst).expect("below threshold")).unwrap();
        assert!(report.is_success(), "adaptive adversary");
    }

    #[test]
    fn fixer3_survives_adaptive_adversary_with_p_star() {
        let inst = hyper_ring_instance(9, 3);
        let report =
            run_fixer3_adaptive_worst(Fixer3::new(&inst).expect("below threshold")).unwrap();
        assert!(report.is_success());
        // And stepwise: re-run manually with audits.
        let p = inst.max_event_probability();
        let mut fixer = Fixer3::new(&inst).expect("below threshold");
        let m = inst.num_variables();
        for _ in 0..m {
            let next = (0..m)
                .filter(|&x| fixer.partial().get(x).is_none())
                .map(|x| (fixer3_best_margin(&fixer, x), x))
                .min_by(|(a, _), (b, _)| a.partial_cmp(b).unwrap())
                .map(|(_, x)| x)
                .unwrap();
            fixer.fix_variable(next).unwrap();
            let audit = audit_p_star(
                &inst,
                fixer.partial(),
                fixer.phi(),
                &p,
                &BigRational::zero(),
            );
            assert!(
                audit.holds(),
                "P* broken under adaptive adversary: {audit:?}"
            );
        }
        assert!(fixer.into_report().is_success());
    }

    #[test]
    fn adaptive_margin_is_finite_for_rank3_and_huge_for_lower_ranks() {
        let mut b = InstanceBuilder::<BigRational>::new(3);
        let r2 = b.add_uniform_variable(&[0, 1], 4);
        let r3 = b.add_uniform_variable(&[0, 1, 2], 4);
        b.set_event_predicate(0, move |vals| vals[r2] == 0 && vals[r3] == 0);
        let inst = b.build().unwrap();
        let fixer = Fixer3::new(&inst).expect("below threshold");
        let m2 = fixer3_best_margin(&fixer, r2);
        let m3 = fixer3_best_margin(&fixer, r3);
        assert!(m2 > m3, "rank-2 variables must rank as harmless");
    }
}
