//! The rank-2 deterministic fixer (Theorem 1.1).
//!
//! Every variable affects at most two events, i.e. sits on one edge of
//! the dependency graph. Fixing variable `X` on edge `e = {u, v}`: by
//! linearity of expectation there is a value `y` with
//!
//! ```text
//! Inc(u, y)·s + Inc(v, y)·t ≤ s + t ≤ 2,
//! ```
//!
//! where `s = φ_e^u`, `t = φ_e^v` are the current bookkeeping weights
//! (all 1 initially) and `Inc(·, y)` are the conditional-probability
//! increase factors. Picking the minimiser and updating
//! `φ_e^u ← Inc(u,y)·φ_e^u`, `φ_e^v ← Inc(v,y)·φ_e^v` keeps the weighted
//! sum on every edge ≤ 2 and the conditional probability of every event
//! ≤ `p·Π_{e∋v} φ_e^v` — so after all variables are fixed, every event's
//! probability is `< p·2^d < 1`, i.e. `0`. The order of fixing is
//! irrelevant (the process is *order-oblivious*), which is what makes
//! the distributed schedule of Corollary 1.2 correct.

use lll_numeric::Num;
use lll_obs::timing::{span_nanos, span_start};
use lll_obs::{Event, NullRecorder, NullTiming, Recorder, TimingScope, TimingSink};

use crate::error::FixerError;
use crate::instance::{Instance, PartialAssignment};
use crate::triples::Phi;
use crate::{FixReport, FixStepRecord};

/// The sequential rank-2 fixing process.
///
/// Construct with [`Fixer2::new`] (validates rank ≤ 2 and the
/// exponential criterion) or [`Fixer2::new_unchecked`] (skips the
/// criterion check — the greedy process is still well defined above the
/// threshold, it merely loses its guarantee; the threshold experiments
/// rely on exactly this).
///
/// # Examples
///
/// ```
/// use lll_core::{Fixer2, InstanceBuilder};
///
/// let mut b = InstanceBuilder::<f64>::new(2);
/// let x = b.add_uniform_variable(&[0, 1], 4);
/// b.set_event_predicate(0, move |vals| vals[x] == 0);
/// b.set_event_predicate(1, move |vals| vals[x] == 1);
/// let inst = b.build()?;
/// let report = Fixer2::new(&inst)?.run_default()?;
/// assert!(report.is_success());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fixer2<'i, T> {
    inst: &'i Instance<T>,
    partial: PartialAssignment,
    phi: Phi<T>,
    /// Global index of this fixer's first step — 0 for a root fixer,
    /// the shard's start position for a sweep fork (so recorded
    /// `fix_step` events carry run-global step numbers).
    step_base: usize,
    steps: Vec<FixStepRecord>,
    /// `Pr[v | partial]` per event, refreshed whenever a *live* fixing
    /// step touches `v` — the value-selection loop already computes the
    /// winner's conditional probability, so stashing it here lets
    /// [`audit_delta`](crate::sweep::ClassFixer::audit_delta) skip the
    /// re-enumeration. Entries are meaningful only for events touched by
    /// the steps since the last fork/absorb, which is exactly the set a
    /// class audit reads; anything else may be stale and must not be
    /// trusted (see [`audit_delta_for`](crate::audit::audit_delta_for)).
    post_probs: Vec<Option<T>>,
}

impl<'i, T: Num> Fixer2<'i, T> {
    /// Creates a fixer, validating that every variable has rank ≤ 2 and
    /// that the instance satisfies `p < 2^-d`.
    ///
    /// # Errors
    ///
    /// [`FixerError::RankTooLarge`] or [`FixerError::CriterionViolated`].
    pub fn new(inst: &'i Instance<T>) -> Result<Fixer2<'i, T>, FixerError> {
        let fixer = Fixer2::new_unchecked(inst)?;
        if !inst.satisfies_exponential_criterion() {
            return Err(FixerError::CriterionViolated {
                p_times_2_to_d: inst.criterion_value().to_f64(),
            });
        }
        Ok(fixer)
    }

    /// Creates a fixer without checking the criterion (rank ≤ 2 is still
    /// required — the bookkeeping lives on single edges).
    ///
    /// # Errors
    ///
    /// [`FixerError::RankTooLarge`].
    pub fn new_unchecked(inst: &'i Instance<T>) -> Result<Fixer2<'i, T>, FixerError> {
        let rank = inst.max_rank();
        if rank > 2 {
            return Err(FixerError::RankTooLarge {
                found: rank,
                supported: 2,
            });
        }
        Ok(Fixer2 {
            inst,
            partial: PartialAssignment::new(inst.num_variables()),
            phi: Phi::ones(inst.dependency_graph()),
            step_base: 0,
            steps: Vec::new(),
            post_probs: vec![None; inst.num_events()],
        })
    }

    /// The instance being fixed.
    pub fn instance(&self) -> &'i Instance<T> {
        self.inst
    }

    /// Current partial assignment.
    pub fn partial(&self) -> &PartialAssignment {
        &self.partial
    }

    /// Current bookkeeping weights (`φ` restricted to the rank-2
    /// reading: edge weights whose per-edge sums stay ≤ 2 below the
    /// threshold).
    pub fn phi(&self) -> &Phi<T> {
        &self.phi
    }

    /// The increase factor `Inc(t, y)` of event `ev` when fixing
    /// variable `x` to `y` (0 if the event is already impossible, as in
    /// the paper).
    fn inc(&self, ev: usize, x: usize, y: usize) -> T {
        let old = self.inst.probability(ev, &self.partial);
        self.prob_and_inc(ev, &old, x, y).1
    }

    /// `(Pr[ev | partial ∪ {x:y}], Inc(ev, y))` with the invariant
    /// `Pr[ev | partial]` precomputed — the value-selection loops hoist
    /// it so the conditional-probability enumeration runs once per event
    /// instead of once per candidate value. The factor is bit-identical
    /// to [`inc`](Fixer2::inc); the probability is returned so the
    /// winner's value can seed [`post_probs`](Fixer2::post_probs). An
    /// impossible event stays impossible under any extension, so both
    /// components are zero without enumerating.
    fn prob_and_inc(&self, ev: usize, old: &T, x: usize, y: usize) -> (T, T) {
        if old.is_zero() {
            return (T::zero(), T::zero());
        }
        let p = self.inst.probability_with(ev, &self.partial, x, y);
        let inc = p.clone() / old.clone();
        (p, inc)
    }

    /// `(Pr[ev | partial ∪ {x:y}], Inc(t, y) · w)` with the cost as one
    /// fused multiply-divide: [`Num::mul_div`] lets the exact backend
    /// cross-multiply and reduce once instead of normalising the
    /// quotient and the product separately. Canonical forms are unique,
    /// so the cost — and for `f64`, the operation order — is
    /// bit-identical to `inc_given(ev, old, x, y) * w`.
    fn prob_and_cost(&self, ev: usize, old: &T, x: usize, y: usize, w: &T) -> (T, T) {
        let p = self.inst.probability_with(ev, &self.partial, x, y);
        let cost = T::mul_div(p.clone(), w.clone(), old.clone());
        (p, cost)
    }

    /// Fixes variable `x` (which must be unfixed), choosing the value
    /// minimising the φ-weighted sum of increase factors; returns the
    /// chosen value. Exact cost ties select the lowest value index, for
    /// every backend — the class sweep's determinism relies on this.
    ///
    /// # Errors
    ///
    /// [`FixerError::NonFiniteCost`] if a cost is not comparable (an
    /// `f64` NaN, e.g. `0·∞` from a degenerate φ-product).
    ///
    /// # Panics
    ///
    /// Panics if `x` is already fixed.
    pub fn fix_variable(&mut self, x: usize) -> Result<usize, FixerError> {
        self.fix_variable_recorded(x, &mut NullRecorder)
    }

    /// [`fix_variable`](Fixer2::fix_variable) with a flight recorder:
    /// emits one [`Event::FixStep`] carrying the increase factors, the
    /// post-update φ-products and the `P*` pair-sum headroom. With
    /// [`NullRecorder`] this compiles to exactly the unrecorded path.
    ///
    /// # Errors
    ///
    /// As [`fix_variable`](Fixer2::fix_variable).
    ///
    /// # Panics
    ///
    /// Panics if `x` is already fixed.
    pub fn fix_variable_recorded<R: Recorder>(
        &mut self,
        x: usize,
        rec: &mut R,
    ) -> Result<usize, FixerError> {
        assert!(self.partial.get(x).is_none(), "variable {x} already fixed");
        let var = self.inst.variable(x);
        let k = var.num_values();
        let choice = match *var.affects() {
            [u] => {
                // Rank 1: any value with Inc ≤ 1 exists by expectation.
                // Strict `<` keeps the first minimiser, so exact ties
                // resolve to the lowest index.
                let old_u = self.inst.probability(u, &self.partial);
                let mut best: Option<(T, usize, T)> = None;
                for y in 0..k {
                    let (p_u, inc) = self.prob_and_inc(u, &old_u, x, y);
                    if non_finite(&inc) {
                        return Err(FixerError::NonFiniteCost {
                            variable: x,
                            event: u,
                        });
                    }
                    let better = match &best {
                        None => true,
                        Some((b, _, _)) => inc < *b,
                    };
                    if better {
                        best = Some((inc, y, p_u));
                    }
                }
                let (_, choice, p_u) = best.expect("variables have at least one value");
                self.post_probs[u] = Some(p_u);
                choice
            }
            [u, v] => {
                let g = self.inst.dependency_graph();
                let eid = g.edge_id(u, v).expect("co-affected events are adjacent");
                let s = self
                    .phi
                    .get(eid, u)
                    .expect("u is an endpoint of its edge")
                    .clone();
                let t = self
                    .phi
                    .get(eid, v)
                    .expect("v is an endpoint of its edge")
                    .clone();
                let old_u = self.inst.probability(u, &self.partial);
                let old_v = self.inst.probability(v, &self.partial);
                // The winner's costs double as the new φ values and its
                // probabilities seed the audit cache, so the loop
                // carries them instead of recomputing after it.
                let mut best: Option<(T, usize, T, T, T, T)> = None;
                for y in 0..k {
                    let (p_u, cost_u) = self.prob_and_cost(u, &old_u, x, y, &s);
                    if non_finite(&cost_u) {
                        return Err(FixerError::NonFiniteCost {
                            variable: x,
                            event: u,
                        });
                    }
                    let (p_v, cost_v) = self.prob_and_cost(v, &old_v, x, y, &t);
                    if non_finite(&cost_v) {
                        return Err(FixerError::NonFiniteCost {
                            variable: x,
                            event: v,
                        });
                    }
                    let cost = cost_u.clone() + cost_v.clone();
                    if non_finite(&cost) {
                        return Err(FixerError::NonFiniteCost {
                            variable: x,
                            event: u,
                        });
                    }
                    let better = match &best {
                        None => true,
                        Some((b, ..)) => cost < *b,
                    };
                    if better {
                        best = Some((cost, y, cost_u, cost_v, p_u, p_v));
                    }
                }
                let (_, best, new_u, new_v, p_u, p_v) =
                    best.expect("variables have at least one value");
                self.phi
                    .set(eid, u, new_u)
                    .expect("u is an endpoint of its edge");
                self.phi
                    .set(eid, v, new_v)
                    .expect("v is an endpoint of its edge");
                self.post_probs[u] = Some(p_u);
                self.post_probs[v] = Some(p_v);
                best
            }
            _ => unreachable!("rank validated at construction"),
        };
        if R::ENABLED {
            rec.record(&fix_step_event(
                self.inst,
                &self.phi,
                self.step_base + self.steps.len(),
                x,
                choice,
                |ev| self.inc(ev, x, choice).to_f64(),
            ));
        }
        self.partial.fix(x, choice);
        self.steps.push(FixStepRecord {
            variable: x,
            value: choice,
        });
        Ok(choice)
    }

    /// Replays a recorded fixing step: fixes variable `x` to the value
    /// `y` a previous run chose, applying exactly the φ updates
    /// [`fix_variable`](Fixer2::fix_variable) would apply for winner `y`
    /// — without re-running the value search and without emitting any
    /// event. Because the fixing process is deterministic, replaying a
    /// run's recorded `(variable, value)` steps reproduces its partial
    /// assignment and `φ` state bit for bit; this is the resume seam the
    /// checkpointed drivers re-seed from (see `crate::dist`).
    ///
    /// # Errors
    ///
    /// [`FixerError::NonFiniteCost`] if the recorded value's cost is not
    /// comparable (only reachable if the replayed state is degenerate —
    /// an honest prefix of a completed run never trips this).
    ///
    /// # Panics
    ///
    /// Panics if `x` is already fixed or `y` is out of range (the
    /// resumed drivers validate recorded values before replaying).
    pub fn replay_variable(&mut self, x: usize, y: usize) -> Result<(), FixerError> {
        assert!(self.partial.get(x).is_none(), "variable {x} already fixed");
        let var = self.inst.variable(x);
        assert!(y < var.num_values(), "value {y} out of range");
        match *var.affects() {
            [_] => {} // rank 1: the step only fixes the value
            [u, v] => {
                let g = self.inst.dependency_graph();
                let eid = g.edge_id(u, v).expect("co-affected events are adjacent");
                let s = self
                    .phi
                    .get(eid, u)
                    .expect("u is an endpoint of its edge")
                    .clone();
                let t = self
                    .phi
                    .get(eid, v)
                    .expect("v is an endpoint of its edge")
                    .clone();
                let old_u = self.inst.probability(u, &self.partial);
                let (p_u, new_u) = self.prob_and_cost(u, &old_u, x, y, &s);
                if non_finite(&new_u) {
                    return Err(FixerError::NonFiniteCost {
                        variable: x,
                        event: u,
                    });
                }
                let old_v = self.inst.probability(v, &self.partial);
                let (p_v, new_v) = self.prob_and_cost(v, &old_v, x, y, &t);
                if non_finite(&new_v) {
                    return Err(FixerError::NonFiniteCost {
                        variable: x,
                        event: v,
                    });
                }
                self.phi
                    .set(eid, u, new_u)
                    .expect("u is an endpoint of its edge");
                self.phi
                    .set(eid, v, new_v)
                    .expect("v is an endpoint of its edge");
                self.post_probs[u] = Some(p_u);
                self.post_probs[v] = Some(p_v);
            }
            _ => unreachable!("rank validated at construction"),
        }
        self.partial.fix(x, y);
        self.steps.push(FixStepRecord {
            variable: x,
            value: y,
        });
        Ok(())
    }

    /// Runs the process over the given variable order (must enumerate
    /// every unfixed variable exactly once) and reports the outcome.
    ///
    /// # Errors
    ///
    /// [`FixerError::NonFiniteCost`] if a fixing step computes an
    /// incomparable cost (see [`fix_variable`](Fixer2::fix_variable)).
    ///
    /// # Panics
    ///
    /// Panics if the order re-fixes or misses a variable.
    pub fn run(self, order: impl IntoIterator<Item = usize>) -> Result<FixReport, FixerError> {
        self.run_recorded(order, &mut NullRecorder)
    }

    /// [`run`](Fixer2::run) with a flight recorder: brackets the fixing
    /// steps with [`Event::FixRunStart`]/[`Event::FixRunEnd`].
    ///
    /// # Errors
    ///
    /// As [`run`](Fixer2::run).
    ///
    /// # Panics
    ///
    /// Panics if the order re-fixes or misses a variable.
    pub fn run_recorded<R: Recorder>(
        self,
        order: impl IntoIterator<Item = usize>,
        rec: &mut R,
    ) -> Result<FixReport, FixerError> {
        self.run_timed_recorded(order, rec, &mut NullTiming)
    }

    /// [`run_recorded`](Fixer2::run_recorded) with a side-band timing
    /// sink: the whole run is one [`TimingScope::FixRun`] span and every
    /// fixing step one [`TimingScope::FixStep`] span. Wall-clock flows
    /// only into `timing`, never into `rec`, so the recorded event
    /// stream is unchanged; with [`NullTiming`] the clock is never read
    /// and this *is* `run_recorded`.
    ///
    /// # Errors
    ///
    /// As [`run`](Fixer2::run).
    ///
    /// # Panics
    ///
    /// Panics if the order re-fixes or misses a variable.
    pub fn run_timed_recorded<R: Recorder, S: TimingSink>(
        mut self,
        order: impl IntoIterator<Item = usize>,
        rec: &mut R,
        timing: &mut S,
    ) -> Result<FixReport, FixerError> {
        let run_started = span_start::<S>();
        if R::ENABLED {
            rec.record(&fix_run_start_event(self.inst));
        }
        for x in order {
            let step_started = span_start::<S>();
            self.fix_variable_recorded(x, rec)?;
            if S::ENABLED {
                timing.record_span(TimingScope::FixStep, span_nanos(step_started));
            }
        }
        assert!(self.partial.is_complete(), "order must cover all variables");
        let report = self.into_report();
        if R::ENABLED {
            rec.record(&Event::FixRunEnd {
                steps: report.num_steps(),
                violated: report.violated_events().len(),
            });
        }
        if S::ENABLED {
            timing.record_span(TimingScope::FixRun, span_nanos(run_started));
        }
        Ok(report)
    }

    /// Runs the process in variable-id order.
    ///
    /// # Errors
    ///
    /// As [`run`](Fixer2::run).
    pub fn run_default(self) -> Result<FixReport, FixerError> {
        let m = self.inst.num_variables();
        self.run(0..m)
    }

    /// Runs the process over `order`, re-verifying property `P*` after
    /// every fixing step.
    ///
    /// `p_bound` is the symmetric probability bound `p` (usually
    /// [`Instance::max_event_probability`]); `tol` absorbs
    /// floating-point drift (`0` for exact backends).
    ///
    /// # Errors
    ///
    /// [`FixerError::PStarViolated`] at the first step after which the
    /// invariant no longer holds.
    ///
    /// # Panics
    ///
    /// Panics if the order re-fixes or misses a variable.
    pub fn run_audited(
        self,
        order: impl IntoIterator<Item = usize>,
        p_bound: &T,
        tol: &T,
    ) -> Result<FixReport, FixerError> {
        self.run_audited_recorded(order, p_bound, tol, &mut NullRecorder)
    }

    /// [`run_audited`](Fixer2::run_audited) with a flight recorder: in
    /// addition to the run bracket and per-step events, every audit
    /// outcome is emitted as [`Event::AuditPass`] or
    /// [`Event::AuditViolation`].
    ///
    /// # Errors
    ///
    /// [`FixerError::PStarViolated`] at the first step after which the
    /// invariant no longer holds.
    ///
    /// # Panics
    ///
    /// Panics if the order re-fixes or misses a variable.
    pub fn run_audited_recorded<R: Recorder>(
        mut self,
        order: impl IntoIterator<Item = usize>,
        p_bound: &T,
        tol: &T,
        rec: &mut R,
    ) -> Result<FixReport, FixerError> {
        if R::ENABLED {
            rec.record(&fix_run_start_event(self.inst));
        }
        let mut auditor = crate::audit::IncrementalAuditor::new(
            self.inst,
            &self.partial,
            &self.phi,
            p_bound,
            tol,
        );
        for (step, x) in order.into_iter().enumerate() {
            self.fix_variable_recorded(x, rec)?;
            let report = auditor.reverify(self.inst, &self.partial, &self.phi, x);
            if R::ENABLED {
                rec.record(&audit_event(step, x, &report));
            }
            if !report.holds() {
                return Err(FixerError::PStarViolated {
                    step,
                    variable: x,
                    pair_violations: report.pair_violations,
                    prob_violations: report.prob_violations,
                });
            }
        }
        assert!(self.partial.is_complete(), "order must cover all variables");
        let report = self.into_report();
        if R::ENABLED {
            rec.record(&Event::FixRunEnd {
                steps: report.num_steps(),
                violated: report.violated_events().len(),
            });
        }
        Ok(report)
    }

    /// Finalizes into a report (all variables must be fixed).
    ///
    /// # Panics
    ///
    /// Panics if some variable is unfixed.
    pub fn into_report(self) -> FixReport {
        let assignment = self.partial.into_complete();
        let violated = self
            .inst
            .violated_events(&assignment)
            .expect("assignment is complete and in range");
        FixReport::new(assignment, violated, self.steps)
    }
}

impl<T: Num> crate::sweep::ClassFixer<T> for Fixer2<'_, T> {
    fn fork(&self, step_base: usize) -> Self {
        Fixer2 {
            inst: self.inst,
            partial: self.partial.clone(),
            phi: self.phi.clone(),
            step_base,
            steps: Vec::new(),
            // A fork audits only events its own live steps touch, so it
            // starts with an empty probability cache instead of deep-
            // cloning the parent's (absorb likewise leaves the parent's
            // cache alone — its stale entries are never read).
            post_probs: vec![None; self.inst.num_events()],
        }
    }

    fn steps_done(&self) -> usize {
        self.step_base + self.steps.len()
    }

    fn fix_cell<R: Recorder>(&mut self, cell: &[usize], rec: &mut R) -> Result<(), FixerError> {
        for &x in cell {
            self.fix_variable_recorded(x, rec)?;
        }
        Ok(())
    }

    fn absorb(&mut self, shard: Self) {
        let g = self.inst.dependency_graph();
        for step in &shard.steps {
            self.partial.fix(step.variable, step.value);
            if let [u, v] = *self.inst.variable(step.variable).affects() {
                let eid = g.edge_id(u, v).expect("co-affected events are adjacent");
                for node in [u, v] {
                    let val = shard
                        .phi
                        .get(eid, node)
                        .expect("node is an endpoint of its edge")
                        .clone();
                    self.phi
                        .set(eid, node, val)
                        .expect("node is an endpoint of its edge");
                }
            }
        }
        self.steps.extend(shard.steps);
    }

    fn replay(&mut self, x: usize, y: usize) -> Result<(), FixerError> {
        self.replay_variable(x, y)
    }

    fn fresh_auditor(&self, p_bound: &T, tol: &T) -> crate::audit::IncrementalAuditor<T> {
        crate::audit::IncrementalAuditor::new(self.inst, &self.partial, &self.phi, p_bound, tol)
    }

    fn audit_delta(&self, vars: &[usize], p_bound: &T, tol: &T) -> crate::audit::AuditDelta<T> {
        crate::audit::audit_delta_for(
            self.inst,
            &self.partial,
            &self.phi,
            &self.post_probs,
            vars,
            p_bound,
            tol,
        )
    }
}

/// Whether a cost value fails to compare to itself — `true` exactly for
/// `f64` NaN (e.g. `0·∞` from a degenerate φ-product); exact backends
/// always compare and never trip this.
pub(crate) fn non_finite<T: PartialOrd>(c: &T) -> bool {
    c.partial_cmp(c).is_none()
}

/// Builds the [`Event::FixRunStart`] payload for an instance.
pub(crate) fn fix_run_start_event<T: Num>(inst: &Instance<T>) -> Event {
    Event::FixRunStart {
        variables: inst.num_variables(),
        events: inst.num_events(),
        max_rank: inst.max_rank(),
    }
}

/// Builds the [`Event::AuditPass`]/[`Event::AuditViolation`] payload
/// from an audit report for the given step.
pub(crate) fn audit_event(step: usize, variable: usize, report: &crate::AuditReport) -> Event {
    if report.holds() {
        Event::AuditPass { step, variable }
    } else {
        Event::AuditViolation {
            step,
            variable,
            pair_violations: report.pair_violations.clone(),
            prob_violations: report.prob_violations.clone(),
        }
    }
}

/// Builds the [`Event::FixStep`] payload shared by the rank-2 and rank-3
/// fixers: `touched` is the affected-event set of `variable`, `inc` comes
/// from the caller's closure (evaluated against the pre-fix partial),
/// `phi_product` and `headroom` read the already-updated φ-tables.
pub(crate) fn fix_step_event<T: Num>(
    inst: &Instance<T>,
    phi: &Phi<T>,
    step: usize,
    variable: usize,
    value: usize,
    mut inc_of: impl FnMut(usize) -> f64,
) -> Event {
    let g = inst.dependency_graph();
    let touched: Vec<usize> = inst.variable(variable).affects().to_vec();
    let inc: Vec<f64> = touched.iter().map(|&ev| inc_of(ev)).collect();
    let phi_product: Vec<f64> = touched
        .iter()
        .map(|&ev| phi.product_at(g, ev).to_f64())
        .collect();
    let mut headroom = Vec::new();
    for i in 0..touched.len() {
        for j in (i + 1)..touched.len() {
            if let Some(eid) = g.edge_id(touched[i], touched[j]) {
                headroom.push(2.0 - phi.pair_sum(eid).to_f64());
            }
        }
    }
    Event::FixStep {
        step,
        variable,
        value,
        rank: touched.len(),
        touched,
        inc,
        phi_product,
        headroom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::audit_p_star;
    use crate::instance::InstanceBuilder;
    use lll_numeric::BigRational;
    use rand::seq::SliceRandom;
    use rand::{rngs::StdRng, SeedableRng};

    fn q(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    /// Ring instance: one k-valued fair variable per ring edge; the
    /// event at node i occurs iff both incident variables equal 0.
    /// p = 1/k², d = 2 ⇒ criterion needs k² > 4.
    fn ring_instance(n: usize, k: usize) -> Instance<BigRational> {
        let mut b = InstanceBuilder::new(n);
        let vars: Vec<usize> = (0..n)
            .map(|i| b.add_uniform_variable(&[i, (i + 1) % n], k))
            .collect();
        for i in 0..n {
            let left = vars[(i + n - 1) % n];
            let right = vars[i];
            b.set_event_predicate(i, move |vals| vals[left] == 0 && vals[right] == 0);
        }
        b.build().unwrap()
    }

    #[test]
    fn solves_ring_below_threshold() {
        let inst = ring_instance(12, 3); // p·2^d = 4/9 < 1
        assert!(inst.satisfies_exponential_criterion());
        let report = Fixer2::new(&inst).unwrap().run_default().unwrap();
        assert!(
            report.is_success(),
            "violated: {:?}",
            report.violated_events()
        );
        assert!(inst.no_event_occurs(report.assignment()).unwrap());
    }

    #[test]
    fn order_oblivious_with_p_star_audit() {
        let inst = ring_instance(10, 3);
        let p = inst.max_event_probability();
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..10 {
            let mut order: Vec<usize> = (0..inst.num_variables()).collect();
            order.shuffle(&mut rng);
            let mut fixer = Fixer2::new(&inst).unwrap();
            for &x in &order {
                fixer.fix_variable(x).unwrap();
                let audit = audit_p_star(
                    &inst,
                    fixer.partial(),
                    fixer.phi(),
                    &p,
                    &BigRational::zero(),
                );
                assert!(
                    audit.holds(),
                    "trial {trial}: P* broken after fixing {x}: {audit:?}"
                );
            }
            let report = fixer.into_report();
            assert!(report.is_success(), "trial {trial}");
        }
    }

    #[test]
    fn rejects_rank3_instances() {
        let mut b = InstanceBuilder::<f64>::new(3);
        b.add_uniform_variable(&[0, 1, 2], 2);
        let inst = b.build().unwrap();
        assert!(matches!(
            Fixer2::new(&inst),
            Err(FixerError::RankTooLarge {
                found: 3,
                supported: 2
            })
        ));
    }

    #[test]
    fn rejects_at_threshold_but_unchecked_runs() {
        // Sinkless-orientation-style tightness: p = 2^-d exactly.
        let inst = ring_instance(8, 2); // p = 1/4, d = 2: p·2^d = 1
        assert!(!inst.satisfies_exponential_criterion());
        assert!(matches!(
            Fixer2::new(&inst),
            Err(FixerError::CriterionViolated { .. })
        ));
        // Unchecked: the greedy process still runs to completion (it may
        // or may not succeed — on this instance it happens to succeed,
        // the guarantee is simply gone).
        let report = Fixer2::new_unchecked(&inst).unwrap().run_default().unwrap();
        assert_eq!(report.assignment().len(), 8);
    }

    #[test]
    fn rank1_variables_are_handled() {
        let mut b = InstanceBuilder::<BigRational>::new(1);
        let x = b.add_uniform_variable(&[0], 4);
        let y = b.add_uniform_variable(&[0], 4);
        b.set_event_predicate(0, move |vals| vals[x] == 2 && vals[y] == 3);
        let inst = b.build().unwrap();
        assert_eq!(inst.max_dependency_degree(), 0);
        // p = 1/16 < 2^0 = 1.
        let report = Fixer2::new(&inst).unwrap().run_default().unwrap();
        assert!(report.is_success());
    }

    #[test]
    fn biased_distributions() {
        // Non-uniform variables: value 0 with prob 9/10. Event at i
        // occurs iff both incident variables are 0 — the fixer must
        // steer away from the likely-bad values deterministically.
        let n = 6;
        let mut b = InstanceBuilder::<BigRational>::new(n);
        let vars: Vec<usize> = (0..n)
            .map(|i| b.add_variable(&[i, (i + 1) % n], vec![q(9, 10), q(1, 20), q(1, 20)]))
            .collect();
        for i in 0..n {
            let left = vars[(i + n - 1) % n];
            let right = vars[i];
            // Event: both incident variables *differ* (asymmetric, rare).
            b.set_event_predicate(i, move |vals| vals[left] == 1 && vals[right] == 2);
        }
        let inst = b.build().unwrap();
        // p = 1/400, d = 2 ⇒ p·2^d = 1/100 < 1.
        assert!(inst.satisfies_exponential_criterion());
        let report = Fixer2::new(&inst).unwrap().run_default().unwrap();
        assert!(report.is_success());
    }

    #[test]
    fn multiple_variables_per_edge() {
        // Two variables on the same event pair — the weighted-sum
        // bookkeeping must absorb repeated fixings on one edge.
        let mut b = InstanceBuilder::<BigRational>::new(2);
        let x = b.add_uniform_variable(&[0, 1], 4);
        let y = b.add_uniform_variable(&[0, 1], 4);
        b.set_event_predicate(0, move |vals| vals[x] == 0 && vals[y] == 0);
        b.set_event_predicate(1, move |vals| vals[x] == 1 && vals[y] == 1);
        let inst = b.build().unwrap();
        // p = 1/16, d = 1 ⇒ p·2 = 1/8 < 1.
        assert!(inst.satisfies_exponential_criterion());
        let p = inst.max_event_probability();
        for order in [vec![0, 1], vec![1, 0]] {
            let mut fixer = Fixer2::new(&inst).unwrap();
            for &v in &order {
                fixer.fix_variable(v).unwrap();
                let audit = audit_p_star(
                    &inst,
                    fixer.partial(),
                    fixer.phi(),
                    &p,
                    &BigRational::zero(),
                );
                assert!(audit.holds());
            }
            assert!(fixer.into_report().is_success());
        }
    }

    #[test]
    fn recorded_run_matches_report_steps() {
        let inst = ring_instance(12, 3);
        let mut rec = lll_obs::CounterRecorder::new();
        let report = Fixer2::new(&inst)
            .unwrap()
            .run_recorded(0..inst.num_variables(), &mut rec)
            .unwrap();
        assert_eq!(rec.fix_runs, 1);
        assert_eq!(rec.fix_steps, report.num_steps());
        assert_eq!(report.num_steps(), inst.num_variables());
        for (i, s) in report.steps().iter().enumerate() {
            assert_eq!(s.variable, i, "default order fixes in variable-id order");
            assert_eq!(report.assignment()[s.variable], s.value);
        }
        // Below the threshold P* holds, so the recorded pair-sum slack
        // can never go negative.
        assert!(rec.min_headroom >= 0.0, "{}", rec.min_headroom);
    }

    #[test]
    fn recorded_audited_run_emits_a_valid_stream() {
        let inst = ring_instance(10, 3);
        let p = inst.max_event_probability();
        let mut rec = lll_obs::JsonlRecorder::new(Vec::new());
        let report = Fixer2::new(&inst)
            .unwrap()
            .run_audited_recorded(0..inst.num_variables(), &p, &BigRational::zero(), &mut rec)
            .unwrap();
        assert!(report.is_success());
        let text = String::from_utf8(rec.finish().unwrap()).unwrap();
        let lines = lll_obs::schema::validate_stream(&text).unwrap_or_else(|e| panic!("{e}"));
        // fix_run_start + (fix_step + audit_pass) per variable + fix_run_end.
        assert_eq!(lines, 2 + 2 * report.num_steps());
    }

    #[test]
    fn f64_backend_agrees_with_exact() {
        let exact = ring_instance(10, 3);
        let mut b = InstanceBuilder::<f64>::new(10);
        let vars: Vec<usize> = (0..10)
            .map(|i| b.add_uniform_variable(&[i, (i + 1) % 10], 3))
            .collect();
        for i in 0..10 {
            let left = vars[(i + 10 - 1) % 10];
            let right = vars[i];
            b.set_event_predicate(i, move |vals| vals[left] == 0 && vals[right] == 0);
        }
        let float = b.build().unwrap();
        let re = Fixer2::new(&exact).unwrap().run_default().unwrap();
        let rf = Fixer2::new(&float).unwrap().run_default().unwrap();
        assert!(re.is_success() && rf.is_success());
        assert_eq!(re.assignment(), rf.assignment());
    }

    /// An impossible event (probability 0) makes `Inc = 0`; an infinite
    /// φ entry then produces the `0·∞ = NaN` cost. Pre-PR this panicked
    /// inside `min_by`'s `partial_cmp(..).expect(..)`; now it is a typed
    /// error naming the variable and the event.
    #[test]
    fn nan_cost_is_a_typed_error_not_a_panic() {
        let mut b = InstanceBuilder::<f64>::new(2);
        let x = b.add_uniform_variable(&[0, 1], 3);
        b.set_event_predicate(0, |_| false); // impossible: Inc(0, ·) = 0
        b.set_event_predicate(1, move |vals| vals[x] == 0);
        let inst = b.build().unwrap();
        let mut fixer = Fixer2::new_unchecked(&inst).unwrap();
        let eid = inst
            .dependency_graph()
            .edge_id(0, 1)
            .expect("x co-affects 0 and 1");
        // Degenerate bookkeeping state: φ_e^0 = ∞ (reachable for the
        // f64 backend through overflow in adversarial above-threshold
        // drivers; injected directly here to pin the NaN path).
        fixer.phi.set(eid, 0, f64::INFINITY).unwrap();
        assert_eq!(
            fixer.fix_variable(x),
            Err(FixerError::NonFiniteCost {
                variable: x,
                event: 0
            })
        );
        // The failed step must not have mutated the assignment.
        assert!(fixer.partial().get(x).is_none());
    }

    /// Equal-cost values must select the lowest value index, on exact
    /// and floating backends alike — the parallel class sweep's
    /// byte-identity guarantee leans on this tie-break being pinned.
    #[test]
    fn rank1_ties_select_lowest_value_index() {
        fn tie_instance<T: Num>() -> Instance<T> {
            let mut b = InstanceBuilder::<T>::new(1);
            let x = b.add_uniform_variable(&[0], 4);
            // Only y = 3 is bad: Inc(0, y) = 0 for y ∈ {0, 1, 2} — a
            // three-way exact tie.
            b.set_event_predicate(0, move |vals| vals[x] == 3);
            b.build().unwrap()
        }
        let exact = tie_instance::<BigRational>();
        let mut fixer = Fixer2::new(&exact).unwrap();
        assert_eq!(fixer.fix_variable(0).unwrap(), 0);
        let float = tie_instance::<f64>();
        let mut fixer = Fixer2::new(&float).unwrap();
        assert_eq!(fixer.fix_variable(0).unwrap(), 0);
    }
}
