//! The generic derandomization the paper compares against (the Remark
//! after Conjecture 1.5).
//!
//! The paper notes that under the much stronger criterion
//! `p < 2^-Ω(d²·log d)` one can skip all the representable-triple
//! machinery: treat a distance-2 coloring with `C = O(d²)` colors as a
//! `(C, 0)`-network decomposition and run the Fischer–Ghaffari
//! conditional-expectation derandomization on it. This module implements
//! that algorithm in its single-node-cluster form:
//!
//! * iterate the color classes; in class `i` every node `v` of that
//!   color fixes **all** of its still-unfixed incident variables, one at
//!   a time, each time choosing the value minimising
//!   `Σ_{u ∈ N[v]} Pr[E_u | θ]` — by conditional expectation this sum
//!   never increases;
//! * consequently a single class step can inflate an individual event's
//!   conditional probability by a factor of at most `|N[v]| ≤ d + 1`,
//!   and after all `C` classes every event satisfies
//!   `Pr[E_u | full] ≤ p·(d+1)^C`;
//! * so `p·(d+1)^C < 1` certifies success — a criterion of the shape
//!   `2^-O(d²·log d)`, *exponentially more demanding* than the sharp
//!   `p < 2^-d` of Theorems 1.1/1.3. Experiment E13 measures exactly
//!   this gap, which is the paper's motivation in executable form.
//!
//! This fixer works for **any** variable rank (no `r ≤ 3` restriction) —
//! the trade-off the paper's conjecture hopes to beat.

use lll_numeric::Num;

use crate::error::FixerError;
use crate::instance::{Instance, PartialAssignment};
use crate::{FixReport, FixStepRecord};

/// Result of the criterion analysis for the conditional-expectation
/// fixer.
#[derive(Debug, Clone, PartialEq)]
pub struct FgCriterion {
    /// Number of scheduling classes `C` the bound is computed for.
    pub classes: usize,
    /// The certified bound `p·(d+1)^C` (as `f64` for display; the
    /// decision itself is made in the backend's arithmetic).
    pub bound: f64,
    /// Whether `p·(d+1)^C < 1` holds.
    pub holds: bool,
}

/// Checks the conditional-expectation criterion `p·(d+1)^C < 1` for a
/// given class count.
pub fn fg_criterion<T: Num>(inst: &Instance<T>, classes: usize) -> FgCriterion {
    let d1 = T::from_ratio(inst.max_dependency_degree() as i64 + 1, 1);
    let mut bound = inst.max_event_probability();
    for _ in 0..classes {
        bound = bound * d1.clone();
    }
    FgCriterion {
        classes,
        bound: bound.to_f64(),
        holds: bound < T::one(),
    }
}

/// The sequential conditional-expectation (Fischer–Ghaffari-style)
/// fixer.
///
/// `classes` assigns every event node to a scheduling class. The
/// certified bound `p·(d+1)^C` requires a **distance-2 partition**
/// (same-class nodes pairwise at distance ≥ 3): then at most one fixer
/// node per class touches any given event, and the inductive bound
/// `Pr[E_u | after class i] ≤ p·(d+1)^i` holds. Arbitrary partitions
/// still execute (each single-variable choice is individually sound)
/// but only as a heuristic. Node order inside a class is by index; each
/// node fixes all of its still-unfixed incident variables by greedy
/// sum-minimisation over its closed neighborhood.
#[derive(Debug, Clone)]
pub struct FgFixer<'i, T> {
    inst: &'i Instance<T>,
    partial: PartialAssignment,
    steps: Vec<FixStepRecord>,
}

impl<'i, T: Num> FgFixer<'i, T> {
    /// Creates the fixer, validating `p·(d+1)^C < 1` for the class count
    /// that will be used.
    ///
    /// # Errors
    ///
    /// [`FixerError::CriterionViolated`] when the (strong) criterion
    /// fails — in particular on many instances the sharp-threshold
    /// fixers handle comfortably.
    pub fn new(inst: &'i Instance<T>, num_classes: usize) -> Result<FgFixer<'i, T>, FixerError> {
        let crit = fg_criterion(inst, num_classes);
        if !crit.holds {
            return Err(FixerError::CriterionViolated {
                p_times_2_to_d: crit.bound,
            });
        }
        Ok(FgFixer::new_unchecked(inst))
    }

    /// Creates the fixer without any criterion check.
    pub fn new_unchecked(inst: &'i Instance<T>) -> FgFixer<'i, T> {
        FgFixer {
            inst,
            partial: PartialAssignment::new(inst.num_variables()),
            steps: Vec::new(),
        }
    }

    /// Current partial assignment.
    pub fn partial(&self) -> &PartialAssignment {
        &self.partial
    }

    /// The sum `Σ_{u ∈ N[v]} Pr[E_u | θ]` the conditional-expectation
    /// argument controls.
    fn neighborhood_sum(&self, v: usize, extra: Option<(usize, usize)>) -> T {
        let g = self.inst.dependency_graph();
        let mut sum = match extra {
            Some((x, y)) => self.inst.probability_with(v, &self.partial, x, y),
            None => self.inst.probability(v, &self.partial),
        };
        for &u in g.neighbors(v) {
            sum = sum
                + match extra {
                    Some((x, y)) => self.inst.probability_with(u, &self.partial, x, y),
                    None => self.inst.probability(u, &self.partial),
                };
        }
        sum
    }

    /// Node `v` fixes all of its still-unfixed incident variables.
    pub fn fix_node(&mut self, v: usize) {
        let incident: Vec<usize> = (0..self.inst.num_variables())
            .filter(|&x| self.inst.variable(x).affects().contains(&v))
            .collect();
        for x in incident {
            if self.partial.get(x).is_some() {
                continue;
            }
            let k = self.inst.variable(x).num_values();
            let best = (0..k)
                .map(|y| (self.neighborhood_sum(v, Some((x, y))), y))
                .min_by(|(a, _), (b, _)| a.partial_cmp(b).expect("finite sums"))
                .expect("k >= 1")
                .1;
            self.partial.fix(x, best);
            self.steps.push(FixStepRecord {
                variable: x,
                value: best,
            });
        }
    }

    /// Runs the process over the given class partition (`classes[v]` is
    /// the class of event node `v`) and reports the outcome.
    ///
    /// # Panics
    ///
    /// Panics if `classes` does not cover every event.
    pub fn run(mut self, classes: &[usize]) -> FixReport {
        assert_eq!(classes.len(), self.inst.num_events(), "one class per event");
        let num_classes = classes.iter().copied().max().map_or(0, |c| c + 1);
        for class in 0..num_classes {
            for (v, &c) in classes.iter().enumerate() {
                if c == class {
                    self.fix_node(v);
                }
            }
        }
        // Variables whose events were all un-classed cannot remain: every
        // event has a class. (Rank-0 variables are rejected at build.)
        assert!(
            self.partial.is_complete(),
            "class sweep fixes every variable"
        );
        let assignment = self.partial.into_complete();
        let violated = self
            .inst
            .violated_events(&assignment)
            .expect("assignment is complete and in range");
        FixReport::new(assignment, violated, self.steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use lll_coloring::distance2_coloring;
    use lll_local::Simulator;
    use lll_numeric::BigRational;

    /// Hyper-ring instance with very rare events (k large), so even the
    /// strong FG criterion holds.
    fn sparse_hyper_ring(n: usize, k: usize) -> Instance<f64> {
        let mut b = InstanceBuilder::<f64>::new(n);
        let vars: Vec<usize> = (0..n)
            .map(|i| b.add_uniform_variable(&[i, (i + 1) % n, (i + 2) % n], k))
            .collect();
        for j in 0..n {
            let (x1, x2, x3) = (vars[(j + n - 2) % n], vars[(j + n - 1) % n], vars[j]);
            b.set_event_predicate(j, move |vals| {
                vals[x1] == 0 && vals[x2] == 0 && vals[x3] == 0
            });
        }
        b.build().unwrap()
    }

    #[test]
    fn criterion_math() {
        let inst = sparse_hyper_ring(12, 3); // p = 1/27, d = 4
                                             // 2 classes: 1/27 · 25 < 1; 3 classes: 125/27 > 1.
        assert!(fg_criterion(&inst, 2).holds);
        assert!(!fg_criterion(&inst, 3).holds);
        let c = fg_criterion(&inst, 3);
        assert!((c.bound - 125.0 / 27.0).abs() < 1e-9);
    }

    #[test]
    fn solves_with_a_real_distance2_coloring_when_events_are_rare_enough() {
        // Need p·(d+1)^C < 1 with C ≈ 25 classes and d = 4: p < 5^-25 —
        // use k-ary variables with k³ > 5^25 ⇒ k ≥ 2^14. Event tables
        // would explode; instead shrink the class count by using the
        // trivial partition into few classes on a path-like instance.
        // Here: a small hyper-ring, k = 40 (p = 1/64000), and the real
        // distance-2 coloring of its dependency graph (9 colors needed
        // at most; criterion 5^9/64000 ≈ 30 > 1 — still fails!). This
        // demonstrates how demanding the generic criterion is; the test
        // asserts the documented refusal, then runs unchecked and
        // observes that the heuristic still succeeds here.
        let inst = sparse_hyper_ring(12, 40);
        let g = inst.dependency_graph();
        let sim = Simulator::with_shuffled_ids(g, 3);
        let col = distance2_coloring(&sim, 10_000).unwrap();
        let crit = fg_criterion(&inst, col.palette);
        assert!(
            !crit.holds,
            "the generic criterion is very demanding: {crit:?}"
        );
        let report = FgFixer::new_unchecked(&inst).run(&col.colors);
        assert!(report.is_success());
    }

    #[test]
    fn certified_run_with_distance2_classes() {
        // v mod 5 is a distance-2 partition of the hyper-ring(10)
        // dependency graph (same class ⇒ index gap 5 ⇒ distance 3 under
        // steps ±1, ±2). Criterion for C = 5 classes, d = 4:
        // p·5^5 < 1 ⇔ k³ > 3125 ⇔ k ≥ 15; use k = 16.
        let inst = sparse_hyper_ring(10, 16);
        let fixer = FgFixer::new(&inst, 5).unwrap();
        let classes: Vec<usize> = (0..10).map(|v| v % 5).collect();
        // distance-2 check: same-class nodes are ≥ 3 apart.
        let g = inst.dependency_graph();
        for u in 0..10 {
            for v in (u + 1)..10 {
                if classes[u] == classes[v] {
                    assert!(g.bfs_distances(u)[v] >= 3);
                }
            }
        }
        let report = fixer.run(&classes);
        assert!(report.is_success());
    }

    #[test]
    fn refuses_instances_the_sharp_fixer_accepts() {
        // The paper's point, executable: an instance below the *sharp*
        // threshold but far above the generic criterion.
        let inst = sparse_hyper_ring(12, 3); // p·2^d = 16/27 < 1
        assert!(inst.satisfies_exponential_criterion());
        assert!(crate::Fixer3::new(&inst).is_ok());
        // A genuine distance-2 schedule needs ≥ 5 classes here; the
        // generic criterion already fails at 3.
        assert!(matches!(
            FgFixer::new(&inst, 5),
            Err(FixerError::CriterionViolated { .. })
        ));
    }

    #[test]
    fn exact_backend_and_rank_freedom() {
        // FG handles rank-4 variables, which Fixer3 rejects.
        let mut b = InstanceBuilder::<BigRational>::new(4);
        let x = b.add_uniform_variable(&[0, 1, 2, 3], 64);
        b.set_event_predicate(0, move |vals| vals[x] == 0);
        b.set_event_predicate(1, move |vals| vals[x] == 1);
        b.set_event_predicate(2, move |vals| vals[x] == 2);
        b.set_event_predicate(3, move |vals| vals[x] == 3);
        let inst = b.build().unwrap();
        assert!(crate::Fixer3::new(&inst).is_err());
        // p = 1/64, d = 3, one class: 1/64·4 < 1.
        let report = FgFixer::new(&inst, 1).unwrap().run(&[0, 0, 0, 0]);
        assert!(report.is_success());
    }
}
