//! Representable triples — the geometry behind the rank-3 fixer.
//!
//! Definition 3.3 of the paper: `(a, b, c) ∈ ℝ³≥0` is *representable* if
//! there are `a₁, a₂, b₁, b₃, c₂, c₃ ∈ [0, 2]` with
//! `a₁a₂ = a`, `b₁b₃ = b`, `c₂c₃ = c` and the pair sums
//! `a₁ + b₁ ≤ 2`, `a₂ + c₂ ≤ 2`, `b₃ + c₃ ≤ 2`. The six values are the
//! candidate `φ` entries on the three dependency-graph edges of a
//! hyperedge `{u, v, w}`; representability of the triple of target
//! products is exactly sub-property (1) of `P*`.
//!
//! Lemma 3.5 characterises the set `S_rep` of representable triples as
//! `a + b ≤ 4 ∧ c ≤ f(a, b)` with
//!
//! ```text
//! f(a, b) = 4 + ½·(ab − 2a − 2b − √(ab(4−a)(4−b)))
//! ```
//!
//! For rational inputs membership is decidable *exactly*:
//! `c ≤ f(a,b) ⟺ √D ≤ R` with `D = ab(4−a)(4−b)` and
//! `R = 8 + ab − 2a − 2b − 2c`, i.e. `R ≥ 0 ∧ D ≤ R²` — a polynomial
//! inequality over ℚ (this crate's [`is_representable`]).
//!
//! [`decompose`] reverses the characterisation constructively, following
//! the appendix proof: with `a₁ = x` the one-parameter family
//! `a₂ = a/x`, `b₁ = 2−x`, `b₃ = b/(2−x)`, `c₂ = 2−a₂`, `c₃ = 2−b₃`
//! attains `c₂c₃ = c(x) = (2−a/x)(2−b/(2−x))`, a unimodal function whose
//! maximum over `x ∈ [a/2, 2−b/2]` is `f(a, b)`.

use lll_graphs::Graph;
use lll_numeric::Num;

use crate::error::FixerError;

/// The surface `f(a, b)` of Lemma 3.5 bounding `S_rep` from above
/// (`f64`; Figure 1 of the paper is the plot of this function).
///
/// # Panics
///
/// Panics unless `a, b ≥ 0` and `a + b ≤ 4` (the function's domain).
pub fn f_surface(a: f64, b: f64) -> f64 {
    assert!(
        a >= 0.0 && b >= 0.0 && a + b <= 4.0 + 1e-12,
        "outside the domain of f"
    );
    let d = (a * b * (4.0 - a) * (4.0 - b)).max(0.0);
    4.0 + 0.5 * (a * b - 2.0 * a - 2.0 * b - d.sqrt())
}

/// Decides membership of `(a, b, c)` in `S_rep`.
///
/// Exact for exact backends: the square root of Lemma 3.5 is eliminated
/// into a polynomial inequality. For `f64`, plain floating comparisons
/// are used; callers that need one-sided robustness should test a
/// slightly shrunk triple (see [`representability_score`]).
///
/// # Examples
///
/// ```
/// use lll_core::triples::is_representable;
/// use lll_numeric::BigRational;
///
/// // The paper's Figure 2 example, decided exactly:
/// let (a, b, c) = (
///     BigRational::from_ratio(1, 4),
///     BigRational::from_ratio(3, 2),
///     BigRational::from_ratio(1, 10),
/// );
/// assert!(is_representable(&a, &b, &c));
/// // The all-ones initial state of φ sits exactly on the surface:
/// let one = BigRational::one();
/// assert!(is_representable(&one, &one, &one));
/// ```
pub fn is_representable<T: Num>(a: &T, b: &T, c: &T) -> bool {
    let zero = T::zero();
    if *a < zero || *b < zero || *c < zero {
        return false;
    }
    let four = T::from_ratio(4, 1);
    if a.clone() + b.clone() > four {
        return false;
    }
    let (r, d) = surface_terms(a, b, c);
    if r < zero {
        return false;
    }
    T::sqrt_leq(&d, &r)
}

/// The two polynomial terms of the representability inequality,
/// `r = 8 + ab - 2a - 2b - 2c` and `d = ab(4-a)(4-b)`, evaluated through
/// the [`Num`] accumulation kernels: the kernel defaults reproduce the
/// historical operation-for-operation `f64` folds (subtraction is
/// exactly addition of the negation), while the exact backend
/// renormalizes each term once instead of per partial product/sum.
fn surface_terms<T: Num>(a: &T, b: &T, c: &T) -> (T, T) {
    let two = T::from_ratio(2, 1);
    let four = T::from_ratio(4, 1);
    let ab = a.clone() * b.clone();
    let r_terms = [
        T::from_ratio(8, 1),
        ab.clone(),
        -(two.clone() * a.clone()),
        -(two.clone() * b.clone()),
        -(two * c.clone()),
    ];
    let r = T::sum_of(r_terms.iter());
    let d_terms = [ab, four.clone() - a.clone(), four - b.clone()];
    (r, T::product_of(d_terms.iter()))
}

/// A smooth ranking of how comfortably `(a, b, c)` sits inside `S_rep`:
/// non-negative iff representable (up to backend exactness), larger is
/// deeper inside. Used by the rank-3 fixer to choose, among the values of
/// a variable, the one whose induced triple is most robustly
/// representable.
pub fn representability_score<T: Num>(a: &T, b: &T, c: &T) -> T {
    let zero = T::zero();
    if *a < zero || *b < zero || *c < zero {
        return T::from_ratio(-1, 1);
    }
    let four = T::from_ratio(4, 1);
    let slack = four.clone() - a.clone() - b.clone();
    if slack < zero {
        return slack - T::one();
    }
    let (r, d) = surface_terms(a, b, c);
    if r < zero {
        return r;
    }
    r.clone() * r - d
}

/// Brute-force inner maximisation of `c` over decompositions — the
/// reference against which [`f_surface`] is validated (test-only quality,
/// exported for the Figure 1 experiment).
pub fn max_c_brute(a: f64, b: f64, steps: usize) -> f64 {
    if a + b > 4.0 {
        return f64::NEG_INFINITY;
    }
    if a == 0.0 && b == 0.0 {
        return 4.0;
    }
    if a == 0.0 {
        return 4.0 - b;
    }
    if b == 0.0 {
        return 4.0 - a;
    }
    let lo = a / 2.0;
    let hi = 2.0 - b / 2.0;
    let mut best = 0.0f64;
    for i in 0..=steps {
        let x = lo + (hi - lo) * i as f64 / steps as f64;
        if x <= 0.0 || x >= 2.0 {
            continue;
        }
        let c = (2.0 - a / x) * (2.0 - b / (2.0 - x));
        best = best.max(c);
    }
    best
}

/// The six edge values witnessing representability (Definition 3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition<T> {
    /// Value on edge `{u,v}`, side `u`.
    pub a1: T,
    /// Value on edge `{u,w}`, side `u`.
    pub a2: T,
    /// Value on edge `{u,v}`, side `v`.
    pub b1: T,
    /// Value on edge `{v,w}`, side `v`.
    pub b3: T,
    /// Value on edge `{u,w}`, side `w`.
    pub c2: T,
    /// Value on edge `{v,w}`, side `w`.
    pub c3: T,
}

impl<T: Num> Decomposition<T> {
    /// Checks the Definition 3.3 constraints and that the products
    /// *cover* the triple (products ≥ `a`, `b`, `c` within `tol`, which
    /// is what property `P*` needs — exact callers pass zero tolerance).
    pub fn covers(&self, a: &T, b: &T, c: &T, tol: &T) -> bool {
        let zero = T::zero();
        let two = T::from_ratio(2, 1);
        let within = |v: &T| *v >= zero.clone() - tol.clone() && *v <= two.clone() + tol.clone();
        let vals = [&self.a1, &self.a2, &self.b1, &self.b3, &self.c2, &self.c3];
        if !vals.iter().all(|v| within(v)) {
            return false;
        }
        let sums_ok = self.a1.clone() + self.b1.clone() <= two.clone() + tol.clone()
            && self.a2.clone() + self.c2.clone() <= two.clone() + tol.clone()
            && self.b3.clone() + self.c3.clone() <= two + tol.clone();
        let prods_ok = self.a1.clone() * self.a2.clone() >= a.clone() - tol.clone()
            && self.b1.clone() * self.b3.clone() >= b.clone() - tol.clone()
            && self.c2.clone() * self.c3.clone() >= c.clone() - tol.clone();
        sums_ok && prods_ok
    }
}

/// Evaluates `c(x) = (2 − a/x)(2 − b/(2−x))` — the product `c₂c₃`
/// reachable with `a₁ = x` (requires `0 < x < 2`).
fn c_of_x<T: Num>(a: &T, b: &T, x: &T) -> T {
    let two = T::from_ratio(2, 1);
    (two.clone() - a.clone() / x.clone()) * (two.clone() - b.clone() / (two - x.clone()))
}

/// How many ternary-search iterations the exact decomposition performs
/// before falling back to the closed form. `(2/3)^128 ≈ 6e-23` of the
/// initial interval is far below any margin arising in practice.
const TERNARY_ITERS: usize = 128;

/// Constructively decomposes a representable triple into the six edge
/// values (Definition 3.3), with `c₂c₃` *exactly* `c` and the other two
/// products exactly `a` and `b`.
///
/// Follows the appendix proof of Lemma 3.5: degenerate zero coordinates
/// are handled in closed form, the general case searches the unimodal
/// family `c(x)`; for exact backends a candidate `x` is first guessed in
/// floating point and verified exactly, then recovered through the exact
/// algebraic closed form whenever `√D` is representable (in particular
/// for every triple exactly on the boundary surface), and finally located
/// by an exact ternary search for strictly interior triples.
///
/// Returns `None` if the triple is not representable (or, for the `f64`
/// backend, sits too close to the boundary for the search to certify).
///
/// # Examples
///
/// ```
/// use lll_core::triples::decompose;
/// use lll_numeric::BigRational;
///
/// let (a, b, c) = (
///     BigRational::from_ratio(1, 4),
///     BigRational::from_ratio(3, 2),
///     BigRational::from_ratio(1, 10),
/// );
/// let d = decompose(&a, &b, &c).expect("representable");
/// assert_eq!(d.a1.clone() * d.a2.clone(), a); // products are exact
/// assert!(d.a1.clone() + d.b1.clone() <= BigRational::from_ratio(2, 1));
/// ```
pub fn decompose<T: Num>(a: &T, b: &T, c: &T) -> Option<Decomposition<T>> {
    if !is_representable(a, b, c) {
        return None;
    }
    let zero = T::zero();
    let two = T::from_ratio(2, 1);

    // Degenerate coordinates first (closed forms from the appendix).
    if a.is_zero() {
        let b3 = b.clone() / two.clone();
        let c3 = two.clone() - b3.clone();
        let c2 = if c3.is_zero() {
            zero.clone()
        } else {
            c.clone() / c3.clone()
        };
        return Some(Decomposition {
            a1: zero.clone(),
            a2: zero,
            b1: two,
            b3,
            c2,
            c3,
        });
    }
    if b.is_zero() {
        let a2 = a.clone() / two.clone();
        let c2 = two.clone() - a2.clone();
        let c3 = if c2.is_zero() {
            zero.clone()
        } else {
            c.clone() / c2.clone()
        };
        return Some(Decomposition {
            a1: two.clone(),
            a2,
            b1: zero.clone(),
            b3: zero,
            c2,
            c3,
        });
    }
    if c.is_zero() {
        let a1 = a.clone() / two.clone();
        let a2 = two.clone();
        let b1 = two.clone() - a1.clone();
        let b3 = b.clone() / b1.clone(); // b1 > 0 since a < 4 (else b = 0)
        return Some(Decomposition {
            a1,
            a2,
            b1,
            b3,
            c2: zero.clone(),
            c3: zero,
        });
    }

    // General case: find x in [a/2, 2 - b/2] with c(x) >= c.
    let lo = a.clone() / two.clone();
    let hi = two.clone() - b.clone() / two.clone();
    let build = |x: &T| -> Decomposition<T> {
        let a1 = x.clone();
        let a2 = a.clone() / x.clone();
        let b1 = two.clone() - x.clone();
        let b3 = b.clone() / (two.clone() - x.clone());
        let c3 = two.clone() - b3.clone();
        let c2 = if c3.is_zero() {
            T::zero()
        } else {
            c.clone() / c3.clone()
        };
        Decomposition {
            a1,
            a2,
            b1,
            b3,
            c2,
            c3,
        }
    };
    let good =
        |x: &T| -> bool { *x > zero && *x < two && *x >= lo && *x <= hi && c_of_x(a, b, x) >= *c };

    // 1. Floating-point guess at the arg-max of c(x), verified in T.
    if let Some(xf) = closed_form_x_f64(a.to_f64(), b.to_f64()) {
        let xf = xf.clamp(lo.to_f64(), hi.to_f64());
        if xf.is_finite() {
            let x = T::from_f64_approx(xf);
            if good(&x) {
                return Some(build(&x));
            }
        }
    }

    // 2. Exact closed form: when √D is exactly representable (always for
    //    triples exactly on the boundary surface with rational c — there
    //    c = f(a, b) forces √D rational), the arg-max itself is exact.
    //    Tried before the ternary search because on the boundary the
    //    search can only converge *towards* the single good x, never
    //    reach it.
    if let Some(x) = closed_form_x_exact(a, b) {
        if good(&x) {
            return Some(build(&x));
        }
    }

    // 3. Ternary search on the unimodal c(x) (strictly interior triples).
    let mut l = lo.clone();
    let mut h = hi.clone();
    let third = T::from_ratio(1, 3);
    for _ in 0..TERNARY_ITERS {
        let gap = h.clone() - l.clone();
        let m1 = l.clone() + gap.clone() * third.clone();
        let m2 = h.clone() - gap * third.clone();
        if good(&m1) {
            return Some(build(&m1));
        }
        if good(&m2) {
            return Some(build(&m2));
        }
        if c_of_x(a, b, &m1) < c_of_x(a, b, &m2) {
            l = m1;
        } else {
            h = m2;
        }
    }
    None
}

/// Floating-point arg-max of `c(x)` (appendix of the paper):
/// `x₁ = (a(4−b) − √(ab(4−a)(4−b))) / (2(a−b))`, or `1` when `a = b`.
fn closed_form_x_f64(a: f64, b: f64) -> Option<f64> {
    if !(a > 0.0 && b > 0.0) {
        return None;
    }
    if (a - b).abs() < 1e-12 {
        return Some(1.0);
    }
    let d = (a * b * (4.0 - a) * (4.0 - b)).max(0.0);
    Some((a * (4.0 - b) - d.sqrt()) / (2.0 * (a - b)))
}

/// Exact arg-max of `c(x)` for backends where `√D` happens to be exactly
/// representable (`a = b`, or `D` a perfect rational square — decided by
/// [`Num::exact_sqrt`], which for the rational backend finds non-dyadic
/// roots like `√(7744/2025) = 88/45` exactly).
fn closed_form_x_exact<T: Num>(a: &T, b: &T) -> Option<T> {
    if a == b {
        return Some(T::one());
    }
    // x1 = (a(4-b) - sqrt(D)) / (2(a-b)); find sqrt(D) as a T if exact.
    let four = T::from_ratio(4, 1);
    let d = a.clone() * b.clone() * (four.clone() - a.clone()) * (four.clone() - b.clone());
    let s = d.exact_sqrt()?;
    let num = a.clone() * (four - b.clone()) - s;
    let den = T::from_ratio(2, 1) * (a.clone() - b.clone());
    Some(num / den)
}

/// The paper's potential function `φ` (Definition 3.1): one value in
/// `[0, 2]` per (dependency-graph edge, endpoint) pair, initially 1.
///
/// Property `P*` requires `φ_e^u + φ_e^v ≤ 2` on every edge and
/// `Pr[E_v | fixed] ≤ p · Π_{e∋v} φ_e^v` at every node; the audit lives
/// in [`audit_p_star`](crate::audit_p_star).
#[derive(Debug, Clone, PartialEq)]
pub struct Phi<T> {
    /// Per edge id: (value at min endpoint, value at max endpoint).
    values: Vec<(T, T)>,
    edges: Vec<(usize, usize)>,
}

impl<T: Num> Phi<T> {
    /// The all-ones potential on the edges of `g` (the paper's initial
    /// state).
    pub fn ones(g: &Graph) -> Phi<T> {
        Phi {
            values: vec![(T::one(), T::one()); g.num_edges()],
            edges: g.edges().to_vec(),
        }
    }

    /// The value `φ_e^v`.
    ///
    /// # Errors
    ///
    /// [`FixerError::NotAnEndpoint`] if `v` is not an endpoint of edge
    /// `eid` — adversarial-order drivers that mis-route a lookup get a
    /// typed error instead of an abort.
    pub fn get(&self, eid: usize, v: usize) -> Result<&T, FixerError> {
        let (a, b) = self.edges[eid];
        if v == a {
            Ok(&self.values[eid].0)
        } else if v == b {
            Ok(&self.values[eid].1)
        } else {
            Err(FixerError::NotAnEndpoint { edge: eid, node: v })
        }
    }

    /// Overwrites `φ_e^v`.
    ///
    /// # Errors
    ///
    /// [`FixerError::NotAnEndpoint`] if `v` is not an endpoint of edge
    /// `eid`; the potential is left unchanged.
    pub fn set(&mut self, eid: usize, v: usize, val: T) -> Result<(), FixerError> {
        let (a, b) = self.edges[eid];
        if v == a {
            self.values[eid].0 = val;
            Ok(())
        } else if v == b {
            self.values[eid].1 = val;
            Ok(())
        } else {
            Err(FixerError::NotAnEndpoint { edge: eid, node: v })
        }
    }

    /// The pair sum `φ_e^u + φ_e^v` of edge `eid` (sub-property (1) of
    /// `P*` demands ≤ 2).
    pub fn pair_sum(&self, eid: usize) -> T {
        self.values[eid].0.clone() + self.values[eid].1.clone()
    }

    /// The product `Π_{e∋v} φ_e^v` bounding event `v`'s probability
    /// blow-up (sub-property (2) of `P*`).
    pub fn product_at(&self, g: &Graph, v: usize) -> T {
        T::product_of(g.incident_edges(v).iter().map(|&eid| {
            self.get(eid, v)
                .expect("incident edges have v as an endpoint")
        }))
    }

    /// Number of edges carrying potential values.
    pub fn num_edges(&self) -> usize {
        self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lll_numeric::BigRational;

    fn q(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    #[test]
    fn paper_figure2_triple_is_representable() {
        // Figure 2: (a, b, c) = (1/4, 3/2, 1/10).
        assert!(is_representable(&q(1, 4), &q(3, 2), &q(1, 10)));
        assert!(is_representable(&0.25f64, &1.5, &0.1));
        let d = decompose(&q(1, 4), &q(3, 2), &q(1, 10)).unwrap();
        assert!(d.covers(&q(1, 4), &q(3, 2), &q(1, 10), &BigRational::zero()));
        // products are exact
        assert_eq!(d.a1.clone() * d.a2.clone(), q(1, 4));
        assert_eq!(d.b1.clone() * d.b3.clone(), q(3, 2));
        assert_eq!(d.c2.clone() * d.c3.clone(), q(1, 10));
    }

    #[test]
    fn extremes_of_s_rep() {
        // (0,0,4) is the apex.
        assert!(is_representable(&q(0, 1), &q(0, 1), &q(4, 1)));
        assert!(!is_representable(&q(0, 1), &q(0, 1), &q(41, 10)));
        // f(0, b) = 4 - b.
        assert!(is_representable(&q(0, 1), &q(3, 1), &q(1, 1)));
        assert!(!is_representable(&q(0, 1), &q(3, 1), &q(11, 10)));
        // a + b = 4 boundary: only c = 0 (f(a, 4-a) = ... >= 0).
        assert!(is_representable(&q(4, 1), &q(0, 1), &q(0, 1)));
        assert!(!is_representable(&q(4, 1), &q(0, 1), &q(1, 100)));
        assert!(!is_representable(&q(3, 1), &q(2, 1), &q(0, 1)));
        // f(2,2) = 0.
        assert!(is_representable(&q(2, 1), &q(2, 1), &q(0, 1)));
        assert!(!is_representable(&q(2, 1), &q(2, 1), &q(1, 1000)));
        // negative coordinates are never representable
        assert!(!is_representable(&q(-1, 1), &q(0, 1), &q(0, 1)));
        // all-ones (the initial φ state) is comfortably inside: f(1,1)=1.
        assert!(is_representable(&q(1, 1), &q(1, 1), &q(1, 1)));
        assert!(!is_representable(&q(1, 1), &q(1, 1), &q(1001, 1000)));
    }

    #[test]
    fn boundary_triple_with_rational_surface_decomposes_exactly() {
        // f(1,1) = 1 and D = 9 is a perfect square: the exact closed-form
        // fallback must handle (1,1,1).
        let d = decompose(&q(1, 1), &q(1, 1), &q(1, 1)).unwrap();
        assert!(d.covers(&q(1, 1), &q(1, 1), &q(1, 1), &BigRational::zero()));
        assert_eq!(d.c2.clone() * d.c3.clone(), q(1, 1));
    }

    #[test]
    fn boundary_triple_with_non_dyadic_sqrt_decomposes_exactly() {
        // (a, b) = (1/3, 16/15): D = ab(4−a)(4−b) = 7744/2025 is a
        // perfect rational square with the *non-dyadic* root
        // √D = 88/45, arg-max x = 2/3 and f(a, b) = 9/5 exactly. A
        // dyadic-only root search can never certify this boundary
        // triple — it needs the rational backend's exact perfect-square
        // roots (Num::exact_sqrt).
        let (a, b, c) = (q(1, 3), q(16, 15), q(9, 5));
        assert!(is_representable(&a, &b, &c));
        let d = decompose(&a, &b, &c).expect("triple exactly on the surface");
        assert!(d.covers(&a, &b, &c, &BigRational::zero()));
        assert_eq!(d.a1, q(2, 3), "decomposition sits at the exact arg-max");
        assert_eq!(d.c2.clone() * d.c3.clone(), c);
        // Nudged just above the surface it must be rejected again.
        let off = &c + &q(1, 1_000_000_000);
        assert!(!is_representable(&a, &b, &off));
        assert!(decompose(&a, &b, &off).is_none());
    }

    #[test]
    fn figure2_pair_on_and_just_off_the_surface() {
        // For the Figure 2 pair (a, b) = (1/4, 3/2): D = 225/64 with
        // √D = 15/8, so f(a, b) = 4 + ½(ab − 2a − 2b − √D) = 3/2
        // exactly. The surface point itself must decompose with exact
        // products, and any c beyond it must be rejected.
        let (a, b) = (q(1, 4), q(3, 2));
        let on = q(3, 2);
        assert!(is_representable(&a, &b, &on));
        let d = decompose(&a, &b, &on).expect("surface point is representable");
        assert!(d.covers(&a, &b, &on, &BigRational::zero()));
        assert_eq!(d.a1, q(1, 2), "exact arg-max x = 1/2");
        let off = &on + &q(1, 1_000_000_000_000);
        assert!(!is_representable(&a, &b, &off));
        assert!(decompose(&a, &b, &off).is_none());
        // The interior Figure 2 triple (c = 1/10 < 3/2) keeps working.
        assert!(decompose(&a, &b, &q(1, 10)).is_some());
    }

    #[test]
    fn surface_matches_brute_force() {
        for (a, b) in [
            (0.5, 0.5),
            (1.0, 2.0),
            (0.1, 3.5),
            (2.0, 1.9),
            (1.0, 1.0),
            (3.0, 0.2),
        ] {
            let f = f_surface(a, b);
            let brute = max_c_brute(a, b, 20_000);
            assert!(
                (f - brute).abs() < 1e-3,
                "f({a},{b}) = {f} vs brute {brute}"
            );
            // And the surface point itself is (just) representable in f64.
            assert!(is_representable(&a, &b, &(f - 1e-9)));
            assert!(!is_representable(&a, &b, &(f + 1e-6)));
        }
    }

    #[test]
    fn downward_closure() {
        // S_rep is downward closed: shrinking any coordinate preserves
        // membership (used implicitly by the fixer's "cover" semantics).
        let pts = [
            (q(1, 4), q(3, 2), q(1, 10)),
            (q(1, 1), q(1, 1), q(1, 1)),
            (q(2, 1), q(1, 1), q(1, 4)),
        ];
        for (a, b, c) in pts {
            assert!(is_representable(&a, &b, &c));
            let half = q(1, 2);
            assert!(is_representable(&(a.clone() * half.clone()), &b, &c));
            assert!(is_representable(&a, &(b.clone() * half.clone()), &c));
            assert!(is_representable(&a, &b, &(c * half)));
        }
    }

    #[test]
    fn score_sign_agrees_with_membership() {
        let cases = [
            (q(1, 1), q(1, 1), q(1, 1), true),
            (q(1, 1), q(1, 1), q(2, 1), false),
            (q(3, 1), q(2, 1), q(0, 1), false),
            (q(1, 4), q(3, 2), q(1, 10), true),
            (q(0, 1), q(0, 1), q(4, 1), true),
        ];
        for (a, b, c, member) in cases {
            assert_eq!(is_representable(&a, &b, &c), member);
            let score = representability_score(&a, &b, &c);
            assert_eq!(
                score >= BigRational::zero(),
                member,
                "score {score} for member {member}"
            );
        }
    }

    #[test]
    fn decompose_interior_triples_exactly() {
        let pts = [
            (q(1, 1), q(1, 1), q(1, 2)),
            (q(1, 2), q(1, 2), q(2, 1)),
            (q(3, 1), q(1, 2), q(1, 10)),
            (q(0, 1), q(2, 1), q(2, 1)),
            (q(2, 1), q(0, 1), q(1, 1)),
            (q(1, 1), q(3, 1), q(0, 1)),
            (q(0, 1), q(0, 1), q(4, 1)),
            (q(7, 8), q(9, 8), q(3, 4)),
        ];
        for (a, b, c) in pts {
            let d = decompose(&a, &b, &c)
                .unwrap_or_else(|| panic!("decompose failed for ({a}, {b}, {c})"));
            assert!(
                d.covers(&a, &b, &c, &BigRational::zero()),
                "({a}, {b}, {c}) -> {d:?}"
            );
            assert_eq!(d.c2.clone() * d.c3.clone(), c, "c product must be exact");
        }
    }

    #[test]
    fn decompose_rejects_non_representable() {
        assert!(decompose(&q(1, 1), &q(1, 1), &q(3, 2)).is_none());
        assert!(decompose(&q(3, 1), &q(2, 1), &q(0, 1)).is_none());
    }

    #[test]
    fn decompose_f64_backend() {
        for (a, b, c) in [
            (0.25, 1.5, 0.1),
            (1.0, 1.0, 0.5),
            (0.0, 2.0, 1.5),
            (2.5, 0.5, 0.3),
        ] {
            let d = decompose(&a, &b, &c).unwrap();
            assert!(d.covers(&a, &b, &c, &1e-9), "({a}, {b}, {c}) -> {d:?}");
        }
    }

    #[test]
    fn incurvedness_on_random_segments() {
        // Lemma 3.7: no segment between two outside points passes through
        // S_rep. Deterministic pseudo-random sampling.
        let mut state = 0x12345678u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64 / 5.0) // in [0, 5)
        };
        let mut tested = 0;
        for _ in 0..2000 {
            let s = (rnd(), rnd(), rnd());
            let s2 = (rnd(), rnd(), rnd());
            if is_representable(&s.0, &s.1, &s.2) || is_representable(&s2.0, &s2.1, &s2.2) {
                continue;
            }
            tested += 1;
            for k in 1..10 {
                let t = k as f64 / 10.0;
                let m = (
                    s.0 * t + s2.0 * (1.0 - t),
                    s.1 * t + s2.1 * (1.0 - t),
                    s.2 * t + s2.2 * (1.0 - t),
                );
                // Allow a hair of float noise on the boundary.
                assert!(
                    !is_representable(&(m.0 + 1e-9), &(m.1 + 1e-9), &(m.2 + 1e-9)),
                    "segment {s:?} -- {s2:?} enters S_rep at t={t}"
                );
            }
        }
        assert!(tested > 100, "sampling produced too few outside pairs");
    }

    #[test]
    fn f_convexity_by_midpoints() {
        // Lemma 3.6 via midpoint convexity on a grid.
        let grid: Vec<f64> = (1..40).map(|i| i as f64 * 0.1).collect();
        for &a in &grid {
            for &b in &grid {
                if a + b >= 4.0 {
                    continue;
                }
                for (a2, b2) in [(a * 0.5, b * 0.7), (a * 0.9, (4.0 - a) * 0.5)] {
                    if a2 + b2 >= 4.0 || a2 <= 0.0 || b2 <= 0.0 {
                        continue;
                    }
                    let mid = f_surface((a + a2) / 2.0, (b + b2) / 2.0);
                    let avg = 0.5 * (f_surface(a, b) + f_surface(a2, b2));
                    assert!(
                        mid <= avg + 1e-9,
                        "convexity fails at ({a},{b})-({a2},{b2})"
                    );
                }
            }
        }
    }

    #[test]
    fn phi_basics() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap();
        let mut phi = Phi::<BigRational>::ones(&g);
        assert_eq!(phi.num_edges(), 3);
        let e01 = g.edge_id(0, 1).unwrap();
        assert_eq!(phi.get(e01, 0).unwrap(), &BigRational::one());
        assert_eq!(phi.pair_sum(e01), q(2, 1));
        assert_eq!(phi.product_at(&g, 1), BigRational::one());
        phi.set(e01, 1, q(3, 2)).unwrap();
        assert_eq!(phi.get(e01, 1).unwrap(), &q(3, 2));
        assert_eq!(phi.get(e01, 0).unwrap(), &BigRational::one());
        assert_eq!(phi.pair_sum(e01), q(5, 2));
        let e12 = g.edge_id(1, 2).unwrap();
        phi.set(e12, 1, q(1, 2)).unwrap();
        assert_eq!(phi.product_at(&g, 1), q(3, 4));
    }

    #[test]
    fn phi_rejects_foreign_nodes_with_typed_error() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut phi = Phi::<f64>::ones(&g);
        let e01 = g.edge_id(0, 1).unwrap();
        assert_eq!(
            phi.get(e01, 2).unwrap_err(),
            FixerError::NotAnEndpoint { edge: e01, node: 2 }
        );
        assert_eq!(
            phi.set(e01, 2, 1.5).unwrap_err(),
            FixerError::NotAnEndpoint { edge: e01, node: 2 }
        );
        // A failed set leaves the potential untouched.
        assert_eq!(phi.get(e01, 0).unwrap(), &1.0);
        assert_eq!(phi.get(e01, 1).unwrap(), &1.0);
    }
}
