//! The color-class-parallel fixing sweep.
//!
//! The distributed drivers (Corollaries 1.2 and 1.4) schedule each color
//! class so that its *cells* — one dependency edge's variables for the
//! rank-2 driver, one event node's unfixed incident variables for the
//! rank-3 driver — touch pairwise disjoint events. Variables within a
//! cell interact (they share events), so a cell is fixed sequentially by
//! one worker; cells are independent, so a class's cells can be fixed by
//! concurrent workers, which is exactly what a message-passing
//! implementation does in one LOCAL round.
//!
//! Determinism is by construction, not by luck:
//!
//! * the shard cuts come from [`shard_bounds`] over the prefix-sum cell
//!   weights — a pure function of the schedule and the thread count;
//! * each worker forks the fixer (partial assignment + `φ` snapshot)
//!   and owns a contiguous run of cells, fixing them in cell order with
//!   run-global step numbers offset by the shard's start position;
//! * per-shard events go into a [`BufRecorder`] and are replayed in
//!   static shard order after the join, so the merged `--obs` stream is
//!   byte-identical to the sequential emission at every thread count;
//! * shard errors are reduced to the earliest shard's error, and that
//!   shard's partial work *is* absorbed — the fixer state and event
//!   stream on failure match the sequential run's failure state;
//! * audit checks ([`AuditDelta`]) are computed inside the workers
//!   against the forked state (sound because a shard's events are final
//!   when it finishes and disjoint from every other shard's) and applied
//!   to the [`IncrementalAuditor`](crate::IncrementalAuditor) on the
//!   coordinating thread, keeping the audited driver's parallel section
//!   large enough to beat Amdahl.
//!
//! [`shard_bounds`]: lll_local::shard_bounds

use lll_local::{effective_workers, shard_bounds};
use lll_numeric::Num;
use lll_obs::{BufRecorder, NullRecorder, Recorder};

use crate::audit::{AuditDelta, IncrementalAuditor};
use crate::error::FixerError;

/// A fixer that the class sweep can fork, run over cells, and merge
/// back. Implemented by [`Fixer2`](crate::Fixer2) and
/// [`Fixer3`](crate::Fixer3) (the implementations live in their modules
/// because merging needs the private `partial`/`phi`/`steps` fields).
pub(crate) trait ClassFixer<T: Num>: Send + Sized {
    /// Forks the current state for a sweep shard: same partial
    /// assignment and `φ`, empty step log, recorded steps numbered from
    /// `step_base`.
    fn fork(&self, step_base: usize) -> Self;

    /// Fixing steps performed so far (run-global).
    fn steps_done(&self) -> usize;

    /// Fixes every variable of one cell, in order.
    fn fix_cell<R: Recorder>(&mut self, cell: &[usize], rec: &mut R) -> Result<(), FixerError>;

    /// Replays a recorded fixing step: fixes `x` to the value `y` a
    /// previous run chose, applying the exact `φ` updates of a live
    /// step but skipping the value search and emitting no event (see
    /// [`Fixer2::replay_variable`](crate::Fixer2::replay_variable)).
    /// The resumed drivers in `crate::dist` drive this from a recorded
    /// step prefix.
    fn replay(&mut self, x: usize, y: usize) -> Result<(), FixerError>;

    /// A freshly scanned [`IncrementalAuditor`] over the fixer's
    /// current state. The auditor's cache is a pure function of
    /// `(partial, φ)`, so this equals the incremental cache an audited
    /// run carries at the same point — which is what lets a resumed run
    /// rebuild audit state at the live boundary (DESIGN.md §3.12).
    fn fresh_auditor(&self, p_bound: &T, tol: &T) -> IncrementalAuditor<T>;

    /// Merges a finished shard fork back into `self`: applies its fixed
    /// values, copies the `φ` entries its steps touched, appends its
    /// step log, and folds its flags. Shards of one class touch
    /// pairwise disjoint events, so absorption in static shard order
    /// reproduces the sequential state exactly.
    fn absorb(&mut self, shard: Self);

    /// The `P*` audit checks for the given already-fixed variables
    /// against this fixer's state (see
    /// [`audit_delta_for`](crate::audit::audit_delta_for)).
    fn audit_delta(&self, vars: &[usize], p_bound: &T, tol: &T) -> AuditDelta<T>;
}

/// The per-worker event buffer: a real [`BufRecorder`] when the run is
/// recorded, a [`NullRecorder`] otherwise — so the unrecorded hot path
/// never constructs an event, exactly like the `R::ENABLED` guards of
/// the sequential fixers.
pub(crate) trait SweepBuf: Recorder + Default + Send {
    /// Replays (and drains) the buffered events into `rec`.
    fn replay<R: Recorder>(&mut self, rec: &mut R);
}

impl SweepBuf for NullRecorder {
    fn replay<R: Recorder>(&mut self, _rec: &mut R) {}
}

impl SweepBuf for BufRecorder {
    fn replay<R: Recorder>(&mut self, rec: &mut R) {
        self.replay_into(rec);
    }
}

/// Fixes one scheduling class — `cells` in order — on up to `threads`
/// workers, merging state, step logs and recorded events back in static
/// shard order. With `audit = Some((p_bound, tol))` every worker also
/// computes the `P*` checks for its variables; the returned deltas
/// (shard order) are applied by the caller to its
/// [`IncrementalAuditor`](crate::IncrementalAuditor).
///
/// Equivalent to fixing the flattened cell list sequentially, for every
/// `threads` — outputs, step log, recorded events and audit verdicts are
/// identical by construction.
pub(crate) fn fix_class_sharded<T, F, R>(
    fixer: &mut F,
    cells: &[Vec<usize>],
    threads: usize,
    audit: Option<(&T, &T)>,
    rec: &mut R,
) -> Result<Vec<AuditDelta<T>>, FixerError>
where
    T: Num,
    F: ClassFixer<T>,
    R: Recorder,
{
    let workers = effective_workers(threads, cells.len());
    if workers <= 1 {
        for cell in cells {
            fixer.fix_cell(cell, rec)?;
        }
        return Ok(match audit {
            Some((p_bound, tol)) => {
                let vars: Vec<usize> = cells.iter().flatten().copied().collect();
                vec![fixer.audit_delta(&vars, p_bound, tol)]
            }
            None => Vec::new(),
        });
    }
    if R::ENABLED {
        sweep_sharded::<T, F, R, BufRecorder>(fixer, cells, workers, audit, rec)
    } else {
        sweep_sharded::<T, F, R, NullRecorder>(fixer, cells, workers, audit, rec)
    }
}

/// One sweep worker's outcome: its fix result, the forked fixer to
/// absorb, its buffered recorder events, and its shard's audit delta.
type ShardOutcome<T, F, B> = (Result<(), FixerError>, F, B, Option<AuditDelta<T>>);

fn sweep_sharded<T, F, R, B>(
    fixer: &mut F,
    cells: &[Vec<usize>],
    workers: usize,
    audit: Option<(&T, &T)>,
    rec: &mut R,
) -> Result<Vec<AuditDelta<T>>, FixerError>
where
    T: Num,
    F: ClassFixer<T>,
    R: Recorder,
    B: SweepBuf,
{
    // Slot-balanced cuts over the per-cell step counts (same machinery
    // as the simulator's port-weighted shards).
    let mut offsets = Vec::with_capacity(cells.len() + 1);
    offsets.push(0usize);
    for cell in cells {
        offsets.push(offsets.last().unwrap() + cell.len());
    }
    let bounds = shard_bounds(&offsets, workers);
    let base = fixer.steps_done();

    // Fork before spawning: forks are pure functions of the pre-class
    // state and the static shard bounds.
    let jobs: Vec<(F, &[Vec<usize>])> = bounds
        .windows(2)
        .map(|w| (fixer.fork(base + offsets[w[0]]), &cells[w[0]..w[1]]))
        .collect();

    let outcomes: Vec<ShardOutcome<T, F, B>> = std::thread::scope(|s| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|(mut fork, shard_cells)| {
                s.spawn(move || {
                    let mut buf = B::default();
                    let mut res = Ok(());
                    for cell in shard_cells {
                        if let Err(e) = fork.fix_cell(cell, &mut buf) {
                            res = Err(e);
                            break;
                        }
                    }
                    let delta = match (&res, audit) {
                        (Ok(()), Some((p_bound, tol))) => {
                            let vars: Vec<usize> = shard_cells.iter().flatten().copied().collect();
                            Some(fork.audit_delta(&vars, p_bound, tol))
                        }
                        _ => None,
                    };
                    (res, fork, buf, delta)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });

    // Absorb in static shard order. On error, the earliest failing
    // shard's prefix is still absorbed (matching where the sequential
    // run would have stopped) and later shards are discarded.
    let mut deltas = Vec::new();
    for (res, fork, mut buf, delta) in outcomes {
        buf.replay(rec);
        fixer.absorb(fork);
        match res {
            Ok(()) => deltas.extend(delta),
            Err(e) => return Err(e),
        }
    }
    Ok(deltas)
}
