//! The Brandt–Maus–Uitto deterministic LLL fixers below the sharp
//! threshold `p < 2^-d` (PODC 2019).
//!
//! # What this crate implements
//!
//! An LLL instance consists of discrete random [`Variable`]s and bad
//! [`Event`]s; each event depends on a set of variables, each variable
//! affects at most `r` events (its *rank*), and two events are adjacent
//! in the **dependency graph** iff they share a variable. The paper
//! proves that under the *exponential criterion* `p < 2^-d` (with `p` the
//! maximum event probability and `d` the maximum dependency degree) the
//! variables can be fixed **deterministically, one at a time, in any
//! order**, such that in the end no bad event can occur — for `r = 2`
//! (Theorem 1.1) and, the main result, for `r = 3` (Theorem 1.3):
//!
//! * [`Fixer2`] — the rank-2 process: each step picks a value whose two
//!   conditional-probability increase factors, weighted by the current
//!   bookkeeping values on the shared dependency edge, keep their sum
//!   ≤ 2 (linearity of expectation).
//! * [`Fixer3`] — the rank-3 process: bookkeeping is the paper's
//!   potential `φ : (edge, endpoint) → [0, 2]` with property `P*`
//!   (Definition 3.1); the existence of a good value reduces to the
//!   geometry of **representable triples** (module [`triples`]:
//!   Definition 3.3, the surface `f(a, b)` of Lemma 3.5, its convexity —
//!   Lemma 3.6 — and the incurvedness of `S_rep` — Lemma 3.7).
//! * [`dist`] — the distributed versions (Corollaries 1.2 and 1.4): an
//!   edge coloring resp. distance-2 coloring of the dependency graph
//!   schedules non-conflicting variables into the same round, giving
//!   `O(d + log* n)` resp. `O(poly d + log* n)` LOCAL rounds.
//!
//! Everything is generic over the numeric backend
//! ([`Num`](lll_numeric::Num)): `f64` for speed, exact
//! [`BigRational`](lll_numeric::BigRational) for airtight audits of
//! property `P*` — membership in `S_rep` is decided by an exact
//! polynomial inequality.
//!
//! # Quickstart
//!
//! ```
//! use lll_core::{Fixer3, InstanceBuilder};
//!
//! // Three events on a triangle of 4-valued variables; an event occurs
//! // iff both of its variables take value 0, so p = 1/16 < 2^-2 = 1/4.
//! let mut b = InstanceBuilder::<f64>::new(3);
//! let x = b.add_uniform_variable(&[0, 1], 4);
//! let y = b.add_uniform_variable(&[1, 2], 4);
//! let z = b.add_uniform_variable(&[0, 2], 4);
//! b.set_event_predicate(0, move |vals| vals[x] == 0 && vals[z] == 0);
//! b.set_event_predicate(1, move |vals| vals[x] == 0 && vals[y] == 0);
//! b.set_event_predicate(2, move |vals| vals[y] == 0 && vals[z] == 0);
//! let instance = b.build()?;
//!
//! let report = Fixer3::new(&instance)?.run_default()?;
//! assert!(report.is_success());
//! assert!(instance.no_event_occurs(report.assignment())?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod error;
mod fg;
mod fixer2;
mod fixer3;
mod instance;
mod sweep;

pub mod dist;
pub mod orders;
pub mod triples;

pub use audit::{audit_p_star, audit_p_star_recorded, AuditReport, IncrementalAuditor};
pub use error::{BuildError, FixerError};
pub use fg::{fg_criterion, FgCriterion, FgFixer};
pub use fixer2::Fixer2;
pub use fixer3::{Fixer3, ValueRule};
pub use instance::{Event, Instance, InstanceBuilder, PartialAssignment, VarValues, Variable};
pub use triples::{Decomposition, Phi};

/// Solves an instance with the strongest applicable deterministic
/// method, in order of preference:
///
/// 1. [`Fixer2`] for rank ≤ 2 below the sharp threshold (Theorem 1.1),
/// 2. [`Fixer3`] for rank ≤ 3 below the sharp threshold (Theorem 1.3),
/// 3. [`FgFixer`] for any rank under the (much stronger) generic
///    criterion `p·(d+1)^C < 1`, scheduled by a sequential greedy
///    distance-2 coloring of the dependency graph.
///
/// # Errors
///
/// Returns the *sharp* criterion failure ([`FixerError::CriterionViolated`]
/// with `p·2^d`) if no method's guarantee applies — callers wanting the
/// unguaranteed greedy behaviour use the fixers' `new_unchecked`
/// constructors directly.
///
/// # Examples
///
/// ```
/// use lll_core::{solve_deterministically, InstanceBuilder};
///
/// let mut b = InstanceBuilder::<f64>::new(2);
/// let x = b.add_uniform_variable(&[0, 1], 8);
/// b.set_event_predicate(0, move |vals| vals[x] == 0);
/// b.set_event_predicate(1, move |vals| vals[x] == 1);
/// let inst = b.build()?;
/// let report = solve_deterministically(&inst)?;
/// assert!(report.is_success());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn solve_deterministically<T: lll_numeric::Num>(
    inst: &Instance<T>,
) -> Result<FixReport, FixerError> {
    let rank = inst.max_rank();
    if rank <= 2 {
        if let Ok(fixer) = Fixer2::new(inst) {
            return fixer.run_default();
        }
    }
    if rank <= 3 {
        if let Ok(fixer) = Fixer3::new(inst) {
            return fixer.run_default();
        }
    }
    // Generic fallback: greedy distance-2 classes (sequential here; the
    // distributed variant lives in `dist::distributed_fg`).
    let classes = lll_coloring::greedy_coloring_sequential(&inst.dependency_graph().square());
    let num_classes = classes.iter().copied().max().map_or(1, |c| c + 1);
    if let Ok(fixer) = FgFixer::new(inst, num_classes) {
        return Ok(fixer.run(&classes));
    }
    Err(FixerError::CriterionViolated {
        p_times_2_to_d: inst.criterion_value().to_f64(),
    })
}

#[cfg(test)]
mod solve_tests {
    use super::*;

    #[test]
    fn picks_the_sharp_fixers_when_applicable() {
        let mut b = InstanceBuilder::<f64>::new(3);
        let x = b.add_uniform_variable(&[0, 1, 2], 8);
        b.set_event_predicate(0, move |vals| vals[x] == 0);
        b.set_event_predicate(1, move |vals| vals[x] == 1);
        b.set_event_predicate(2, move |vals| vals[x] == 2);
        let inst = b.build().unwrap();
        let report = solve_deterministically(&inst).unwrap();
        assert!(report.is_success());
    }

    #[test]
    fn falls_back_to_fg_for_rank4() {
        // Rank 4, p = 1/64, d = 3: sharp fixers reject the rank; FG
        // needs p·4^C < 1 with C classes from the greedy distance-2
        // coloring of K4² = K4 (4 classes): 4^4/64 = 4 — fails! Make p
        // rarer: k = 2048 ⇒ p·4^4 = 256/2048 < 1.
        let mut b = InstanceBuilder::<f64>::new(4);
        let x = b.add_uniform_variable(&[0, 1, 2, 3], 2048);
        b.set_event_predicate(0, move |vals| vals[x] == 0);
        b.set_event_predicate(1, move |vals| vals[x] == 1);
        b.set_event_predicate(2, move |vals| vals[x] == 2);
        b.set_event_predicate(3, move |vals| vals[x] == 3);
        let inst = b.build().unwrap();
        assert_eq!(inst.max_rank(), 4);
        let report = solve_deterministically(&inst).unwrap();
        assert!(report.is_success());
    }

    #[test]
    fn reports_the_sharp_criterion_on_refusal() {
        // At the threshold with rank 2: nothing applies.
        let mut b = InstanceBuilder::<f64>::new(2);
        let x = b.add_uniform_variable(&[0, 1], 2);
        b.set_event_predicate(0, move |vals| vals[x] == 0);
        b.set_event_predicate(1, move |vals| vals[x] == 1);
        let inst = b.build().unwrap();
        assert!((inst.criterion_value() - 1.0).abs() < 1e-12);
        assert!(matches!(
            solve_deterministically(&inst),
            Err(FixerError::CriterionViolated { .. })
        ));
    }
}

/// One fixing step of a completed run: which variable was fixed, to
/// what value, in what order. The trajectory is recorded by every fixer
/// with or without a flight recorder attached, so callers can inspect
/// it directly from the [`FixReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixStepRecord {
    /// The variable fixed at this step.
    pub variable: usize,
    /// The value it was fixed to.
    pub value: usize,
}

/// Result of running a fixer to completion.
///
/// A fixer below the threshold always succeeds (the paper's theorems);
/// above the threshold the greedy process is still well-defined — it
/// just loses its guarantee — and the report records which bad events
/// ended up occurring, which is exactly what the threshold experiments
/// measure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixReport {
    assignment: Vec<usize>,
    violated_events: Vec<usize>,
    steps: Vec<FixStepRecord>,
}

impl FixReport {
    pub(crate) fn new(
        assignment: Vec<usize>,
        violated_events: Vec<usize>,
        steps: Vec<FixStepRecord>,
    ) -> FixReport {
        FixReport {
            assignment,
            violated_events,
            steps,
        }
    }

    /// The complete variable assignment produced by the process.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Events that occur under the produced assignment (empty below the
    /// threshold, by Theorems 1.1/1.3).
    pub fn violated_events(&self) -> &[usize] {
        &self.violated_events
    }

    /// The fixing trajectory: step `i` records the variable fixed `i`-th
    /// and its chosen value. Matches the `fix_step` events of a recorded
    /// stream one-to-one.
    pub fn steps(&self) -> &[FixStepRecord] {
        &self.steps
    }

    /// Number of fixing steps performed.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// `true` iff no bad event occurs.
    pub fn is_success(&self) -> bool {
        self.violated_events.is_empty()
    }
}
