//! Error types of the core crate.

use std::fmt;

/// Error produced while building or evaluating an [`Instance`]
/// (see [`InstanceBuilder::build`]).
///
/// [`Instance`]: crate::Instance
/// [`InstanceBuilder::build`]: crate::InstanceBuilder::build
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A variable affects no event.
    EmptyAffects(usize),
    /// A variable affects an event index `>= num_events`.
    EventOutOfRange {
        /// The offending variable.
        variable: usize,
        /// The out-of-range event index.
        event: usize,
    },
    /// A variable has an empty value set.
    NoValues(usize),
    /// A variable has a zero or negative probability.
    NonPositiveProbability(usize),
    /// A variable's probabilities do not sum to 1.
    BadProbabilitySum(usize),
    /// A complete assignment handed to the instance was malformed.
    InvalidAssignment(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::EmptyAffects(x) => write!(f, "variable {x} affects no event"),
            BuildError::EventOutOfRange { variable, event } => {
                write!(f, "variable {variable} affects out-of-range event {event}")
            }
            BuildError::NoValues(x) => write!(f, "variable {x} has no values"),
            BuildError::NonPositiveProbability(x) => {
                write!(f, "variable {x} has a non-positive probability")
            }
            BuildError::BadProbabilitySum(x) => {
                write!(f, "probabilities of variable {x} do not sum to 1")
            }
            BuildError::InvalidAssignment(msg) => write!(f, "invalid assignment: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Error produced when constructing or running a fixer.
#[derive(Debug, Clone, PartialEq)]
pub enum FixerError {
    /// The instance's maximum variable rank exceeds what the fixer
    /// supports (2 for [`Fixer2`], 3 for [`Fixer3`]).
    ///
    /// [`Fixer2`]: crate::Fixer2
    /// [`Fixer3`]: crate::Fixer3
    RankTooLarge {
        /// Maximum rank found in the instance.
        found: usize,
        /// Rank the fixer supports.
        supported: usize,
    },
    /// The exponential criterion `p < 2^-d` is violated: the paper's
    /// guarantee does not apply. (Use the `_unchecked` constructors to
    /// run the greedy process anyway — that is what the threshold
    /// experiments do.)
    CriterionViolated {
        /// The criterion value `p·2^d` (must be `< 1`), as `f64` for
        /// display.
        p_times_2_to_d: f64,
    },
    /// A fixing step found no value keeping the bookkeeping invariant —
    /// impossible below the threshold (Lemma 3.2); can be reported when
    /// running unchecked above the threshold.
    NoGoodValue {
        /// The variable for which every value was "evil".
        variable: usize,
    },
    /// Decomposing a representable triple into edge values failed — this
    /// indicates the triple was out of `S_rep` (above threshold) or, for
    /// the `f64` backend, numerically on the boundary.
    DecompositionFailed {
        /// The variable being fixed.
        variable: usize,
    },
    /// A fixing step computed a cost that is not comparable to itself —
    /// for the `f64` backend, a NaN such as `0·∞` from a degenerate
    /// φ-product. The greedy minimiser cannot order such costs, so the
    /// step is refused instead of silently picking an arbitrary value
    /// (exact backends never produce this).
    NonFiniteCost {
        /// The variable being fixed.
        variable: usize,
        /// The affected event whose cost term went non-finite.
        event: usize,
    },
    /// A `φ` lookup or update named a node that is not an endpoint of
    /// the edge. Returned (instead of panicking) by
    /// [`Phi::get`](crate::Phi::get) / [`Phi::set`](crate::Phi::set) so
    /// adversarial-order drivers that mis-route a potential update
    /// degrade gracefully.
    NotAnEndpoint {
        /// The dependency-graph edge id.
        edge: usize,
        /// The node that is not an endpoint of that edge.
        node: usize,
    },
    /// An audited run found property `P*` broken after a fixing step
    /// (see [`Fixer3::run_audited`](crate::Fixer3::run_audited)).
    PStarViolated {
        /// 0-based index of the fixing step within the order.
        step: usize,
        /// The variable whose fixing broke the invariant.
        variable: usize,
        /// Edges whose pair sum exceeds 2 (+tolerance).
        pair_violations: Vec<usize>,
        /// Events whose conditional probability exceeds the φ bound
        /// (+tolerance).
        prob_violations: Vec<usize>,
    },
}

impl fmt::Display for FixerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixerError::RankTooLarge { found, supported } => {
                write!(
                    f,
                    "instance has rank-{found} variables, fixer supports rank {supported}"
                )
            }
            FixerError::CriterionViolated { p_times_2_to_d } => {
                write!(
                    f,
                    "exponential criterion violated: p*2^d = {p_times_2_to_d} >= 1"
                )
            }
            FixerError::NoGoodValue { variable } => {
                write!(
                    f,
                    "no good value for variable {variable} (above threshold?)"
                )
            }
            FixerError::DecompositionFailed { variable } => {
                write!(
                    f,
                    "triple decomposition failed while fixing variable {variable}"
                )
            }
            FixerError::NonFiniteCost { variable, event } => {
                write!(
                    f,
                    "non-finite cost while fixing variable {variable} (event {event})"
                )
            }
            FixerError::NotAnEndpoint { edge, node } => {
                write!(f, "node {node} is not an endpoint of edge {edge}")
            }
            FixerError::PStarViolated {
                step,
                variable,
                pair_violations,
                prob_violations,
            } => {
                write!(
                    f,
                    "property P* broken at step {step} (variable {variable}): \
                     pair violations {pair_violations:?}, probability violations \
                     {prob_violations:?}"
                )
            }
        }
    }
}

impl std::error::Error for FixerError {}
