//! Exact audit of the paper's property `P*` (Definition 3.1).
//!
//! `(G, φ)` satisfies `P*` for a partially fixed instance iff
//!
//! 1. `φ_e^u + φ_e^v ≤ 2` for every dependency-graph edge `e = {u, v}`,
//! 2. `Pr[E_v | fixed] ≤ p · Π_{e∋v} φ_e^v` for every event `v`,
//!
//! where `p` is the symmetric bound on the initial event probabilities.
//! The fixers maintain `P*` implicitly; tests drive [`audit_p_star`]
//! after every single fixing step with the exact rational backend, which
//! turns the paper's induction into an executable invariant.

use lll_numeric::Num;

use crate::instance::{Instance, PartialAssignment};
use crate::triples::Phi;

/// Outcome of a `P*` audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// Edges whose pair sum exceeds 2 (+tolerance).
    pub pair_violations: Vec<usize>,
    /// Events whose conditional probability exceeds `p · Π φ`
    /// (+tolerance).
    pub prob_violations: Vec<usize>,
}

impl AuditReport {
    /// `true` iff property `P*` holds.
    pub fn holds(&self) -> bool {
        self.pair_violations.is_empty() && self.prob_violations.is_empty()
    }
}

/// Audits property `P*` for the given partial assignment and potential.
///
/// `p_bound` is the symmetric probability bound `p` (usually
/// [`Instance::max_event_probability`]); `tol` absorbs floating-point
/// drift (`0` for exact backends).
pub fn audit_p_star<T: Num>(
    inst: &Instance<T>,
    partial: &PartialAssignment,
    phi: &Phi<T>,
    p_bound: &T,
    tol: &T,
) -> AuditReport {
    let g = inst.dependency_graph();
    let two = T::from_ratio(2, 1);
    let mut pair_violations = Vec::new();
    for eid in 0..g.num_edges() {
        if phi.pair_sum(eid) > two.clone() + tol.clone() {
            pair_violations.push(eid);
        }
    }
    let mut prob_violations = Vec::new();
    for v in 0..inst.num_events() {
        let pr = inst.probability(v, partial);
        let bound = p_bound.clone() * phi.product_at(g, v);
        if pr > bound + tol.clone() {
            prob_violations.push(v);
        }
    }
    AuditReport {
        pair_violations,
        prob_violations,
    }
}

/// [`audit_p_star`] with a flight recorder: performs the same full scan
/// and additionally emits the outcome as an
/// [`AuditPass`](lll_obs::Event::AuditPass) or
/// [`AuditViolation`](lll_obs::Event::AuditViolation) event tagged with
/// the caller's `(step, variable)` context.
#[allow(clippy::too_many_arguments)]
pub fn audit_p_star_recorded<T: Num, R: lll_obs::Recorder>(
    inst: &Instance<T>,
    partial: &PartialAssignment,
    phi: &Phi<T>,
    p_bound: &T,
    tol: &T,
    step: usize,
    variable: usize,
    rec: &mut R,
) -> AuditReport {
    let report = audit_p_star(inst, partial, phi, p_bound, tol);
    if R::ENABLED {
        rec.record(&crate::fixer2::audit_event(step, variable, &report));
    }
    report
}

/// The outcome of re-checking `P*` over the state touched by a set of
/// fixed variables — every check result plus the recomputed per-node
/// φ-products, self-contained so it can be computed *against a sweep
/// shard's forked state* and applied to an [`IncrementalAuditor`] on
/// the coordinating thread after the join.
///
/// Soundness relies on class independence (the distributed schedule's
/// no-shared-events witnesses): the events touched by a shard's
/// variables are final once the shard finishes, and no concurrent shard
/// reads or writes them, so the shard-local check results equal what a
/// from-scratch audit of the merged state would produce.
#[derive(Debug, Clone)]
pub(crate) struct AuditDelta<T> {
    /// `(edge, pair-sum ok)` for every dependency edge among each fixed
    /// variable's affected events, in fixing order.
    pub pairs: Vec<(usize, bool)>,
    /// `(event, recomputed product, probability ok)` for every affected
    /// event, in fixing order.
    pub probs: Vec<(usize, T, bool)>,
}

/// Computes the [`AuditDelta`] for the given already-fixed variables
/// against the given state — the union-of-`affects` analogue of
/// [`IncrementalAuditor::reverify`], shared by the sequential and the
/// sharded audit paths so their verdicts are identical by construction.
///
/// `post_probs` is the fixers' per-event conditional-probability cache:
/// a `Some(p)` entry short-circuits the `Pr[v | partial]` enumeration.
/// The caller guarantees freshness for every event touched by `vars` —
/// the fixing step that touched `v` last wrote `Pr[v | partial ∪ {x:y}]`
/// there, and `probability_with` runs the *identical* enumeration as
/// `probability` against the post-fix partial (variables fixed later
/// are outside `support(v)`, or they would have rewritten the entry),
/// so the cached value equals the recomputation bit for bit on every
/// backend. Pass `&[]` to disable the cache (entries beyond the slice
/// are recomputed).
pub(crate) fn audit_delta_for<T: Num>(
    inst: &Instance<T>,
    partial: &PartialAssignment,
    phi: &Phi<T>,
    post_probs: &[Option<T>],
    vars: &[usize],
    p_bound: &T,
    tol: &T,
) -> AuditDelta<T> {
    let g = inst.dependency_graph();
    let two = T::from_ratio(2, 1);
    let mut pairs = Vec::new();
    let mut probs = Vec::new();
    for &x in vars {
        let touched = inst.variable(x).affects();
        for (i, &u) in touched.iter().enumerate() {
            for &v in &touched[i + 1..] {
                if let Some(eid) = g.edge_id(u, v) {
                    let ok = phi.pair_sum(eid) <= two.clone() + tol.clone();
                    pairs.push((eid, ok));
                }
            }
        }
        for &v in touched {
            let product = phi.product_at(g, v);
            let bound = p_bound.clone() * product.clone();
            let pr = match post_probs.get(v) {
                Some(Some(p)) => p.clone(),
                _ => inst.probability(v, partial),
            };
            let ok = pr <= bound + tol.clone();
            probs.push((v, product, ok));
        }
    }
    AuditDelta { pairs, probs }
}

/// Stateful `P*` auditor for step-by-step runs.
///
/// Re-verifies the invariant after each fixing step. Fixing a variable
/// `x` can only change the conditional probabilities of the ≤ 3 events
/// in `affects(x)` and the ≤ 6 `(edge, endpoint)` `φ` entries on the
/// dependency edges among them, so the auditor caches the per-node
/// products `Π_{e∋v} φ_e^v` and the current violation sets, and
/// [`reverify`](IncrementalAuditor::reverify) re-examines only the
/// touched events and edges — O(d) per step against the full rescan's
/// O(m) (experiment E5's audit loop drops from O(steps·m) to
/// O(steps·d)).
///
/// Invalidation is exact, not algebraic: a touched node's product is
/// recomputed from its incident `φ` entries rather than divided by the
/// old and multiplied by the new value, because `φ` entries can be `0`
/// (division would be undefined) and because recomputation keeps the
/// cache bit-identical to a from-scratch evaluation for every backend.
#[derive(Debug, Clone)]
pub struct IncrementalAuditor<T> {
    p_bound: T,
    tol: T,
    /// Cached `Π_{e∋v} φ_e^v` per node, invalidated exactly for the
    /// nodes a step touches.
    products: Vec<T>,
    pair_bad: std::collections::BTreeSet<usize>,
    prob_bad: std::collections::BTreeSet<usize>,
}

impl<T: Num> IncrementalAuditor<T> {
    /// Builds the auditor with one full scan of the current state
    /// (subsequent steps are incremental).
    pub fn new(
        inst: &Instance<T>,
        partial: &PartialAssignment,
        phi: &Phi<T>,
        p_bound: &T,
        tol: &T,
    ) -> IncrementalAuditor<T> {
        let g = inst.dependency_graph();
        let mut auditor = IncrementalAuditor {
            p_bound: p_bound.clone(),
            tol: tol.clone(),
            products: (0..inst.num_events())
                .map(|v| phi.product_at(g, v))
                .collect(),
            pair_bad: std::collections::BTreeSet::new(),
            prob_bad: std::collections::BTreeSet::new(),
        };
        for eid in 0..g.num_edges() {
            auditor.recheck_pair(phi, eid);
        }
        for v in 0..inst.num_events() {
            auditor.recheck_prob(inst, partial, v);
        }
        auditor
    }

    fn recheck_pair(&mut self, phi: &Phi<T>, eid: usize) {
        let two = T::from_ratio(2, 1);
        if phi.pair_sum(eid) > two + self.tol.clone() {
            self.pair_bad.insert(eid);
        } else {
            self.pair_bad.remove(&eid);
        }
    }

    fn recheck_prob(&mut self, inst: &Instance<T>, partial: &PartialAssignment, v: usize) {
        let pr = inst.probability(v, partial);
        let bound = self.p_bound.clone() * self.products[v].clone();
        if pr > bound + self.tol.clone() {
            self.prob_bad.insert(v);
        } else {
            self.prob_bad.remove(&v);
        }
    }

    /// Re-verifies `P*` after variable `x` was fixed, re-examining only
    /// the events `affects(x)` and the dependency edges among them.
    pub fn reverify(
        &mut self,
        inst: &Instance<T>,
        partial: &PartialAssignment,
        phi: &Phi<T>,
        x: usize,
    ) -> AuditReport {
        let g = inst.dependency_graph();
        let touched = inst.variable(x).affects();
        for (i, &u) in touched.iter().enumerate() {
            for &v in &touched[i + 1..] {
                if let Some(eid) = g.edge_id(u, v) {
                    self.recheck_pair(phi, eid);
                }
            }
        }
        for &v in touched {
            self.products[v] = phi.product_at(g, v);
            self.recheck_prob(inst, partial, v);
        }
        self.report()
    }

    /// Re-verifies `P*` after *all* variables of a scheduling class were
    /// fixed, re-examining the union of their `affects` sets — the
    /// merge-safe per-class analogue of
    /// [`reverify`](IncrementalAuditor::reverify). Because the events a
    /// class touches are pairwise disjoint across its cells (the
    /// distributed schedule's witnesses), re-checking the union once is
    /// equivalent to re-checking after every step, and the verdict is
    /// independent of the order the checks are applied in — which is
    /// what lets the parallel sweep compute the checks inside its
    /// workers.
    pub fn reverify_class(
        &mut self,
        inst: &Instance<T>,
        partial: &PartialAssignment,
        phi: &Phi<T>,
        vars: &[usize],
    ) -> AuditReport {
        let delta = audit_delta_for(inst, partial, phi, &[], vars, &self.p_bound, &self.tol);
        self.apply_delta(&delta);
        self.report()
    }

    /// Applies a shard-computed [`AuditDelta`] to the cached state.
    /// Deltas of one class touch pairwise disjoint events/edges, so the
    /// application order across shards cannot change the outcome.
    pub(crate) fn apply_delta(&mut self, delta: &AuditDelta<T>) {
        for &(eid, ok) in &delta.pairs {
            if ok {
                self.pair_bad.remove(&eid);
            } else {
                self.pair_bad.insert(eid);
            }
        }
        for (v, product, ok) in &delta.probs {
            self.products[*v] = product.clone();
            if *ok {
                self.prob_bad.remove(v);
            } else {
                self.prob_bad.insert(*v);
            }
        }
    }

    /// The current violation sets as an [`AuditReport`] (identical to
    /// what [`audit_p_star`] would return for the same state).
    pub fn report(&self) -> AuditReport {
        AuditReport {
            pair_violations: self.pair_bad.iter().copied().collect(),
            prob_violations: self.prob_bad.iter().copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use lll_numeric::BigRational;

    fn q(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    /// Triangle instance: 4-valued fair variables on the edges, event
    /// occurs iff both incident variables are 0 (p = 1/16, d = 2).
    fn triangle() -> Instance<BigRational> {
        let mut b = InstanceBuilder::new(3);
        let x = b.add_uniform_variable(&[0, 1], 4);
        let y = b.add_uniform_variable(&[1, 2], 4);
        let z = b.add_uniform_variable(&[0, 2], 4);
        b.set_event_predicate(0, move |vals| vals[x] == 0 && vals[z] == 0);
        b.set_event_predicate(1, move |vals| vals[x] == 0 && vals[y] == 0);
        b.set_event_predicate(2, move |vals| vals[y] == 0 && vals[z] == 0);
        b.build().unwrap()
    }

    #[test]
    fn initial_state_satisfies_p_star() {
        let inst = triangle();
        let phi = Phi::ones(inst.dependency_graph());
        let partial = PartialAssignment::new(3);
        let p = inst.max_event_probability();
        assert_eq!(p, q(1, 16));
        let report = audit_p_star(&inst, &partial, &phi, &p, &BigRational::zero());
        assert!(report.holds(), "{report:?}");
    }

    #[test]
    fn detects_probability_violation() {
        let inst = triangle();
        let phi = Phi::ones(inst.dependency_graph());
        // Fix both variables of event 1 to 0: Pr[E_1 | fixed] = 1 > p·1.
        let mut partial = PartialAssignment::new(3);
        partial.fix(0, 0);
        partial.fix(1, 0);
        let p = inst.max_event_probability();
        let report = audit_p_star(&inst, &partial, &phi, &p, &BigRational::zero());
        assert!(!report.holds());
        assert!(report.prob_violations.contains(&1));
        assert!(report.pair_violations.is_empty());
    }

    #[test]
    fn detects_pair_violation() {
        let inst = triangle();
        let g = inst.dependency_graph();
        let mut phi = Phi::ones(g);
        let e = g.edge_id(0, 1).unwrap();
        phi.set(e, 0, q(3, 2)).unwrap();
        phi.set(e, 1, q(3, 2)).unwrap();
        let partial = PartialAssignment::new(3);
        // Bump p so that condition (2) stays satisfied despite larger φ.
        let report = audit_p_star(&inst, &partial, &phi, &q(1, 16), &BigRational::zero());
        assert_eq!(report.pair_violations, vec![e]);
        assert!(report.prob_violations.is_empty());
    }

    #[test]
    fn tolerance_absorbs_f64_noise() {
        let mut b = InstanceBuilder::<f64>::new(2);
        let x = b.add_uniform_variable(&[0, 1], 2);
        b.set_event_predicate(0, move |vals| vals[x] == 0);
        b.set_event_predicate(1, move |vals| vals[x] == 1);
        let inst = b.build().unwrap();
        let phi = Phi::ones(inst.dependency_graph());
        let partial = PartialAssignment::new(1);
        // p = 0.5 exactly; noise-free here, but the tolerance path must
        // not reject a state that holds with slack 0.
        let report = audit_p_star(&inst, &partial, &phi, &0.5, &1e-9);
        assert!(report.holds());
        let report = audit_p_star(&inst, &partial, &phi, &0.4999999, &1e-6);
        assert!(report.holds());
        let report = audit_p_star(&inst, &partial, &phi, &0.4, &0.0);
        assert!(!report.holds());
    }
}
