//! The rank-3 deterministic fixer (Theorem 1.3) — the paper's main
//! contribution.
//!
//! Bookkeeping is the potential `φ : (edge, endpoint) → [0, 2]` of
//! property `P*` (Definition 3.1). To fix a rank-3 variable `X` on the
//! hyperedge `{u, v, w}` (dependency edges `e = {u,v}`, `e' = {u,w}`,
//! `e'' = {v,w}`), form the current product triple
//!
//! ```text
//! (a, b, c) = (φ_e^u·φ_{e'}^u,  φ_e^v·φ_{e''}^v,  φ_{e'}^w·φ_{e''}^w) ∈ S_rep
//! ```
//!
//! and, for every value `y` of `X`, the scaled triple
//! `s_y = (Inc(u,y)·a, Inc(v,y)·b, Inc(w,y)·c)`. Lemma 3.2 — via the
//! incurvedness of `S_rep` (Lemma 3.7) and the averaging argument of
//! Lemma 3.9 — guarantees that some `s_y` is representable; fixing
//! `X = y` and splicing a decomposition of `s_y` into `φ` preserves
//! `P*`. This module chooses the `y` whose triple is *most robustly*
//! representable (highest [`representability_score`]), which the
//! ablation experiment compares against first-feasible selection.
//!
//! Rank-2 and rank-1 variables are handled by the weighted rank-2 rule
//! and plain expectation, matching the paper's "virtual third event"
//! reduction without materialising virtual nodes.

use lll_numeric::Num;
use lll_obs::timing::{span_nanos, span_start};
use lll_obs::{Event, NullRecorder, NullTiming, Recorder, TimingScope, TimingSink};

use crate::error::FixerError;
use crate::fixer2::{audit_event, fix_run_start_event, fix_step_event, non_finite};
use crate::instance::{Instance, PartialAssignment};
use crate::triples::{decompose, representability_score, Phi};
use crate::{FixReport, FixStepRecord};

/// How the fixer chooses among the values whose triples are
/// representable (ablation A1; the default is [`ValueRule::BestScore`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValueRule {
    /// Pick the value with the maximum representability score (deepest
    /// inside `S_rep`) — numerically robust.
    #[default]
    BestScore,
    /// Pick the first value (smallest index) whose triple is
    /// representable — the minimal rule the existence proof supports.
    FirstFeasible,
}

/// The sequential rank-3 fixing process.
///
/// See the crate-level example. Like [`Fixer2`](crate::Fixer2), the
/// process is order-oblivious; `new` validates rank ≤ 3 and the
/// exponential criterion, `new_unchecked` skips the criterion for the
/// threshold experiments.
#[derive(Debug, Clone)]
pub struct Fixer3<'i, T> {
    inst: &'i Instance<T>,
    partial: PartialAssignment,
    phi: Phi<T>,
    rule: ValueRule,
    invariant_intact: bool,
    /// Global index of this fixer's first step — 0 for a root fixer,
    /// the shard's start position for a sweep fork (so recorded
    /// `fix_step` events carry run-global step numbers).
    step_base: usize,
    steps: Vec<FixStepRecord>,
    /// `Pr[v | partial]` per event, refreshed whenever a *live* fixing
    /// step touches `v` — the value-selection loop already computes the
    /// winner's conditional probability, so stashing it here lets
    /// [`audit_delta`](crate::sweep::ClassFixer::audit_delta) skip the
    /// re-enumeration. Entries are meaningful only for events touched by
    /// the steps since the last fork/absorb, which is exactly the set a
    /// class audit reads; anything else may be stale and must not be
    /// trusted (see [`audit_delta_for`](crate::audit::audit_delta_for)).
    post_probs: Vec<Option<T>>,
}

impl<'i, T: Num> Fixer3<'i, T> {
    /// Creates a fixer, validating rank ≤ 3 and `p < 2^-d`.
    ///
    /// # Errors
    ///
    /// [`FixerError::RankTooLarge`] or [`FixerError::CriterionViolated`].
    pub fn new(inst: &'i Instance<T>) -> Result<Fixer3<'i, T>, FixerError> {
        let fixer = Fixer3::new_unchecked(inst)?;
        if !inst.satisfies_exponential_criterion() {
            return Err(FixerError::CriterionViolated {
                p_times_2_to_d: inst.criterion_value().to_f64(),
            });
        }
        Ok(fixer)
    }

    /// Creates a fixer without the criterion check (rank ≤ 3 is still
    /// required).
    ///
    /// # Errors
    ///
    /// [`FixerError::RankTooLarge`].
    pub fn new_unchecked(inst: &'i Instance<T>) -> Result<Fixer3<'i, T>, FixerError> {
        let rank = inst.max_rank();
        if rank > 3 {
            return Err(FixerError::RankTooLarge {
                found: rank,
                supported: 3,
            });
        }
        Ok(Fixer3 {
            inst,
            partial: PartialAssignment::new(inst.num_variables()),
            phi: Phi::ones(inst.dependency_graph()),
            rule: ValueRule::default(),
            invariant_intact: true,
            step_base: 0,
            steps: Vec::new(),
            post_probs: vec![None; inst.num_events()],
        })
    }

    /// Selects the value-selection rule (ablation A1); returns `self`.
    pub fn with_rule(mut self, rule: ValueRule) -> Fixer3<'i, T> {
        self.rule = rule;
        self
    }

    /// The instance being fixed.
    pub fn instance(&self) -> &'i Instance<T> {
        self.inst
    }

    /// Current partial assignment.
    pub fn partial(&self) -> &PartialAssignment {
        &self.partial
    }

    /// Current potential `φ`.
    pub fn phi(&self) -> &Phi<T> {
        &self.phi
    }

    /// Whether every fixing step so far maintained property `P*`
    /// (always `true` below the threshold; above it the greedy fallback
    /// may have to break sub-property (1)).
    pub fn invariant_intact(&self) -> bool {
        self.invariant_intact
    }

    fn inc(&self, ev: usize, x: usize, y: usize) -> T {
        let old = self.inst.probability(ev, &self.partial);
        self.prob_and_inc(ev, &old, x, y).1
    }

    /// `(Pr[ev | partial ∪ {x:y}], Inc(ev, y))` with the invariant
    /// `Pr[ev | partial]` precomputed — the value-selection loops hoist
    /// it so the conditional-probability enumeration runs once per event
    /// instead of once per candidate value. The factor is bit-identical
    /// to [`inc`](Fixer3::inc); the probability is returned so the
    /// winner's value can seed [`post_probs`](Fixer3::post_probs). An
    /// impossible event stays impossible under any extension, so both
    /// components are zero without enumerating.
    fn prob_and_inc(&self, ev: usize, old: &T, x: usize, y: usize) -> (T, T) {
        if old.is_zero() {
            return (T::zero(), T::zero());
        }
        let p = self.inst.probability_with(ev, &self.partial, x, y);
        let inc = p.clone() / old.clone();
        (p, inc)
    }

    /// `(Pr[ev | partial ∪ {x:y}], Inc(t, y) · w)` with the cost as one
    /// fused multiply-divide: [`Num::mul_div`] lets the exact backend
    /// cross-multiply and reduce once instead of normalising the
    /// quotient and the product separately. Canonical forms are unique,
    /// so the cost — and for `f64`, the operation order — is
    /// bit-identical to `inc_given(ev, old, x, y) * w`.
    fn prob_and_cost(&self, ev: usize, old: &T, x: usize, y: usize, w: &T) -> (T, T) {
        let p = self.inst.probability_with(ev, &self.partial, x, y);
        let cost = T::mul_div(p.clone(), w.clone(), old.clone());
        (p, cost)
    }

    /// Fixes variable `x`, returning the chosen value. Exact cost ties
    /// select the lowest value index, for every backend — the class
    /// sweep's determinism relies on this.
    ///
    /// # Errors
    ///
    /// [`FixerError::NonFiniteCost`] if a cost or score is not
    /// comparable (an `f64` NaN, e.g. `0·∞` from a degenerate
    /// φ-product).
    ///
    /// # Panics
    ///
    /// Panics if `x` is already fixed.
    pub fn fix_variable(&mut self, x: usize) -> Result<usize, FixerError> {
        self.fix_variable_recorded(x, &mut NullRecorder)
    }

    /// [`fix_variable`](Fixer3::fix_variable) with a flight recorder:
    /// emits one [`Event::FixStep`] carrying the increase factors, the
    /// post-update φ-products and the `P*` pair-sum headroom (3 entries
    /// at rank 3, one per dependency edge of the hyperedge). With
    /// [`NullRecorder`] this compiles to exactly the unrecorded path.
    ///
    /// # Errors
    ///
    /// As [`fix_variable`](Fixer3::fix_variable).
    ///
    /// # Panics
    ///
    /// Panics if `x` is already fixed.
    pub fn fix_variable_recorded<R: Recorder>(
        &mut self,
        x: usize,
        rec: &mut R,
    ) -> Result<usize, FixerError> {
        assert!(self.partial.get(x).is_none(), "variable {x} already fixed");
        let var = self.inst.variable(x);
        let k = var.num_values();
        let choice = match *var.affects() {
            [u] => {
                // Strict `<` keeps the first minimiser, so exact ties
                // resolve to the lowest index.
                let old_u = self.inst.probability(u, &self.partial);
                let mut best: Option<(T, usize, T)> = None;
                for y in 0..k {
                    let (p_u, inc) = self.prob_and_inc(u, &old_u, x, y);
                    if non_finite(&inc) {
                        return Err(FixerError::NonFiniteCost {
                            variable: x,
                            event: u,
                        });
                    }
                    let better = match &best {
                        None => true,
                        Some((b, _, _)) => inc < *b,
                    };
                    if better {
                        best = Some((inc, y, p_u));
                    }
                }
                let (_, choice, p_u) = best.expect("variables have at least one value");
                self.post_probs[u] = Some(p_u);
                choice
            }
            [u, v] => {
                let g = self.inst.dependency_graph();
                let eid = g.edge_id(u, v).expect("co-affected events are adjacent");
                let s = self
                    .phi
                    .get(eid, u)
                    .expect("u is an endpoint of its edge")
                    .clone();
                let t = self
                    .phi
                    .get(eid, v)
                    .expect("v is an endpoint of its edge")
                    .clone();
                let old_u = self.inst.probability(u, &self.partial);
                let old_v = self.inst.probability(v, &self.partial);
                // The winner's costs double as the new φ values and its
                // probabilities seed the audit cache, so the loop
                // carries them instead of recomputing after it.
                let mut best: Option<(T, usize, T, T, T, T)> = None;
                for y in 0..k {
                    let (p_u, cost_u) = self.prob_and_cost(u, &old_u, x, y, &s);
                    if non_finite(&cost_u) {
                        return Err(FixerError::NonFiniteCost {
                            variable: x,
                            event: u,
                        });
                    }
                    let (p_v, cost_v) = self.prob_and_cost(v, &old_v, x, y, &t);
                    if non_finite(&cost_v) {
                        return Err(FixerError::NonFiniteCost {
                            variable: x,
                            event: v,
                        });
                    }
                    let cost = cost_u.clone() + cost_v.clone();
                    if non_finite(&cost) {
                        return Err(FixerError::NonFiniteCost {
                            variable: x,
                            event: u,
                        });
                    }
                    let better = match &best {
                        None => true,
                        Some((b, ..)) => cost < *b,
                    };
                    if better {
                        best = Some((cost, y, cost_u, cost_v, p_u, p_v));
                    }
                }
                let (_, best, new_u, new_v, p_u, p_v) =
                    best.expect("variables have at least one value");
                self.phi
                    .set(eid, u, new_u)
                    .expect("u is an endpoint of its edge");
                self.phi
                    .set(eid, v, new_v)
                    .expect("v is an endpoint of its edge");
                self.post_probs[u] = Some(p_u);
                self.post_probs[v] = Some(p_v);
                best
            }
            [u, v, w] => self.fix_rank3(x, u, v, w)?,
            _ => unreachable!("rank validated at construction"),
        };
        if R::ENABLED {
            rec.record(&fix_step_event(
                self.inst,
                &self.phi,
                self.step_base + self.steps.len(),
                x,
                choice,
                |ev| self.inc(ev, x, choice).to_f64(),
            ));
        }
        self.partial.fix(x, choice);
        self.steps.push(FixStepRecord {
            variable: x,
            value: choice,
        });
        Ok(choice)
    }

    /// The rank-3 step described in the module docs.
    fn fix_rank3(&mut self, x: usize, u: usize, v: usize, w: usize) -> Result<usize, FixerError> {
        let g = self.inst.dependency_graph();
        let e = g.edge_id(u, v).expect("u, v share variable x");
        let e1 = g.edge_id(u, w).expect("u, w share variable x");
        let e2 = g.edge_id(v, w).expect("v, w share variable x");
        let at = |eid: usize, node: usize| {
            self.phi
                .get(eid, node)
                .expect("node is an endpoint of its edge")
                .clone()
        };
        let a = at(e, u) * at(e1, u);
        let b = at(e, v) * at(e2, v);
        let c = at(e1, w) * at(e2, w);

        let k = self.inst.variable(x).num_values();
        let old_u = self.inst.probability(u, &self.partial);
        let old_v = self.inst.probability(v, &self.partial);
        let old_w = self.inst.probability(w, &self.partial);
        // Candidate triples, most robustly representable first, each
        // carrying its post-fix probabilities for the audit cache. Every
        // component and score is checked for self-comparability here, so
        // the comparison closures below cannot see a NaN.
        #[allow(clippy::type_complexity)]
        let mut candidates: Vec<(T, usize, (T, T, T), (T, T, T))> = Vec::with_capacity(k);
        for y in 0..k {
            let (p_u, sa) = self.prob_and_cost(u, &old_u, x, y, &a);
            if non_finite(&sa) {
                return Err(FixerError::NonFiniteCost {
                    variable: x,
                    event: u,
                });
            }
            let (p_v, sb) = self.prob_and_cost(v, &old_v, x, y, &b);
            if non_finite(&sb) {
                return Err(FixerError::NonFiniteCost {
                    variable: x,
                    event: v,
                });
            }
            let (p_w, inc_w) = self.prob_and_inc(w, &old_w, x, y);
            let sc = inc_w * c.clone();
            if non_finite(&sc) {
                return Err(FixerError::NonFiniteCost {
                    variable: x,
                    event: w,
                });
            }
            let score = representability_score(&sa, &sb, &sc);
            if non_finite(&score) {
                return Err(FixerError::NonFiniteCost {
                    variable: x,
                    event: u,
                });
            }
            candidates.push((score, y, (sa, sb, sc), (p_u, p_v, p_w)));
        }
        match self.rule {
            ValueRule::BestScore => candidates.sort_by(|(s1, y1, ..), (s2, y2, ..)| {
                s2.partial_cmp(s1).expect("finite scores").then(y1.cmp(y2))
            }),
            ValueRule::FirstFeasible => {
                // Keep index order, but move non-representable triples to
                // the back (still sorted by score there) so the fallback
                // below remains the best available option.
                candidates.sort_by(|(s1, y1, ..), (s2, y2, ..)| {
                    let r1 = *s1 >= T::zero();
                    let r2 = *s2 >= T::zero();
                    r2.cmp(&r1)
                        .then(if r1 && r2 {
                            y1.cmp(y2)
                        } else {
                            s2.partial_cmp(s1).expect("finite scores")
                        })
                        .then(y1.cmp(y2))
                });
            }
        }

        for (_, y, (sa, sb, sc), (p_u, p_v, p_w)) in &candidates {
            if let Some(d) = decompose(sa, sb, sc) {
                let endpoint = "node is an endpoint of its edge";
                self.phi.set(e, u, d.a1).expect(endpoint);
                self.phi.set(e1, u, d.a2).expect(endpoint);
                self.phi.set(e, v, d.b1).expect(endpoint);
                self.phi.set(e2, v, d.b3).expect(endpoint);
                self.phi.set(e1, w, d.c2).expect(endpoint);
                self.phi.set(e2, w, d.c3).expect(endpoint);
                self.post_probs[u] = Some(p_u.clone());
                self.post_probs[v] = Some(p_v.clone());
                self.post_probs[w] = Some(p_w.clone());
                return Ok(*y);
            }
        }

        // Above the threshold (or, for f64, on a razor-thin boundary) no
        // candidate decomposes: fall back to a multiplicative update that
        // keeps sub-property (2) — each node's φ-product scales by its
        // Inc — but may break the pair sums of sub-property (1).
        self.invariant_intact = false;
        let (_, y, (sa, sb, sc), (p_u, p_v, p_w)) =
            candidates.into_iter().next().expect("k >= 1 values");
        self.post_probs[u] = Some(p_u);
        self.post_probs[v] = Some(p_v);
        self.post_probs[w] = Some(p_w);
        let scale = |target: T, denom: &T| {
            if denom.is_zero() {
                T::zero()
            } else {
                target / denom.clone()
            }
        };
        let endpoint = "node is an endpoint of its edge";
        let new_a1 = scale(sa, &self.phi.get(e1, u).expect(endpoint).clone());
        self.phi.set(e, u, new_a1).expect(endpoint);
        let new_b1 = scale(sb, &self.phi.get(e2, v).expect(endpoint).clone());
        self.phi.set(e, v, new_b1).expect(endpoint);
        let new_c2 = scale(sc, &self.phi.get(e2, w).expect(endpoint).clone());
        self.phi.set(e1, w, new_c2).expect(endpoint);
        Ok(y)
    }

    /// Replays a recorded fixing step: fixes variable `x` to the value
    /// `y` a previous run chose, applying exactly the φ updates
    /// [`fix_variable`](Fixer3::fix_variable) would apply for winner `y`
    /// — without re-running the value search and without emitting any
    /// event (the resume seam; see [`Fixer2::replay_variable`] and
    /// `crate::dist`).
    ///
    /// At rank 3 the equivalence holds because the original step used a
    /// decomposition of `y`'s scaled triple iff one exists: had `y` won
    /// via the multiplicative fallback, *no* candidate decomposed —
    /// in particular `y` — so replaying `decompose`-else-fallback on
    /// `y`'s triple alone takes the same branch and writes the same φ
    /// entries (including the `invariant_intact` flag).
    ///
    /// # Errors
    ///
    /// [`FixerError::NonFiniteCost`] if the recorded value's cost is not
    /// comparable (only reachable if the replayed state is degenerate —
    /// an honest prefix of a completed run never trips this).
    ///
    /// # Panics
    ///
    /// Panics if `x` is already fixed or `y` is out of range (the
    /// resumed drivers validate recorded values before replaying).
    pub fn replay_variable(&mut self, x: usize, y: usize) -> Result<(), FixerError> {
        assert!(self.partial.get(x).is_none(), "variable {x} already fixed");
        let var = self.inst.variable(x);
        assert!(y < var.num_values(), "value {y} out of range");
        match *var.affects() {
            [_] => {} // rank 1: the step only fixes the value
            [u, v] => {
                let g = self.inst.dependency_graph();
                let eid = g.edge_id(u, v).expect("co-affected events are adjacent");
                let s = self
                    .phi
                    .get(eid, u)
                    .expect("u is an endpoint of its edge")
                    .clone();
                let t = self
                    .phi
                    .get(eid, v)
                    .expect("v is an endpoint of its edge")
                    .clone();
                let old_u = self.inst.probability(u, &self.partial);
                let (p_u, new_u) = self.prob_and_cost(u, &old_u, x, y, &s);
                if non_finite(&new_u) {
                    return Err(FixerError::NonFiniteCost {
                        variable: x,
                        event: u,
                    });
                }
                let old_v = self.inst.probability(v, &self.partial);
                let (p_v, new_v) = self.prob_and_cost(v, &old_v, x, y, &t);
                if non_finite(&new_v) {
                    return Err(FixerError::NonFiniteCost {
                        variable: x,
                        event: v,
                    });
                }
                self.phi
                    .set(eid, u, new_u)
                    .expect("u is an endpoint of its edge");
                self.phi
                    .set(eid, v, new_v)
                    .expect("v is an endpoint of its edge");
                self.post_probs[u] = Some(p_u);
                self.post_probs[v] = Some(p_v);
            }
            [u, v, w] => self.replay_rank3(x, y, u, v, w)?,
            _ => unreachable!("rank validated at construction"),
        }
        self.partial.fix(x, y);
        self.steps.push(FixStepRecord {
            variable: x,
            value: y,
        });
        Ok(())
    }

    /// The rank-3 arm of [`replay_variable`](Fixer3::replay_variable):
    /// recomputes the recorded winner's scaled triple and takes the same
    /// decompose-else-fallback branch [`fix_rank3`](Fixer3::fix_rank3)
    /// took for it.
    fn replay_rank3(
        &mut self,
        x: usize,
        y: usize,
        u: usize,
        v: usize,
        w: usize,
    ) -> Result<(), FixerError> {
        let g = self.inst.dependency_graph();
        let e = g.edge_id(u, v).expect("u, v share variable x");
        let e1 = g.edge_id(u, w).expect("u, w share variable x");
        let e2 = g.edge_id(v, w).expect("v, w share variable x");
        let at = |eid: usize, node: usize| {
            self.phi
                .get(eid, node)
                .expect("node is an endpoint of its edge")
                .clone()
        };
        let a = at(e, u) * at(e1, u);
        let b = at(e, v) * at(e2, v);
        let c = at(e1, w) * at(e2, w);
        let old_u = self.inst.probability(u, &self.partial);
        let (p_u, sa) = self.prob_and_cost(u, &old_u, x, y, &a);
        if non_finite(&sa) {
            return Err(FixerError::NonFiniteCost {
                variable: x,
                event: u,
            });
        }
        let old_v = self.inst.probability(v, &self.partial);
        let (p_v, sb) = self.prob_and_cost(v, &old_v, x, y, &b);
        if non_finite(&sb) {
            return Err(FixerError::NonFiniteCost {
                variable: x,
                event: v,
            });
        }
        let old_w = self.inst.probability(w, &self.partial);
        let (p_w, sc) = self.prob_and_cost(w, &old_w, x, y, &c);
        if non_finite(&sc) {
            return Err(FixerError::NonFiniteCost {
                variable: x,
                event: w,
            });
        }
        self.post_probs[u] = Some(p_u);
        self.post_probs[v] = Some(p_v);
        self.post_probs[w] = Some(p_w);
        let endpoint = "node is an endpoint of its edge";
        if let Some(d) = decompose(&sa, &sb, &sc) {
            self.phi.set(e, u, d.a1).expect(endpoint);
            self.phi.set(e1, u, d.a2).expect(endpoint);
            self.phi.set(e, v, d.b1).expect(endpoint);
            self.phi.set(e2, v, d.b3).expect(endpoint);
            self.phi.set(e1, w, d.c2).expect(endpoint);
            self.phi.set(e2, w, d.c3).expect(endpoint);
            return Ok(());
        }
        // The original step fell through to the multiplicative fallback
        // (its winner's triple did not decompose), so replay does too.
        self.invariant_intact = false;
        let scale = |target: T, denom: &T| {
            if denom.is_zero() {
                T::zero()
            } else {
                target / denom.clone()
            }
        };
        let new_a1 = scale(sa, &self.phi.get(e1, u).expect(endpoint).clone());
        self.phi.set(e, u, new_a1).expect(endpoint);
        let new_b1 = scale(sb, &self.phi.get(e2, v).expect(endpoint).clone());
        self.phi.set(e, v, new_b1).expect(endpoint);
        let new_c2 = scale(sc, &self.phi.get(e2, w).expect(endpoint).clone());
        self.phi.set(e1, w, new_c2).expect(endpoint);
        Ok(())
    }

    /// Runs the process over the given variable order (must enumerate
    /// every variable exactly once).
    ///
    /// # Errors
    ///
    /// [`FixerError::NonFiniteCost`] if a fixing step computes an
    /// incomparable cost (see [`fix_variable`](Fixer3::fix_variable)).
    ///
    /// # Panics
    ///
    /// Panics if the order re-fixes or misses a variable.
    pub fn run(self, order: impl IntoIterator<Item = usize>) -> Result<FixReport, FixerError> {
        self.run_recorded(order, &mut NullRecorder)
    }

    /// [`run`](Fixer3::run) with a flight recorder: brackets the fixing
    /// steps with [`Event::FixRunStart`]/[`Event::FixRunEnd`].
    ///
    /// # Errors
    ///
    /// As [`run`](Fixer3::run).
    ///
    /// # Panics
    ///
    /// Panics if the order re-fixes or misses a variable.
    pub fn run_recorded<R: Recorder>(
        self,
        order: impl IntoIterator<Item = usize>,
        rec: &mut R,
    ) -> Result<FixReport, FixerError> {
        self.run_timed_recorded(order, rec, &mut NullTiming)
    }

    /// [`run_recorded`](Fixer3::run_recorded) with a side-band timing
    /// sink: the whole run is one [`TimingScope::FixRun`] span and every
    /// fixing step one [`TimingScope::FixStep`] span (see
    /// `Fixer2::run_timed_recorded` — the contract is identical).
    ///
    /// # Errors
    ///
    /// As [`run`](Fixer3::run).
    ///
    /// # Panics
    ///
    /// Panics if the order re-fixes or misses a variable.
    pub fn run_timed_recorded<R: Recorder, S: TimingSink>(
        mut self,
        order: impl IntoIterator<Item = usize>,
        rec: &mut R,
        timing: &mut S,
    ) -> Result<FixReport, FixerError> {
        let run_started = span_start::<S>();
        if R::ENABLED {
            rec.record(&fix_run_start_event(self.inst));
        }
        for x in order {
            let step_started = span_start::<S>();
            self.fix_variable_recorded(x, rec)?;
            if S::ENABLED {
                timing.record_span(TimingScope::FixStep, span_nanos(step_started));
            }
        }
        assert!(self.partial.is_complete(), "order must cover all variables");
        let report = self.into_report();
        if R::ENABLED {
            rec.record(&Event::FixRunEnd {
                steps: report.num_steps(),
                violated: report.violated_events().len(),
            });
        }
        if S::ENABLED {
            timing.record_span(TimingScope::FixRun, span_nanos(run_started));
        }
        Ok(report)
    }

    /// Runs the process in variable-id order.
    ///
    /// # Errors
    ///
    /// As [`run`](Fixer3::run).
    pub fn run_default(self) -> Result<FixReport, FixerError> {
        let m = self.inst.num_variables();
        self.run(0..m)
    }

    /// Runs the process over `order`, re-verifying property `P*` after
    /// every fixing step (experiment E5's audited mode).
    ///
    /// `p_bound` is the symmetric probability bound `p` (usually
    /// [`Instance::max_event_probability`]); `tol` absorbs
    /// floating-point drift (`0` for exact backends).
    ///
    /// # Errors
    ///
    /// [`FixerError::PStarViolated`] at the first step after which the
    /// invariant no longer holds.
    ///
    /// # Panics
    ///
    /// Panics if the order re-fixes or misses a variable.
    pub fn run_audited(
        self,
        order: impl IntoIterator<Item = usize>,
        p_bound: &T,
        tol: &T,
    ) -> Result<FixReport, FixerError> {
        self.run_audited_recorded(order, p_bound, tol, &mut NullRecorder)
    }

    /// [`run_audited`](Fixer3::run_audited) with a flight recorder: in
    /// addition to the run bracket and per-step events, every audit
    /// outcome is emitted as [`Event::AuditPass`] or
    /// [`Event::AuditViolation`].
    ///
    /// # Errors
    ///
    /// [`FixerError::PStarViolated`] at the first step after which the
    /// invariant no longer holds.
    ///
    /// # Panics
    ///
    /// Panics if the order re-fixes or misses a variable.
    pub fn run_audited_recorded<R: Recorder>(
        mut self,
        order: impl IntoIterator<Item = usize>,
        p_bound: &T,
        tol: &T,
        rec: &mut R,
    ) -> Result<FixReport, FixerError> {
        if R::ENABLED {
            rec.record(&fix_run_start_event(self.inst));
        }
        let mut auditor = crate::audit::IncrementalAuditor::new(
            self.inst,
            &self.partial,
            &self.phi,
            p_bound,
            tol,
        );
        for (step, x) in order.into_iter().enumerate() {
            self.fix_variable_recorded(x, rec)?;
            let report = auditor.reverify(self.inst, &self.partial, &self.phi, x);
            if R::ENABLED {
                rec.record(&audit_event(step, x, &report));
            }
            if !report.holds() {
                return Err(FixerError::PStarViolated {
                    step,
                    variable: x,
                    pair_violations: report.pair_violations,
                    prob_violations: report.prob_violations,
                });
            }
        }
        assert!(self.partial.is_complete(), "order must cover all variables");
        let report = self.into_report();
        if R::ENABLED {
            rec.record(&Event::FixRunEnd {
                steps: report.num_steps(),
                violated: report.violated_events().len(),
            });
        }
        Ok(report)
    }

    /// Finalizes into a report (all variables must be fixed).
    ///
    /// # Panics
    ///
    /// Panics if some variable is unfixed.
    pub fn into_report(self) -> FixReport {
        let assignment = self.partial.into_complete();
        let violated = self
            .inst
            .violated_events(&assignment)
            .expect("assignment is complete and in range");
        FixReport::new(assignment, violated, self.steps)
    }
}

impl<T: Num> crate::sweep::ClassFixer<T> for Fixer3<'_, T> {
    fn fork(&self, step_base: usize) -> Self {
        Fixer3 {
            inst: self.inst,
            partial: self.partial.clone(),
            phi: self.phi.clone(),
            rule: self.rule,
            invariant_intact: self.invariant_intact,
            step_base,
            steps: Vec::new(),
            // A fork audits only events its own live steps touch, so it
            // starts with an empty probability cache instead of deep-
            // cloning the parent's (absorb likewise leaves the parent's
            // cache alone — its stale entries are never read).
            post_probs: vec![None; self.inst.num_events()],
        }
    }

    fn steps_done(&self) -> usize {
        self.step_base + self.steps.len()
    }

    fn fix_cell<R: Recorder>(&mut self, cell: &[usize], rec: &mut R) -> Result<(), FixerError> {
        for &x in cell {
            self.fix_variable_recorded(x, rec)?;
        }
        Ok(())
    }

    fn absorb(&mut self, shard: Self) {
        let g = self.inst.dependency_graph();
        // A fixed variable's φ writes are confined to the dependency
        // edges among its affected events; copying every entry of those
        // edges (written or not) is safe because no concurrent shard
        // touches them — class cells have disjoint event sets.
        for step in &shard.steps {
            self.partial.fix(step.variable, step.value);
            let touched = self.inst.variable(step.variable).affects();
            for (i, &u) in touched.iter().enumerate() {
                for &v in &touched[i + 1..] {
                    let eid = g.edge_id(u, v).expect("co-affected events are adjacent");
                    for node in [u, v] {
                        let val = shard
                            .phi
                            .get(eid, node)
                            .expect("node is an endpoint of its edge")
                            .clone();
                        self.phi
                            .set(eid, node, val)
                            .expect("node is an endpoint of its edge");
                    }
                }
            }
        }
        self.invariant_intact &= shard.invariant_intact;
        self.steps.extend(shard.steps);
    }

    fn replay(&mut self, x: usize, y: usize) -> Result<(), FixerError> {
        self.replay_variable(x, y)
    }

    fn fresh_auditor(&self, p_bound: &T, tol: &T) -> crate::audit::IncrementalAuditor<T> {
        crate::audit::IncrementalAuditor::new(self.inst, &self.partial, &self.phi, p_bound, tol)
    }

    fn audit_delta(&self, vars: &[usize], p_bound: &T, tol: &T) -> crate::audit::AuditDelta<T> {
        crate::audit::audit_delta_for(
            self.inst,
            &self.partial,
            &self.phi,
            &self.post_probs,
            vars,
            p_bound,
            tol,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::audit_p_star;
    use crate::instance::InstanceBuilder;
    use lll_numeric::BigRational;
    use rand::seq::SliceRandom;
    use rand::{rngs::StdRng, SeedableRng};

    /// Hyper-ring instance: variable i (k-valued, fair) affects events
    /// {i, i+1, i+2}; the event at node j occurs iff its three variables
    /// all take value 0. p = k^-3, d = 4 ⇒ criterion needs k³ > 16.
    fn hyper_ring_instance<T: Num>(n: usize, k: usize) -> Instance<T> {
        let mut b = InstanceBuilder::<T>::new(n);
        let vars: Vec<usize> = (0..n)
            .map(|i| b.add_uniform_variable(&[i, (i + 1) % n, (i + 2) % n], k))
            .collect();
        for j in 0..n {
            let (x1, x2, x3) = (vars[(j + n - 2) % n], vars[(j + n - 1) % n], vars[j]);
            b.set_event_predicate(j, move |vals| {
                vals[x1] == 0 && vals[x2] == 0 && vals[x3] == 0
            });
        }
        b.build().unwrap()
    }

    #[test]
    fn solves_hyper_ring_below_threshold() {
        let inst = hyper_ring_instance::<BigRational>(12, 3); // 1/27 · 2^4 < 1
        assert_eq!(inst.max_dependency_degree(), 4);
        assert!(inst.satisfies_exponential_criterion());
        let report = Fixer3::new(&inst).unwrap().run_default().unwrap();
        assert!(
            report.is_success(),
            "violated: {:?}",
            report.violated_events()
        );
        assert!(inst.no_event_occurs(report.assignment()).unwrap());
    }

    #[test]
    fn order_oblivious_with_exact_p_star_audit() {
        let inst = hyper_ring_instance::<BigRational>(9, 3);
        let p = inst.max_event_probability();
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..5 {
            let mut order: Vec<usize> = (0..inst.num_variables()).collect();
            order.shuffle(&mut rng);
            let mut fixer = Fixer3::new(&inst).unwrap();
            for &x in &order {
                fixer.fix_variable(x).unwrap();
                let audit = audit_p_star(
                    &inst,
                    fixer.partial(),
                    fixer.phi(),
                    &p,
                    &BigRational::zero(),
                );
                assert!(
                    audit.holds(),
                    "trial {trial}: P* broken after fixing {x}: {audit:?}"
                );
            }
            assert!(fixer.invariant_intact());
            let report = fixer.into_report();
            assert!(report.is_success(), "trial {trial}");
        }
    }

    #[test]
    fn first_feasible_rule_also_succeeds() {
        let inst = hyper_ring_instance::<BigRational>(10, 3);
        let report = Fixer3::new(&inst)
            .unwrap()
            .with_rule(ValueRule::FirstFeasible)
            .run_default()
            .unwrap();
        assert!(report.is_success());
    }

    #[test]
    fn mixed_ranks_in_one_instance() {
        // Rank 1, 2 and 3 variables together; events demand specific
        // joint values, each with probability at most 1/27; d = 2.
        let mut b = InstanceBuilder::<BigRational>::new(3);
        let r1 = b.add_uniform_variable(&[0], 27);
        let r2 = b.add_uniform_variable(&[0, 1], 9);
        let r3 = b.add_uniform_variable(&[0, 1, 2], 3);
        b.set_event_predicate(0, move |vals| {
            vals[r1] == 0 && vals[r2] == 0 && vals[r3] == 0
        });
        b.set_event_predicate(1, move |vals| vals[r2] == 1 && vals[r3] == 1);
        b.set_event_predicate(2, move |vals| vals[r3] == 2);
        let inst = b.build().unwrap();
        assert_eq!(inst.max_rank(), 3);
        // p = max(1/2187, 1/27, 1/3) = 1/3... too big for d = 2 (needs
        // < 1/4): sharpen event 2 to a rarer predicate below.
        let mut b = InstanceBuilder::<BigRational>::new(3);
        let r1 = b.add_uniform_variable(&[0], 27);
        let r2 = b.add_uniform_variable(&[0, 1], 9);
        let r3 = b.add_uniform_variable(&[0, 1, 2], 9);
        b.set_event_predicate(0, move |vals| {
            vals[r1] == 0 && vals[r2] == 0 && vals[r3] == 0
        });
        b.set_event_predicate(1, move |vals| vals[r2] == 1 && vals[r3] == 1);
        b.set_event_predicate(2, move |vals| vals[r3] == 2);
        let inst = b.build().unwrap();
        // p = 1/9 < 2^-2? 1/9 < 1/4 yes.
        assert!(inst.satisfies_exponential_criterion());
        for order in [vec![0, 1, 2], vec![2, 1, 0], vec![1, 2, 0]] {
            let report = Fixer3::new(&inst).unwrap().run(order.clone()).unwrap();
            assert!(report.is_success(), "order {order:?}");
        }
    }

    #[test]
    fn multiple_variables_per_hyperedge() {
        // The paper remarks that several variables on the same three
        // events can be processed individually — the φ bookkeeping
        // absorbs repeated fixings of the same triangle.
        let mut b = InstanceBuilder::<BigRational>::new(3);
        let x = b.add_uniform_variable(&[0, 1, 2], 4);
        let y = b.add_uniform_variable(&[0, 1, 2], 4);
        let z = b.add_uniform_variable(&[0, 1, 2], 4);
        b.set_event_predicate(0, move |vals| vals[x] == 0 && vals[y] == 0 && vals[z] == 0);
        b.set_event_predicate(1, move |vals| vals[x] == 1 && vals[y] == 1 && vals[z] == 1);
        b.set_event_predicate(2, move |vals| vals[x] == 2 && vals[y] == 2 && vals[z] == 2);
        let inst = b.build().unwrap();
        // p = 1/64 < 2^-2.
        assert!(inst.satisfies_exponential_criterion());
        let p = inst.max_event_probability();
        let mut fixer = Fixer3::new(&inst).unwrap();
        for v in 0..3 {
            fixer.fix_variable(v).unwrap();
            let audit = audit_p_star(
                &inst,
                fixer.partial(),
                fixer.phi(),
                &p,
                &BigRational::zero(),
            );
            assert!(audit.holds(), "after variable {v}: {audit:?}");
        }
        assert!(fixer.into_report().is_success());
    }

    #[test]
    fn rejects_rank4() {
        let mut b = InstanceBuilder::<f64>::new(4);
        b.add_uniform_variable(&[0, 1, 2, 3], 2);
        let inst = b.build().unwrap();
        assert!(matches!(
            Fixer3::new(&inst),
            Err(FixerError::RankTooLarge {
                found: 4,
                supported: 3
            })
        ));
    }

    #[test]
    fn at_threshold_unchecked_still_completes() {
        let inst = hyper_ring_instance::<BigRational>(8, 2); // 1/8·2^4 = 2 ≥ 1
        assert!(!inst.satisfies_exponential_criterion());
        assert!(matches!(
            Fixer3::new(&inst),
            Err(FixerError::CriterionViolated { .. })
        ));
        let report = Fixer3::new_unchecked(&inst).unwrap().run_default().unwrap();
        assert_eq!(report.assignment().len(), 8);
    }

    #[test]
    fn recorded_rank3_steps_carry_three_headroom_entries() {
        let inst = hyper_ring_instance::<BigRational>(12, 3);
        let mut rec = lll_obs::JsonlRecorder::new(Vec::new());
        let report = Fixer3::new(&inst)
            .unwrap()
            .run_recorded(0..inst.num_variables(), &mut rec)
            .unwrap();
        assert!(report.is_success());
        let text = String::from_utf8(rec.finish().unwrap()).unwrap();
        lll_obs::schema::validate_stream(&text).unwrap_or_else(|e| panic!("{e}"));
        // Every variable is rank 3 here: 3 touched events, 3 pair edges.
        for line in text.lines().filter(|l| l.contains("\"fix_step\"")) {
            assert!(line.contains("\"rank\":3"), "{line}");
        }
        let mut counter = lll_obs::CounterRecorder::new();
        let report2 = Fixer3::new(&inst)
            .unwrap()
            .run_recorded(0..inst.num_variables(), &mut counter)
            .unwrap();
        assert_eq!(report2.steps(), report.steps());
        assert_eq!(counter.fix_steps, report.num_steps());
        assert!(counter.min_headroom >= 0.0, "{}", counter.min_headroom);
    }

    #[test]
    fn f64_backend_succeeds_on_hyper_ring() {
        let inst = hyper_ring_instance::<f64>(15, 3);
        let report = Fixer3::new(&inst).unwrap().run_default().unwrap();
        assert!(
            report.is_success(),
            "violated: {:?}",
            report.violated_events()
        );
    }

    #[test]
    fn f64_and_exact_choose_identically_on_hyper_ring() {
        let fe = Fixer3::new_unchecked(&hyper_ring_instance::<BigRational>(10, 3))
            .unwrap()
            .run_default()
            .unwrap();
        let ff = Fixer3::new_unchecked(&hyper_ring_instance::<f64>(10, 3))
            .unwrap()
            .run_default()
            .unwrap();
        assert_eq!(fe.assignment(), ff.assignment());
    }

    /// Rank-3 mirror of the fixer2 NaN regression: an impossible event
    /// gives `Inc = 0`, an infinite φ entry turns the node product into
    /// `∞`, and the scaled triple component becomes `0·∞ = NaN`. Pre-PR
    /// this panicked in the score sort; now it is a typed error.
    #[test]
    fn nan_cost_is_a_typed_error_not_a_panic() {
        let mut b = InstanceBuilder::<f64>::new(3);
        let x = b.add_uniform_variable(&[0, 1, 2], 3);
        b.set_event_predicate(0, |_| false); // impossible: Inc(0, ·) = 0
        b.set_event_predicate(1, move |vals| vals[x] == 0);
        b.set_event_predicate(2, move |vals| vals[x] == 1);
        let inst = b.build().unwrap();
        let mut fixer = Fixer3::new_unchecked(&inst).unwrap();
        let eid = inst
            .dependency_graph()
            .edge_id(0, 1)
            .expect("x co-affects 0 and 1");
        fixer.phi.set(eid, 0, f64::INFINITY).unwrap();
        assert_eq!(
            fixer.fix_variable(x),
            Err(FixerError::NonFiniteCost {
                variable: x,
                event: 0
            })
        );
        assert!(fixer.partial().get(x).is_none());
    }
}
