//! Crate-level property tests for `lll-core`: the probability engine and
//! the `P*` bookkeeping under randomized small instances.
//!
//! (Cross-crate properties — fixers on generated topologies, geometry of
//! `S_rep` — live in the workspace-root `tests/`; these focus on the
//! engine itself.)

use lll_core::{Fixer2, Fixer3, Instance, InstanceBuilder, PartialAssignment};
use lll_numeric::BigRational;
use proptest::prelude::*;

fn q(n: i64, d: u64) -> BigRational {
    BigRational::from_ratio(n, d)
}

/// A tiny random instance: 3 events, 3–5 variables of rank ≤ 3 with
/// random supports and random single-point bad sets.
fn small_instance(var_specs: &[(u8, u8)], patterns: &[u8]) -> Instance<BigRational> {
    let mut b = InstanceBuilder::<BigRational>::new(3);
    let mut var_ids = Vec::new();
    for &(affects_mask, k) in var_specs {
        let affects: Vec<usize> = (0..3).filter(|&v| (affects_mask >> v) & 1 == 1).collect();
        let affects = if affects.is_empty() { vec![0] } else { affects };
        let k = 2 + (k % 4) as usize;
        var_ids.push((b.add_uniform_variable(&affects, k), k));
    }
    for v in 0..3usize {
        let supp: Vec<(usize, usize)> = var_ids
            .iter()
            .enumerate()
            .filter(|&(i, _)| {
                let mask = var_specs[i].0;
                let affects: Vec<usize> = (0..3).filter(|&w| (mask >> w) & 1 == 1).collect();
                let affects = if affects.is_empty() { vec![0] } else { affects };
                affects.contains(&v)
            })
            .map(|(i, &(id, k))| (id, patterns[i % patterns.len()] as usize % k))
            .collect();
        b.set_event_predicate(v, move |vals| {
            !supp.is_empty() && supp.iter().all(|&(x, want)| vals[x] == want)
        });
    }
    b.build().expect("valid instance")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Law of total probability: conditioning on every value of a
    /// variable and re-weighting recovers the unconditional probability.
    #[test]
    fn law_of_total_probability(
        specs in prop::collection::vec((0u8..8, any::<u8>()), 3..6),
        patterns in prop::collection::vec(any::<u8>(), 3),
    ) {
        let inst = small_instance(&specs, &patterns);
        let empty = PartialAssignment::new(inst.num_variables());
        for v in 0..inst.num_events() {
            let total = inst.probability(v, &empty);
            for x in 0..inst.num_variables() {
                let var = inst.variable(x);
                let mut recomposed = BigRational::zero();
                for y in 0..var.num_values() {
                    recomposed = &recomposed
                        + &(var.prob(y) * &inst.probability_with(v, &empty, x, y));
                }
                prop_assert_eq!(recomposed, total.clone(), "event {}, var {}", v, x);
            }
        }
    }

    /// Probabilities are monotone under knowledge: fully fixing the
    /// support collapses to 0 or 1, and the violated-events check agrees
    /// with the collapsed probabilities.
    #[test]
    fn full_conditioning_collapses_to_indicator(
        specs in prop::collection::vec((0u8..8, any::<u8>()), 3..6),
        patterns in prop::collection::vec(any::<u8>(), 3),
        choices in prop::collection::vec(any::<u8>(), 8),
    ) {
        let inst = small_instance(&specs, &patterns);
        let mut partial = PartialAssignment::new(inst.num_variables());
        let mut assignment = Vec::new();
        for x in 0..inst.num_variables() {
            let k = inst.variable(x).num_values();
            let val = choices[x % choices.len()] as usize % k;
            partial.fix(x, val);
            assignment.push(val);
        }
        let violated = inst.violated_events(&assignment).expect("complete");
        for v in 0..inst.num_events() {
            let p = inst.probability(v, &partial);
            let expect = if violated.contains(&v) { BigRational::one() } else { BigRational::zero() };
            prop_assert_eq!(p, expect, "event {}", v);
        }
    }

    /// Below the threshold both fixers succeed on these tiny instances
    /// (when the rank permits); criterion checks agree across fixers.
    #[test]
    fn fixers_agree_on_applicability(
        specs in prop::collection::vec((1u8..8, any::<u8>()), 3..6),
        patterns in prop::collection::vec(any::<u8>(), 3),
    ) {
        let inst = small_instance(&specs, &patterns);
        let below = inst.satisfies_exponential_criterion();
        let f3 = Fixer3::new(&inst);
        prop_assert_eq!(f3.is_ok(), below && inst.max_rank() <= 3);
        if inst.max_rank() <= 2 {
            let f2 = Fixer2::new(&inst);
            prop_assert_eq!(f2.is_ok(), below);
        }
        if let Ok(fixer) = f3 {
            let report = fixer.run_default().expect("finite costs");
            prop_assert!(report.is_success());
        }
    }

    /// The criterion value is consistent: p·2^d computed by the instance
    /// equals max probability shifted by the dependency degree.
    #[test]
    fn criterion_arithmetic(
        specs in prop::collection::vec((0u8..8, any::<u8>()), 3..6),
        patterns in prop::collection::vec(any::<u8>(), 3),
    ) {
        let inst = small_instance(&specs, &patterns);
        let p = inst.max_event_probability();
        let mut expected = p;
        for _ in 0..inst.max_dependency_degree() {
            expected = &expected * &q(2, 1);
        }
        prop_assert_eq!(inst.criterion_value(), expected);
    }
}
