//! Differential test: the incremental `P*` auditor must report exactly
//! what a full [`audit_p_star`] rescan reports, after **every** fixing
//! step of random E5-style rank-3 traces — below the threshold (where
//! both must stay clean) and above it (where violations appear and the
//! violation *sets* must still match element-for-element).

use std::collections::BTreeSet;

use lll_core::{audit_p_star, Fixer3, IncrementalAuditor, Instance, InstanceBuilder};
use lll_graphs::gen::hyper_ring;
use lll_graphs::Hypergraph;
use lll_numeric::BigRational;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn pack_index(values: &[usize], radix: usize) -> usize {
    values.iter().rev().fold(0, |acc, &v| acc * radix + v)
}

/// Miniature copy of the bench crate's rank-3 workload generator (the
/// bench crate depends on this one, so it cannot be a dev-dependency).
fn random_rank3(h: &Hypergraph, k: usize, t: f64, seed: u64) -> Instance<BigRational> {
    let d = h.max_dependency_degree();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = InstanceBuilder::<BigRational>::new(h.num_nodes());
    let vars: Vec<usize> = (0..h.num_edges())
        .map(|i| b.add_uniform_variable(h.edge(i).nodes(), k))
        .collect();
    for v in 0..h.num_nodes() {
        let total = k.pow(h.degree(v) as u32);
        let bad_count = ((t * total as f64 / 2f64.powi(d as i32)).floor() as usize).min(total);
        let mut bad: BTreeSet<usize> = BTreeSet::new();
        while bad.len() < bad_count {
            bad.insert(rng.random_range(0..total));
        }
        let mut support: Vec<usize> = h.incident(v).iter().map(|&i| vars[i]).collect();
        support.sort_unstable();
        b.set_event_predicate(v, move |vals| {
            let values: Vec<usize> = support.iter().map(|&x| vals[x]).collect();
            bad.contains(&pack_index(&values, k))
        });
    }
    b.build().expect("generated instance is valid")
}

fn shuffled_order(num_vars: usize, seed: u64) -> Vec<usize> {
    use rand::seq::SliceRandom;
    let mut order: Vec<usize> = (0..num_vars).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    order
}

/// Runs one greedy trace and asserts report equality at every step.
fn assert_incremental_matches_full(inst: &Instance<BigRational>, order_seed: u64) {
    let p = inst.max_event_probability();
    let zero = BigRational::zero();
    let mut fixer = Fixer3::new_unchecked(inst).expect("rank-3 instance");
    let mut auditor = IncrementalAuditor::new(inst, fixer.partial(), fixer.phi(), &p, &zero);
    // The initial full scan must match a fresh rescan too.
    assert_eq!(
        auditor.report(),
        audit_p_star(inst, fixer.partial(), fixer.phi(), &p, &zero)
    );
    for x in shuffled_order(inst.num_variables(), order_seed) {
        fixer.fix_variable(x).expect("finite costs");
        let incremental = auditor.reverify(inst, fixer.partial(), fixer.phi(), x);
        let full = audit_p_star(inst, fixer.partial(), fixer.phi(), &p, &zero);
        assert_eq!(
            incremental, full,
            "incremental and full audits disagree after fixing variable {x}"
        );
    }
}

#[test]
fn incremental_matches_full_below_threshold() {
    // Below the threshold both audits must agree *and* stay clean
    // (Theorem 1.3's invariant).
    for seed in 0..4u64 {
        let h = hyper_ring(12 + 3 * seed as usize);
        let inst = random_rank3(&h, 8, 0.9, seed);
        assert!(inst.satisfies_exponential_criterion());
        assert_incremental_matches_full(&inst, seed + 100);
        // And the packaged run_audited entry point succeeds end-to-end.
        let p = inst.max_event_probability();
        let order = shuffled_order(inst.num_variables(), seed + 100);
        let report = Fixer3::new(&inst)
            .expect("below threshold")
            .run_audited(order, &p, &BigRational::zero())
            .expect("P* holds below the threshold");
        assert!(report.is_success());
    }
}

#[test]
fn incremental_matches_full_above_threshold() {
    // Above the threshold the unchecked greedy process may break P*; the
    // two audits must report the *same* violation sets step by step.
    for seed in 0..4u64 {
        let h = hyper_ring(12);
        let inst = random_rank3(&h, 4, 3.0, seed);
        assert!(!inst.satisfies_exponential_criterion());
        assert_incremental_matches_full(&inst, seed + 7);
    }
}

#[test]
fn run_audited_reports_the_failing_step() {
    // With p_bound artificially halved, the very first audit after a fix
    // (or even the initial state) breaks; run_audited must surface a
    // typed PStarViolated error rather than succeed.
    let h = hyper_ring(12);
    let inst = random_rank3(&h, 8, 0.9, 1);
    let p = inst.max_event_probability();
    let tight = &p / &BigRational::from_ratio(2, 1);
    let order = shuffled_order(inst.num_variables(), 3);
    let err = Fixer3::new(&inst)
        .expect("below threshold")
        .run_audited(order, &tight, &BigRational::zero())
        .expect_err("halved probability bound must violate P*");
    let msg = err.to_string();
    assert!(
        msg.contains("property P* broken"),
        "unexpected error: {msg}"
    );
}
