//! Typed request-level errors.
//!
//! Every way a request can fail maps to exactly one [`ErrorKind`], and
//! every failure becomes a structured `{"status":"error"}` response —
//! the daemon never panics on input and never wedges the pipeline.

use std::fmt;

/// Category of a request failure, serialized as the `error.kind` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line is not valid JSON, not a request object, or the DIMACS
    /// payload does not parse.
    Parse,
    /// The request parsed but describes an unusable instance (variable
    /// occurring nowhere, event referencing a variable that does not
    /// affect it, value out of domain, ...).
    Invalid,
    /// The request exceeds a configured limit (`max_events`,
    /// `max_line_bytes`).
    Oversized,
    /// The instance falls outside the solver's guarantee regime:
    /// rank > 3 or the exponential criterion `p < 2^-d` fails.
    OutOfRegime,
    /// The request's opt-in `timeout_ms` deadline was exceeded.
    Timeout,
    /// An I/O side effect requested by the client failed (e.g. the
    /// `obs` tee file could not be written).
    Io,
    /// Anything else — a bug guard, never expected in normal operation.
    Internal,
}

impl ErrorKind {
    /// Every kind, in wire-name order. Used to pre-register one
    /// labelled metrics counter per kind so the exposition always
    /// lists all error series, even at zero.
    pub const ALL: [ErrorKind; 7] = [
        ErrorKind::Parse,
        ErrorKind::Invalid,
        ErrorKind::Oversized,
        ErrorKind::OutOfRegime,
        ErrorKind::Timeout,
        ErrorKind::Io,
        ErrorKind::Internal,
    ];

    /// The wire name of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Invalid => "invalid",
            ErrorKind::Oversized => "oversized",
            ErrorKind::OutOfRegime => "out_of_regime",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Io => "io",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A typed request failure: kind + human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// The failure category.
    pub kind: ErrorKind,
    /// What went wrong, for the client.
    pub message: String,
}

impl RequestError {
    /// A [`ErrorKind::Parse`] error.
    pub fn parse(message: impl Into<String>) -> RequestError {
        RequestError {
            kind: ErrorKind::Parse,
            message: message.into(),
        }
    }

    /// An [`ErrorKind::Invalid`] error.
    pub fn invalid(message: impl Into<String>) -> RequestError {
        RequestError {
            kind: ErrorKind::Invalid,
            message: message.into(),
        }
    }

    /// An [`ErrorKind::Oversized`] error.
    pub fn oversized(message: impl Into<String>) -> RequestError {
        RequestError {
            kind: ErrorKind::Oversized,
            message: message.into(),
        }
    }

    /// An [`ErrorKind::OutOfRegime`] error.
    pub fn out_of_regime(message: impl Into<String>) -> RequestError {
        RequestError {
            kind: ErrorKind::OutOfRegime,
            message: message.into(),
        }
    }

    /// An [`ErrorKind::Timeout`] error.
    pub fn timeout(message: impl Into<String>) -> RequestError {
        RequestError {
            kind: ErrorKind::Timeout,
            message: message.into(),
        }
    }

    /// An [`ErrorKind::Io`] error.
    pub fn io(message: impl Into<String>) -> RequestError {
        RequestError {
            kind: ErrorKind::Io,
            message: message.into(),
        }
    }

    /// An [`ErrorKind::Internal`] error.
    pub fn internal(message: impl Into<String>) -> RequestError {
        RequestError {
            kind: ErrorKind::Internal,
            message: message.into(),
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

impl std::error::Error for RequestError {}
