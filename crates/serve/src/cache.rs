//! The topology cache.
//!
//! Schedules ([`Schedule`]: coloring + palette + round bill) are pure
//! functions of `(dependency graph, seed)`, so requests sharing a
//! graph shape can reuse one schedule and pay only the fixing sweep.
//! The cache is keyed by [`lll_graphs::Graph::fingerprint`] — cheap,
//! label-sensitive, seed-independent — but a fingerprint is only a
//! hash: on every hit the stored graph is compared structurally
//! (`Graph: Eq`) before the schedule is reused, so a collision costs a
//! recompute, never a wrong schedule.
//!
//! An unbounded cache ([`TopologyCache::new`]) never evicts — the
//! daemon's workloads are bounded batches, and `--no-cache` exists for
//! the cold baseline. [`TopologyCache::with_capacity`] bounds the
//! entry count with least-recently-used eviction: every hit stamps the
//! entry with a monotone use tick, and an insert past capacity drops
//! the entry with the oldest stamp. Eviction only ever costs a
//! recompute on the next request for that shape — the recomputed
//! schedule is the same pure function of `(graph, seed)`, so responses
//! stay byte-identical.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

use lll_core::dist::{Schedule, ScheduleKind};
use lll_graphs::Graph;

struct CacheEntry {
    graph: Graph,
    seed: u64,
    schedule: Arc<Schedule>,
    /// Monotone use stamp for LRU: updated on every hit and on insert.
    last_used: u64,
}

impl CacheEntry {
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<CacheEntry>() + self.graph.approx_bytes() + self.schedule.approx_bytes()
    }
}

/// A concurrent schedule cache with hit/miss/eviction counters.
///
/// Counters are observability only (stderr stats, metrics export);
/// they never reach a response body, which must stay byte-identical
/// hit vs. miss vs. post-eviction recompute.
pub struct TopologyCache {
    entries: Mutex<HashMap<u64, Vec<CacheEntry>>>,
    /// Maximum number of stored schedules; `None` = unbounded.
    capacity: Option<usize>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl TopologyCache {
    /// An empty, unbounded cache (never evicts).
    pub fn new() -> TopologyCache {
        TopologyCache::with_capacity(None)
    }

    /// An empty cache holding at most `capacity` schedules, evicting
    /// the least-recently-used entry when full. `None` is unbounded;
    /// `Some(0)` caches nothing (every request is a miss).
    pub fn with_capacity(capacity: Option<usize>) -> TopologyCache {
        TopologyCache {
            entries: Mutex::new(HashMap::new()),
            capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Returns the cached schedule for `(g, seed, kind)`, or computes,
    /// stores, and returns it. The map lock is held across `compute`,
    /// so concurrent requests for the same shape compute the schedule
    /// once and the rest hit.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error; nothing is stored on failure.
    pub fn get_or_compute<E>(
        &self,
        g: &Graph,
        seed: u64,
        kind: ScheduleKind,
        compute: impl FnOnce() -> Result<Schedule, E>,
    ) -> Result<Arc<Schedule>, E> {
        let fp = g.fingerprint();
        let mut entries = self.entries.lock().expect("cache lock poisoned");
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(bucket) = entries.get_mut(&fp) {
            for entry in bucket.iter_mut() {
                if entry.seed == seed && entry.schedule.kind() == kind && entry.graph == *g {
                    entry.last_used = stamp;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(&entry.schedule));
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let schedule = Arc::new(compute()?);
        if self.capacity == Some(0) {
            return Ok(schedule);
        }
        if let Some(cap) = self.capacity {
            let len: usize = entries.values().map(Vec::len).sum();
            if len >= cap {
                Self::evict_lru(&mut entries);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        entries.entry(fp).or_default().push(CacheEntry {
            graph: g.clone(),
            seed,
            schedule: Arc::clone(&schedule),
            last_used: stamp,
        });
        Ok(schedule)
    }

    /// Removes the entry with the oldest `last_used` stamp. O(entries)
    /// scan — fine at daemon cache sizes, and only paid on insert past
    /// capacity.
    fn evict_lru(entries: &mut HashMap<u64, Vec<CacheEntry>>) {
        let victim = entries
            .iter()
            .flat_map(|(fp, bucket)| {
                bucket
                    .iter()
                    .enumerate()
                    .map(move |(i, e)| (e.last_used, *fp, i))
            })
            .min()
            .map(|(_, fp, i)| (fp, i));
        if let Some((fp, i)) = victim {
            let bucket = entries.get_mut(&fp).expect("victim bucket exists");
            bucket.remove(i);
            if bucket.is_empty() {
                entries.remove(&fp);
            }
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= schedules computed) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the LRU bound so far (always 0 unbounded).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The configured entry bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of stored schedules.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("cache lock poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes of all cached graphs + schedules.
    /// Telemetry estimate (capacities, not allocator book-keeping).
    pub fn approx_bytes(&self) -> usize {
        self.entries
            .lock()
            .expect("cache lock poisoned")
            .values()
            .flatten()
            .map(CacheEntry::approx_bytes)
            .sum()
    }
}

impl Default for TopologyCache {
    fn default() -> TopologyCache {
        TopologyCache::new()
    }
}
