//! The topology cache.
//!
//! Schedules ([`Schedule`]: coloring + palette + round bill) are pure
//! functions of `(dependency graph, seed)`, so requests sharing a
//! graph shape can reuse one schedule and pay only the fixing sweep.
//! The cache is keyed by [`lll_graphs::Graph::fingerprint`] — cheap,
//! label-sensitive, seed-independent — but a fingerprint is only a
//! hash: on every hit the stored graph is compared structurally
//! (`Graph: Eq`) before the schedule is reused, so a collision costs a
//! recompute, never a wrong schedule. Entries are never evicted; the
//! daemon's workloads are bounded batches, and `--no-cache` exists for
//! the cold baseline.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

use lll_core::dist::{Schedule, ScheduleKind};
use lll_graphs::Graph;

struct CacheEntry {
    graph: Graph,
    seed: u64,
    schedule: Arc<Schedule>,
}

/// A concurrent schedule cache with hit/miss counters.
///
/// Counters are observability only (stderr stats); they never reach a
/// response body, which must stay byte-identical hit vs. miss.
pub struct TopologyCache {
    entries: Mutex<HashMap<u64, Vec<CacheEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TopologyCache {
    /// An empty cache.
    pub fn new() -> TopologyCache {
        TopologyCache {
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the cached schedule for `(g, seed, kind)`, or computes,
    /// stores, and returns it. The map lock is held across `compute`,
    /// so concurrent requests for the same shape compute the schedule
    /// once and the rest hit.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error; nothing is stored on failure.
    pub fn get_or_compute<E>(
        &self,
        g: &Graph,
        seed: u64,
        kind: ScheduleKind,
        compute: impl FnOnce() -> Result<Schedule, E>,
    ) -> Result<Arc<Schedule>, E> {
        let fp = g.fingerprint();
        let mut entries = self.entries.lock().expect("cache lock poisoned");
        let bucket = entries.entry(fp).or_default();
        for entry in bucket.iter() {
            if entry.seed == seed && entry.schedule.kind() == kind && entry.graph == *g {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&entry.schedule));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let schedule = Arc::new(compute()?);
        bucket.push(CacheEntry {
            graph: g.clone(),
            seed,
            schedule: Arc::clone(&schedule),
        });
        Ok(schedule)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= schedules computed) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of stored schedules.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("cache lock poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for TopologyCache {
    fn default() -> TopologyCache {
        TopologyCache::new()
    }
}
