//! Live telemetry: the daemon's metrics bundle and its exporter.
//!
//! [`ServeMetrics`] registers every counter, gauge, and latency
//! summary the daemon exposes on one [`MetricsRegistry`]; the
//! [`Engine`](crate::Engine) owns the bundle and feeds it from the
//! request path. Everything here is strictly side-band (DESIGN.md
//! §3.11): metric writes are sharded relaxed atomics that never gate,
//! reorder, or feed back into a solve, so the response stream and any
//! teed recorder stream stay byte-identical with telemetry on or off.
//!
//! [`spawn_telemetry`] runs the export side on one background thread:
//! a Prometheus text-format scrape endpoint on a Unix socket (answering
//! plain HTTP GETs), rolling-window rotation for the `*_window_p50/p99`
//! gauges, and operator snapshots to stderr — on a fixed interval
//! and/or when the owner raises the dump flag (the binary wires that
//! flag to `SIGUSR1`).

use std::io::{ErrorKind as IoErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lll_obs::{Counter, Gauge, MetricHist, MetricsRegistry};

use crate::engine::Engine;
use crate::error::ErrorKind;

/// How often the exporter advances the rolling-window ring.
const ROTATE_EVERY: Duration = Duration::from_secs(5);

/// Exporter poll tick: accept latency and shutdown latency ceiling.
const TICK: Duration = Duration::from_millis(50);

/// Every metric the daemon exposes, registered on one registry.
///
/// Counters whose source of truth lives outside the registry (the
/// topology cache's own atomics) are mirrored in at render time via
/// [`Counter::sync_total`]; everything else is written directly from
/// the request path.
pub struct ServeMetrics {
    registry: MetricsRegistry,
    /// Requests answered (ok + error + shutdown).
    pub requests: Counter,
    /// Successful solves.
    pub ok: Counter,
    /// Shutdown acknowledgements.
    pub shutdowns: Counter,
    /// Error responses, one labelled series per [`ErrorKind`], aligned
    /// with [`ErrorKind::ALL`].
    errors_by_kind: Vec<Counter>,
    /// Schedule-cache hits (mirror of the cache's counter).
    pub cache_hits: Counter,
    /// Schedule-cache misses (mirror).
    pub cache_misses: Counter,
    /// Schedule-cache LRU evictions (mirror).
    pub cache_evictions: Counter,
    /// End-to-end request latency, microseconds.
    pub latency_micros: MetricHist,
    /// Whole fixing-sweep duration per request, microseconds
    /// ([`TimingScope::FixRun`](lll_obs::TimingScope) spans).
    pub sweep_micros: MetricHist,
    /// Per-color-class sweep duration, microseconds
    /// ([`TimingScope::FixClass`](lll_obs::TimingScope) spans).
    pub class_micros: MetricHist,
    /// Schedules currently cached.
    pub cache_entries: Gauge,
    /// Approximate resident bytes of cached graphs + schedules.
    pub cache_bytes: Gauge,
    /// Requests of the current batch not yet answered.
    pub queue_depth: Gauge,
    /// Bytes of request lines currently being solved.
    pub inflight_bytes: Gauge,
    /// Bytes of the parallel engine's two message slabs (last run).
    pub slab_bytes: Gauge,
    /// Port slots per message slab (last run).
    pub slab_slots: Gauge,
    /// Worker shards the slab was cut into (last run).
    pub slab_shards: Gauge,
    /// Slots of the widest shard — the load-balance worst case.
    pub slab_max_shard_slots: Gauge,
    /// Peak resident set size of the daemon process in bytes.
    pub peak_rss_bytes: Gauge,
    /// Exact-arithmetic results that spilled into a wider `BigInt`
    /// representation tier (mirror of `lll_numeric::tier_counters`).
    pub tier_promotes: Counter,
    /// Exact-arithmetic results that canonicalized back into a narrower
    /// `BigInt` tier (mirror).
    pub tier_demotes: Counter,
}

impl ServeMetrics {
    /// Registers the full metric set on a fresh registry. Every series
    /// exists from the start (error kinds are pre-registered at zero),
    /// so a scrape's shape never depends on traffic history.
    pub fn new() -> ServeMetrics {
        let registry = MetricsRegistry::new();
        let requests = registry.counter("lll_serve_requests_total", "Requests answered");
        let ok = registry.counter("lll_serve_ok_total", "Successful solves");
        let shutdowns = registry.counter("lll_serve_shutdowns_total", "Shutdown acknowledgements");
        let errors_by_kind = ErrorKind::ALL
            .iter()
            .map(|kind| {
                registry.counter_with(
                    "lll_serve_errors_total",
                    "Error responses by kind",
                    &[("kind", kind.as_str())],
                )
            })
            .collect();
        let cache_hits = registry.counter("lll_serve_cache_hits_total", "Schedule cache hits");
        let cache_misses =
            registry.counter("lll_serve_cache_misses_total", "Schedule cache misses");
        let cache_evictions = registry.counter(
            "lll_serve_cache_evictions_total",
            "Schedule cache evictions",
        );
        let latency_micros = registry.histogram(
            "lll_serve_latency_micros",
            "End-to-end request latency in microseconds",
        );
        let sweep_micros = registry.histogram(
            "lll_serve_sweep_micros",
            "Fixing sweep duration per request in microseconds",
        );
        let class_micros = registry.histogram(
            "lll_serve_class_micros",
            "Per-color-class sweep duration in microseconds",
        );
        let cache_entries = registry.gauge("lll_serve_cache_entries", "Schedules currently cached");
        let cache_bytes = registry.gauge(
            "lll_serve_cache_bytes",
            "Approximate bytes held by the schedule cache",
        );
        let queue_depth = registry.gauge(
            "lll_serve_queue_depth",
            "Requests of the current batch not yet answered",
        );
        let inflight_bytes = registry.gauge(
            "lll_serve_inflight_bytes",
            "Bytes of request lines currently being solved",
        );
        let slab_bytes = registry.gauge(
            "lll_engine_slab_bytes",
            "Bytes of the parallel engine's two message slabs (last run)",
        );
        let slab_slots = registry.gauge(
            "lll_engine_slab_slots",
            "Port slots per message slab (last run)",
        );
        let slab_shards = registry.gauge(
            "lll_engine_slab_shards",
            "Worker shards the slab was cut into (last run)",
        );
        let slab_max_shard_slots = registry.gauge(
            "lll_engine_slab_max_shard_slots",
            "Slots of the widest slab shard (last run)",
        );
        let peak_rss_bytes = registry.gauge(
            "lll_process_peak_rss_bytes",
            "Peak resident set size of the daemon process in bytes",
        );
        let tier_promotes = registry.counter(
            "lll_numeric_tier_promotes_total",
            "BigInt results promoted into a wider representation tier",
        );
        let tier_demotes = registry.counter(
            "lll_numeric_tier_demotes_total",
            "BigInt results demoted into a narrower representation tier",
        );
        ServeMetrics {
            registry,
            requests,
            ok,
            shutdowns,
            errors_by_kind,
            cache_hits,
            cache_misses,
            cache_evictions,
            latency_micros,
            sweep_micros,
            class_micros,
            cache_entries,
            cache_bytes,
            queue_depth,
            inflight_bytes,
            slab_bytes,
            slab_slots,
            slab_shards,
            slab_max_shard_slots,
            peak_rss_bytes,
            tier_promotes,
            tier_demotes,
        }
    }

    /// Syncs the `BigInt` representation-tier transition counters from
    /// the process-wide `lll_numeric` atomics. Tier residency is a
    /// leading indicator for exact-arithmetic cost: a promote-rate jump
    /// means operands are outgrowing the stack-resident fast paths.
    pub fn sync_numeric(&self) {
        let tiers = lll_numeric::tier_counters();
        self.tier_promotes.sync_total(tiers.promote);
        self.tier_demotes.sync_total(tiers.demote);
    }

    /// Syncs the slab-engine memory gauges from the process-wide
    /// engine gauges (`lll_local::gauges`). Zeroes before the first
    /// parallel run; RSS is skipped where the platform has no procfs.
    pub fn sync_memory(&self) {
        let slab = lll_local::gauges::slab_snapshot();
        self.slab_bytes
            .set(i64::try_from(slab.slab_bytes).unwrap_or(i64::MAX));
        self.slab_slots
            .set(i64::try_from(slab.slots).unwrap_or(i64::MAX));
        self.slab_shards
            .set(i64::try_from(slab.shards).unwrap_or(i64::MAX));
        self.slab_max_shard_slots
            .set(i64::try_from(slab.max_shard_slots).unwrap_or(i64::MAX));
        if let Some(rss) = lll_local::gauges::peak_rss_bytes() {
            self.peak_rss_bytes
                .set(i64::try_from(rss).unwrap_or(i64::MAX));
        }
    }

    /// Increments the error counter for `kind`.
    pub fn note_error(&self, kind: ErrorKind) {
        let i = ErrorKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("every kind is in ALL");
        self.errors_by_kind[i].inc();
    }

    /// Total error responses across all kinds.
    pub fn errors(&self) -> u64 {
        self.errors_by_kind.iter().map(Counter::value).sum()
    }

    /// The underlying registry (window rotation, rendering).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }
}

impl Default for ServeMetrics {
    fn default() -> ServeMetrics {
        ServeMetrics::new()
    }
}

/// Telemetry-thread configuration.
#[derive(Debug, Clone, Default)]
pub struct TelemetryConfig {
    /// Unix-socket path for the Prometheus scrape endpoint.
    pub socket: Option<String>,
    /// Interval between stderr stats snapshots (`None` = only on the
    /// dump flag).
    pub stats_interval: Option<Duration>,
}

impl TelemetryConfig {
    /// Whether any telemetry output is configured. With nothing
    /// configured the thread still rotates histogram windows and
    /// serves the dump flag.
    pub fn is_active(&self) -> bool {
        self.socket.is_some() || self.stats_interval.is_some()
    }
}

/// A running telemetry thread; dropping without
/// [`TelemetryHandle::shutdown`] leaves the thread running.
pub struct TelemetryHandle {
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<()>,
}

impl TelemetryHandle {
    /// Stops the thread and removes the scrape socket, joining before
    /// returning so no late scrape touches a dead engine.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.thread.join();
    }
}

/// Spawns the telemetry thread: scrape endpoint (if configured),
/// window rotation, and stderr snapshots on `config.stats_interval`
/// or whenever `dump` is raised (the binary sets it from `SIGUSR1`).
///
/// # Errors
///
/// Fails only if the scrape socket cannot be bound.
pub fn spawn_telemetry(
    engine: Arc<Engine>,
    config: TelemetryConfig,
    dump: Arc<AtomicBool>,
) -> std::io::Result<TelemetryHandle> {
    let listener = match &config.socket {
        Some(path) => {
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            Some(listener)
        }
        None => None,
    };
    let socket_path = config.socket.clone();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_seen = Arc::clone(&stop);
    let thread = std::thread::spawn(move || {
        let mut last_rotate = Instant::now();
        let mut last_stats = Instant::now();
        while !stop_seen.load(Ordering::Relaxed) {
            if let Some(listener) = &listener {
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => answer_scrape(stream, &engine),
                        Err(e) if e.kind() == IoErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
            }
            if last_rotate.elapsed() >= ROTATE_EVERY {
                engine.metrics().registry().rotate_windows();
                last_rotate = Instant::now();
            }
            let interval_due = config
                .stats_interval
                .is_some_and(|every| last_stats.elapsed() >= every);
            if dump.swap(false, Ordering::Relaxed) || interval_due {
                eprintln!("lll-serve: {}", engine.stats_line());
                last_stats = Instant::now();
            }
            std::thread::sleep(TICK);
        }
        if let Some(path) = &socket_path {
            let _ = std::fs::remove_file(path);
        }
    });
    Ok(TelemetryHandle { stop, thread })
}

/// Answers one scrape connection with a minimal HTTP/1.0 response
/// carrying the text exposition. The request bytes are drained
/// best-effort (plain `connect`-and-read clients send none) and never
/// parsed — every connection gets the full exposition.
fn answer_scrape(mut stream: UnixStream, engine: &Engine) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut request = [0u8; 1024];
    let _ = stream.read(&mut request);
    let body = engine.render_metrics();
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}
