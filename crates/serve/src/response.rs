//! Response construction.
//!
//! Responses are one JSON object per line with a fixed field order, so
//! the bytes of a response are a pure function of the request and the
//! engine's deterministic configuration (schema version, default seed)
//! — never of worker count, cache state, or wall-clock. That is what
//! lets the differential batteries pin exact bytes cold vs. warm and
//! at every thread count. Anything timing- or host-dependent (cache
//! hit rates, latency histograms) goes to stderr instead.

use serde::Value;

use crate::error::RequestError;

/// A successful solve.
#[derive(Debug, Clone, PartialEq)]
pub struct OkResponse {
    /// The request id, as JSON text.
    pub id: String,
    /// One value per variable, in variable-index order (for DIMACS
    /// payloads: variable `i+1` is true iff `assignment[i] == 1`).
    pub assignment: Vec<usize>,
    /// Fixing steps taken.
    pub steps: usize,
    /// Total LOCAL round bill (coloring + sweep).
    pub rounds: usize,
    /// Rounds spent on the schedule coloring (amortized away on a
    /// cache hit, but still billed so responses are cache-oblivious).
    pub coloring_rounds: usize,
    /// Color classes in the schedule.
    pub classes: usize,
    /// Violated events under the returned assignment (0 on success).
    pub violated: usize,
    /// Dependency-graph fingerprint, 16 lowercase hex digits.
    pub fingerprint: String,
    /// Deterministic provenance line (`schema=… engine=… seed=…`).
    pub provenance: String,
}

/// One response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `{"status":"ok",...}`.
    Ok(OkResponse),
    /// `{"status":"error","error":{...}}`.
    Error {
        /// The request id, as JSON text.
        id: String,
        /// What failed.
        error: RequestError,
    },
    /// `{"status":"shutdown"}` — acknowledges a shutdown request.
    Shutdown {
        /// The request id, as JSON text.
        id: String,
    },
}

impl Response {
    /// An error response.
    pub fn error(id: impl Into<String>, error: RequestError) -> Response {
        Response::Error {
            id: id.into(),
            error,
        }
    }

    /// Whether this is a shutdown acknowledgement.
    pub fn is_shutdown(&self) -> bool {
        matches!(self, Response::Shutdown { .. })
    }

    /// The JSON wire form (one line, no trailing newline).
    pub fn to_json(&self) -> String {
        let id_value = |id: &str| {
            serde_json::from_str::<Value>(id).unwrap_or_else(|_| Value::String(id.to_owned()))
        };
        let fields = match self {
            Response::Ok(ok) => vec![
                ("id".to_owned(), id_value(&ok.id)),
                ("status".to_owned(), Value::String("ok".to_owned())),
                (
                    "assignment".to_owned(),
                    Value::Array(
                        ok.assignment
                            .iter()
                            .map(|&v| Value::U64(v as u64))
                            .collect(),
                    ),
                ),
                ("steps".to_owned(), Value::U64(ok.steps as u64)),
                ("rounds".to_owned(), Value::U64(ok.rounds as u64)),
                (
                    "coloring_rounds".to_owned(),
                    Value::U64(ok.coloring_rounds as u64),
                ),
                ("classes".to_owned(), Value::U64(ok.classes as u64)),
                ("violated".to_owned(), Value::U64(ok.violated as u64)),
                (
                    "fingerprint".to_owned(),
                    Value::String(ok.fingerprint.clone()),
                ),
                (
                    "provenance".to_owned(),
                    Value::String(ok.provenance.clone()),
                ),
            ],
            Response::Error { id, error } => vec![
                ("id".to_owned(), id_value(id)),
                ("status".to_owned(), Value::String("error".to_owned())),
                (
                    "error".to_owned(),
                    Value::Object(vec![
                        (
                            "kind".to_owned(),
                            Value::String(error.kind.as_str().to_owned()),
                        ),
                        ("message".to_owned(), Value::String(error.message.clone())),
                    ]),
                ),
            ],
            Response::Shutdown { id } => vec![
                ("id".to_owned(), id_value(id)),
                ("status".to_owned(), Value::String("shutdown".to_owned())),
            ],
        };
        serde_json::to_string(&Value::Object(fields)).expect("response values are finite")
    }
}
