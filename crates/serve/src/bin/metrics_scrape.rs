//! `lll-metrics-scrape`: fetch one Prometheus exposition from a
//! daemon's `--metrics` Unix socket and print it to stdout.
//!
//! A dependency-free stand-in for `curl --unix-socket` so CI and tests
//! can scrape the daemon with nothing but this workspace. Exit codes
//! follow the daemon's convention: 0 — scraped; 2 — usage error; 3 —
//! connect/transport error (including a malformed HTTP response).

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
lll-metrics-scrape: fetch a Prometheus exposition from a Unix socket

USAGE:
    lll-metrics-scrape SOCKET_PATH

Prints the text exposition body to stdout.

EXIT CODES:
    0   scraped
    2   usage error
    3   connect or transport error
";

fn scrape(path: &str) -> Result<String, String> {
    let mut stream =
        UnixStream::connect(path).map_err(|e| format!("cannot connect to {path}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("socket setup: {e}"))?;
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .map_err(|e| format!("write request: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read response: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| "response has no HTTP header/body separator".to_owned())?;
    if !head.starts_with("HTTP/1.0 200") && !head.starts_with("HTTP/1.1 200") {
        let status = head.lines().next().unwrap_or("");
        return Err(format!("non-200 response: {status}"));
    }
    Ok(body.to_owned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [arg] if arg == "--help" || arg == "-h" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        [path] => match scrape(path) {
            Ok(body) => {
                print!("{body}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("lll-metrics-scrape: {e}");
                ExitCode::from(3)
            }
        },
        _ => {
            eprintln!("lll-metrics-scrape: expected exactly one socket path");
            eprintln!("lll-metrics-scrape: try --help");
            ExitCode::from(2)
        }
    }
}
