//! The `lll-serve` binary: stdin/stdout (default) or a Unix socket.
//!
//! Exit codes: 0 — clean shutdown (EOF or a `{"shutdown":true}`
//! request, in-flight work drained); 2 — usage error; 3 — transport
//! I/O error. Engine statistics (request counts, cache hit/miss,
//! latency percentiles) go to stderr on exit; stdout carries only
//! response lines.

use std::io::{BufWriter, Write};
use std::os::unix::net::UnixListener;
use std::process::ExitCode;

use lll_serve::{serve, Engine, EngineConfig, ServeConfig};

const USAGE: &str = "\
lll-serve: batched, cache-warmed LLL-solving daemon

USAGE:
    lll-serve [OPTIONS]

Reads newline-delimited JSON requests from stdin (or a Unix socket)
and writes one JSON response line per request, in input order.

REQUESTS:
    {\"id\":ID,\"dimacs\":\"p cnf ...\"}     solve a DIMACS CNF formula
    {\"id\":ID,\"instance\":{...}}          solve a JSON LLL instance
    {\"id\":ID,\"shutdown\":true}           drain, acknowledge, exit
Optional request fields: \"schedule_seed\", \"obs\" (tee a JSONL
recorder stream to a path), \"timeout_ms\" (opt-in deadline).

OPTIONS:
    --threads N          worker pool width per batch [default: 1]
    --seed N             default schedule seed [default: 5]
    --batch N            max requests per batch [default: 16]
    --max-events N       largest accepted instance [default: 1048576]
    --max-line-bytes N   longest accepted request line [default: 8388608]
    --no-cache           disable the schedule cache (cold baseline)
    --socket PATH        listen on a Unix socket instead of stdin
    --help               print this help

EXIT CODES:
    0   clean shutdown (EOF or shutdown request)
    2   usage error
    3   transport I/O error
";

struct Args {
    engine: EngineConfig,
    serve: ServeConfig,
    socket: Option<String>,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut engine = EngineConfig::default();
    let mut serve = ServeConfig::default();
    let mut socket = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |what: &str| -> Result<usize, String> {
            args.next()
                .ok_or_else(|| format!("{what} needs a value"))?
                .parse::<usize>()
                .map_err(|_| format!("{what} needs a non-negative integer"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--threads" => serve.threads = num("--threads")?.max(1),
            "--seed" => engine.default_seed = num("--seed")? as u64,
            "--batch" => serve.batch = num("--batch")?.max(1),
            "--max-events" => engine.max_events = num("--max-events")?,
            "--max-line-bytes" => serve.max_line_bytes = num("--max-line-bytes")?,
            "--no-cache" => engine.cache = false,
            "--socket" => {
                socket = Some(
                    args.next()
                        .ok_or_else(|| "--socket needs a path".to_owned())?,
                );
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(Some(Args {
        engine,
        serve,
        socket,
    }))
}

fn run() -> u8 {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{USAGE}");
            return 0;
        }
        Err(e) => {
            eprintln!("lll-serve: {e}");
            eprintln!("lll-serve: try --help");
            return 2;
        }
    };
    let engine = Engine::new(args.engine);
    let result = match &args.socket {
        None => {
            let stdin = std::io::stdin().lock();
            let stdout = std::io::stdout().lock();
            let mut out = BufWriter::new(stdout);
            serve(&engine, stdin, &mut out, &args.serve).and_then(|s| {
                out.flush()?;
                Ok(s)
            })
        }
        Some(path) => serve_socket(&engine, path, &args.serve),
    };
    let stats = engine.stats();
    eprintln!(
        "lll-serve: {} requests ({} ok, {} errors), cache {} hits / {} misses \
         ({} schedules), p50 {}us p99 {}us",
        stats.requests,
        stats.ok,
        stats.errors,
        stats.cache_hits,
        stats.cache_misses,
        engine.cached_schedules(),
        stats.p50_micros,
        stats.p99_micros,
    );
    match result {
        Ok(_) => 0,
        Err(e) => {
            eprintln!("lll-serve: transport error: {e}");
            3
        }
    }
}

/// Accepts connections one at a time; each connection is its own
/// newline-delimited request/response stream over the shared engine
/// (so the schedule cache stays warm across connections). A shutdown
/// request ends the accept loop after its connection drains.
fn serve_socket(
    engine: &Engine,
    path: &str,
    config: &ServeConfig,
) -> std::io::Result<lll_serve::ServeSummary> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let mut last = lll_serve::ServeSummary {
        responses: 0,
        shutdown: false,
    };
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = stream.try_clone()?;
        let mut writer = BufWriter::new(stream);
        let summary = serve(engine, reader, &mut writer, config)?;
        writer.flush()?;
        last.responses += summary.responses;
        if summary.shutdown {
            last.shutdown = true;
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(last)
}

fn main() -> ExitCode {
    ExitCode::from(run())
}
