//! The `lll-serve` binary: stdin/stdout (default) or a Unix socket.
//!
//! Exit codes: 0 — clean shutdown (EOF or a `{"shutdown":true}`
//! request, in-flight work drained); 2 — usage error; 3 — transport
//! I/O error. Engine statistics (request counts, cache hit/miss,
//! latency percentiles) go to stderr on exit; stdout carries only
//! response lines.
//!
//! Live telemetry is opt-in: `--metrics PATH` serves the Prometheus
//! text exposition over a Unix socket, `--stats-interval SECS` prints
//! periodic stderr snapshots, and `SIGUSR1` dumps one snapshot on
//! demand. All of it is side-band — enabling telemetry cannot change a
//! response byte or a teed recorder stream.

use std::io::{BufWriter, Write};
use std::os::unix::net::UnixListener;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use lll_serve::{serve, spawn_telemetry, Engine, EngineConfig, ServeConfig, TelemetryConfig};

const USAGE: &str = "\
lll-serve: batched, cache-warmed LLL-solving daemon

USAGE:
    lll-serve [OPTIONS]

Reads newline-delimited JSON requests from stdin (or a Unix socket)
and writes one JSON response line per request, in input order.

REQUESTS:
    {\"id\":ID,\"dimacs\":\"p cnf ...\"}     solve a DIMACS CNF formula
    {\"id\":ID,\"instance\":{...}}          solve a JSON LLL instance
    {\"id\":ID,\"shutdown\":true}           drain, acknowledge, exit
Optional request fields: \"schedule_seed\", \"obs\" (tee a JSONL
recorder stream to a path; every line carries the request id as its
\"req\" correlation field), \"timeout_ms\" (opt-in deadline).

OPTIONS:
    --threads N          worker pool width per batch [default: 1]
    --seed N             default schedule seed [default: 5]
    --batch N            max requests per batch [default: 16]
    --max-events N       largest accepted instance [default: 1048576]
    --max-line-bytes N   longest accepted request line [default: 8388608]
    --no-cache           disable the schedule cache (cold baseline)
    --cache-capacity N   bound the schedule cache to N entries (LRU)
    --socket PATH        listen on a Unix socket instead of stdin
    --metrics PATH       serve Prometheus metrics on a Unix socket
    --stats-interval S   print a stats snapshot to stderr every S seconds
    --help               print this help

SIGNALS:
    SIGUSR1              print one stats snapshot to stderr

EXIT CODES:
    0   clean shutdown (EOF or shutdown request)
    2   usage error
    3   transport I/O error
";

/// Minimal `SIGUSR1` plumbing: the handler only sets an [`AtomicBool`]
/// that the telemetry thread polls. Hand-rolled `signal(2)` FFI —
/// the workspace vendors no signal crate, and this is the one unsafe
/// block the daemon needs.
mod sigusr1 {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// `SIGUSR1` on Linux.
    const SIGUSR1: i32 = 10;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    static FLAG: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_sigusr1(_signum: i32) {
        // Async-signal-safe: one relaxed atomic store, nothing else.
        FLAG.store(true, Ordering::Relaxed);
    }

    /// Installs the handler and returns a flag the telemetry thread
    /// drains. The process-global `FLAG` is bridged to a fresh `Arc`
    /// by the caller polling [`take`].
    pub fn install() -> Arc<AtomicBool> {
        unsafe {
            signal(SIGUSR1, on_sigusr1 as extern "C" fn(i32) as usize);
        }
        Arc::new(AtomicBool::new(false))
    }

    /// Whether the signal fired since the last call.
    pub fn take() -> bool {
        FLAG.swap(false, Ordering::Relaxed)
    }
}

struct Args {
    engine: EngineConfig,
    serve: ServeConfig,
    socket: Option<String>,
    telemetry: TelemetryConfig,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut engine = EngineConfig::default();
    let mut serve = ServeConfig::default();
    let mut socket = None;
    let mut telemetry = TelemetryConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |what: &str| -> Result<usize, String> {
            args.next()
                .ok_or_else(|| format!("{what} needs a value"))?
                .parse::<usize>()
                .map_err(|_| format!("{what} needs a non-negative integer"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--threads" => serve.threads = num("--threads")?.max(1),
            "--seed" => engine.default_seed = num("--seed")? as u64,
            "--batch" => serve.batch = num("--batch")?.max(1),
            "--max-events" => engine.max_events = num("--max-events")?,
            "--max-line-bytes" => serve.max_line_bytes = num("--max-line-bytes")?,
            "--no-cache" => engine.cache = false,
            "--cache-capacity" => engine.cache_capacity = Some(num("--cache-capacity")?),
            "--socket" => {
                socket = Some(
                    args.next()
                        .ok_or_else(|| "--socket needs a path".to_owned())?,
                );
            }
            "--metrics" => {
                telemetry.socket = Some(
                    args.next()
                        .ok_or_else(|| "--metrics needs a path".to_owned())?,
                );
            }
            "--stats-interval" => {
                telemetry.stats_interval =
                    Some(Duration::from_secs(num("--stats-interval")?.max(1) as u64));
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(Some(Args {
        engine,
        serve,
        socket,
        telemetry,
    }))
}

fn run() -> u8 {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{USAGE}");
            return 0;
        }
        Err(e) => {
            eprintln!("lll-serve: {e}");
            eprintln!("lll-serve: try --help");
            return 2;
        }
    };
    let engine = Arc::new(Engine::new(args.engine));
    let telemetry = if args.telemetry.is_active() {
        let dump = sigusr1::install();
        // Bridge the process-global signal flag into the telemetry
        // thread's dump flag with a tiny poller (the handler itself
        // may only touch the global).
        let bridge_dump = Arc::clone(&dump);
        let bridge_stop = Arc::new(AtomicBool::new(false));
        let bridge_stop2 = Arc::clone(&bridge_stop);
        let bridge = std::thread::spawn(move || {
            while !bridge_stop2.load(std::sync::atomic::Ordering::Relaxed) {
                if sigusr1::take() {
                    bridge_dump.store(true, std::sync::atomic::Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        });
        match spawn_telemetry(Arc::clone(&engine), args.telemetry.clone(), dump) {
            Ok(handle) => Some((handle, bridge_stop, bridge)),
            Err(e) => {
                eprintln!("lll-serve: cannot bind metrics socket: {e}");
                return 2;
            }
        }
    } else {
        None
    };
    let result = match &args.socket {
        None => {
            let stdin = std::io::stdin().lock();
            let stdout = std::io::stdout().lock();
            let mut out = BufWriter::new(stdout);
            serve(&engine, stdin, &mut out, &args.serve).and_then(|s| {
                out.flush()?;
                Ok(s)
            })
        }
        Some(path) => serve_socket(&engine, path, &args.serve),
    };
    if let Some((handle, bridge_stop, bridge)) = telemetry {
        handle.shutdown();
        bridge_stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = bridge.join();
    }
    eprintln!("lll-serve: {}", engine.stats_line());
    match result {
        Ok(_) => 0,
        Err(e) => {
            eprintln!("lll-serve: transport error: {e}");
            3
        }
    }
}

/// Accepts connections one at a time; each connection is its own
/// newline-delimited request/response stream over the shared engine
/// (so the schedule cache stays warm across connections). A shutdown
/// request ends the accept loop after its connection drains.
fn serve_socket(
    engine: &Engine,
    path: &str,
    config: &ServeConfig,
) -> std::io::Result<lll_serve::ServeSummary> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let mut last = lll_serve::ServeSummary {
        responses: 0,
        shutdown: false,
    };
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = stream.try_clone()?;
        let mut writer = BufWriter::new(stream);
        let summary = serve(engine, reader, &mut writer, config)?;
        writer.flush()?;
        last.responses += summary.responses;
        if summary.shutdown {
            last.shutdown = true;
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(last)
}

fn main() -> ExitCode {
    ExitCode::from(run())
}
