//! The solving engine: request in, deterministic response out.
//!
//! Routing: instances of rank ≤ 2 go to the rank-2 fixer under an
//! edge-coloring schedule, rank 3 to the rank-3 fixer under a
//! distance-2 schedule (Theorems 1.1/1.3); rank > 3 is refused with an
//! `out_of_regime` error. Schedules come from the [`TopologyCache`]
//! keyed by graph fingerprint + seed, and the sweep runs through the
//! `*_scheduled` drivers — the same code path a cold run takes, so a
//! cache hit cannot change a byte of the response or of a teed
//! recorder stream.
//!
//! Per-request solves are single-threaded; parallelism lives one
//! level up, across the requests of a batch (see [`crate::server`]).
//!
//! Timeouts are opt-in (`timeout_ms`) and checked when the solve
//! completes: a request past its deadline gets a structured `timeout`
//! error instead of its result. The check is cooperative — a sweep is
//! never aborted mid-flight — so requests without a deadline remain
//! purely deterministic, and `max_events`/`max_line_bytes` are the
//! deterministic work bounds.

use std::fs::File;
use std::io::BufWriter;
use std::time::{Duration, Instant};

use lll_apps::sat::CnfFormula;
use lll_core::dist::{
    distributed_fixer2_scheduled_traced, distributed_fixer3_scheduled_traced, CriterionCheck,
    DistError, DistReport, Schedule, ScheduleKind,
};
use lll_core::Instance;
use lll_obs::{JsonlRecorder, NullRecorder, Recorder, TimingScope, TimingSink};
use serde::Value;

use crate::cache::TopologyCache;
use crate::error::RequestError;
use crate::metrics::ServeMetrics;
use crate::request::{Payload, Request, SolveRequest, SCHEMA_VERSION};
use crate::response::{OkResponse, Response};

/// Engine configuration. All of it is deterministic input: two engines
/// with the same config produce byte-identical responses for the same
/// requests, regardless of `cache` (which only changes *when* work
/// happens, not what it computes).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Schedule seed used when a request does not carry one.
    pub default_seed: u64,
    /// Whether to reuse schedules across same-shape requests.
    pub cache: bool,
    /// Schedule-cache entry bound with LRU eviction (`None` =
    /// unbounded, the historical behavior).
    pub cache_capacity: Option<usize>,
    /// Largest number of events a request may declare.
    pub max_events: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            default_seed: 5,
            cache: true,
            cache_capacity: None,
            max_events: 1 << 20,
        }
    }
}

/// A snapshot of the engine's counters, for stderr reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests answered (ok + error + shutdown).
    pub requests: u64,
    /// Successful solves.
    pub ok: u64,
    /// Error responses.
    pub errors: u64,
    /// Schedule-cache hits.
    pub cache_hits: u64,
    /// Schedule-cache misses (schedules computed).
    pub cache_misses: u64,
    /// Schedule-cache LRU evictions.
    pub cache_evictions: u64,
    /// p50 request latency in microseconds (0 when no requests).
    pub p50_micros: u64,
    /// p99 request latency in microseconds (0 when no requests).
    pub p99_micros: u64,
}

/// The long-lived solving engine shared by all workers.
pub struct Engine {
    config: EngineConfig,
    cache: TopologyCache,
    metrics: ServeMetrics,
}

impl Engine {
    /// An engine with the given configuration and an empty cache.
    pub fn new(config: EngineConfig) -> Engine {
        let cache = TopologyCache::with_capacity(config.cache_capacity);
        Engine {
            config,
            cache,
            metrics: ServeMetrics::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The live metrics bundle.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Parses and answers one request line. Never panics on input;
    /// every failure is a typed error response.
    pub fn solve_line(&self, line: &str) -> Response {
        let start = Instant::now();
        let response = match Request::parse(line) {
            Ok(Request::Shutdown { id }) => Response::Shutdown { id },
            Ok(Request::Solve(req)) => self.respond(&req),
            Err(e) => Response::error(salvage_id(line), e),
        };
        self.note(&response, start.elapsed());
        response
    }

    /// Answers an already-parsed solve request.
    pub fn respond(&self, req: &SolveRequest) -> Response {
        match self.solve(req) {
            Ok(ok) => Response::Ok(ok),
            Err(error) => Response::error(req.id.clone(), error),
        }
    }

    /// Counter + latency snapshot.
    pub fn stats(&self) -> EngineStats {
        let hist = self.metrics.latency_micros.merged();
        EngineStats {
            requests: self.metrics.requests.value(),
            ok: self.metrics.ok.value(),
            errors: self.metrics.errors(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_evictions: self.cache.evictions(),
            p50_micros: if hist.is_empty() { 0 } else { hist.p50() },
            p99_micros: if hist.is_empty() { 0 } else { hist.p99() },
        }
    }

    /// The one-line stderr stats form shared by the exit report, the
    /// interval snapshot, and the `SIGUSR1` dump.
    pub fn stats_line(&self) -> String {
        let stats = self.stats();
        format!(
            "{} requests ({} ok, {} errors), cache {} hits / {} misses / {} evictions \
             ({} schedules, ~{} bytes), p50 {}us p99 {}us",
            stats.requests,
            stats.ok,
            stats.errors,
            stats.cache_hits,
            stats.cache_misses,
            stats.cache_evictions,
            self.cache.len(),
            self.cache.approx_bytes(),
            stats.p50_micros,
            stats.p99_micros,
        )
    }

    /// Syncs externally-tracked totals (cache counters, memory gauges)
    /// into the registry and renders the Prometheus text exposition.
    pub fn render_metrics(&self) -> String {
        self.metrics.cache_hits.sync_total(self.cache.hits());
        self.metrics.cache_misses.sync_total(self.cache.misses());
        self.metrics
            .cache_evictions
            .sync_total(self.cache.evictions());
        self.metrics
            .cache_entries
            .set(i64::try_from(self.cache.len()).unwrap_or(i64::MAX));
        self.metrics
            .cache_bytes
            .set(i64::try_from(self.cache.approx_bytes()).unwrap_or(i64::MAX));
        self.metrics.sync_memory();
        self.metrics.sync_numeric();
        self.metrics.registry().render()
    }

    /// Number of schedules currently cached.
    pub fn cached_schedules(&self) -> usize {
        self.cache.len()
    }

    fn note(&self, response: &Response, elapsed: Duration) {
        self.metrics.requests.inc();
        match response {
            Response::Ok(_) => self.metrics.ok.inc(),
            Response::Error { error, .. } => self.metrics.note_error(error.kind),
            Response::Shutdown { .. } => self.metrics.shutdowns.inc(),
        }
        self.metrics
            .latency_micros
            .record(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    fn solve(&self, req: &SolveRequest) -> Result<OkResponse, RequestError> {
        let start = Instant::now();
        let inst = self.build_instance(req)?;
        let g = inst.dependency_graph();
        let rank = inst.max_rank();
        let seed = req.schedule_seed.unwrap_or(self.config.default_seed);
        let kind = match rank {
            0..=2 => ScheduleKind::Edge,
            3 => ScheduleKind::Distance2,
            r => {
                return Err(RequestError::out_of_regime(format!(
                    "instance has rank {r}; the fixers cover rank <= 3"
                )))
            }
        };
        let compute = || match kind {
            ScheduleKind::Edge => Schedule::edge(g, seed, 1),
            ScheduleKind::Distance2 => Schedule::distance2(g, seed, 1),
        };
        let schedule = if self.config.cache {
            self.cache.get_or_compute(g, seed, kind, compute)
        } else {
            compute().map(std::sync::Arc::new)
        }
        .map_err(|e| RequestError::internal(format!("schedule coloring failed: {e}")))?;

        // The sweep histograms are fed by a side-band timing sink
        // (DESIGN.md §3.11): spans are recorded *about* the sweep but
        // never read by it, so telemetry cannot perturb a byte of the
        // response or of the teed stream below.
        let mut sink = MetricsTiming {
            metrics: &self.metrics,
        };
        let report = match &req.obs {
            None => run_scheduled(&inst, &schedule, kind, &mut NullRecorder, &mut sink)?,
            Some(path) => {
                let file = File::create(path).map_err(|e| {
                    RequestError::io(format!("cannot create obs tee {path:?}: {e}"))
                })?;
                // No provenance meta line: the stream must be
                // byte-identical cold vs. warm and at every worker
                // count, and the meta line carries host facts. Every
                // line is tagged with the request id (already JSON
                // text) as its `req` correlation field — a pure
                // function of the request, so the tag is identical
                // across engines, thread counts, and cache states.
                let mut rec = JsonlRecorder::with_request(BufWriter::new(file), req.id.clone());
                let report = run_scheduled(&inst, &schedule, kind, &mut rec, &mut sink);
                let writer = rec
                    .finish()
                    .map_err(|e| RequestError::io(format!("obs tee {path:?}: {e}")))?;
                writer
                    .into_inner()
                    .map_err(|e| RequestError::io(format!("obs tee {path:?}: {e}")))?;
                report?
            }
        };

        if let Some(ms) = req.timeout_ms {
            if start.elapsed() >= Duration::from_millis(ms) {
                return Err(RequestError::timeout(format!(
                    "deadline of {ms} ms exceeded"
                )));
            }
        }

        let violated = inst
            .violated_events(report.fix.assignment())
            .map_err(|e| RequestError::internal(format!("post-check: {e}")))?
            .len();
        let fixer = if kind == ScheduleKind::Edge { 2 } else { 3 };
        Ok(OkResponse {
            id: req.id.clone(),
            assignment: report.fix.assignment().to_vec(),
            steps: report.fix.num_steps(),
            rounds: report.rounds,
            coloring_rounds: report.coloring_rounds,
            classes: report.num_classes,
            violated,
            fingerprint: format!("{:016x}", g.fingerprint()),
            provenance: format!(
                "schema={SCHEMA_VERSION} engine=lll-serve/{} fixer={fixer} seed={seed} \
                 nodes={} edges={} max_degree={}",
                env!("CARGO_PKG_VERSION"),
                g.num_nodes(),
                g.num_edges(),
                g.max_degree(),
            ),
        })
    }

    fn build_instance(&self, req: &SolveRequest) -> Result<Instance<f64>, RequestError> {
        match &req.payload {
            Payload::Dimacs(text) => {
                let cnf: CnfFormula = text
                    .parse()
                    .map_err(|e| RequestError::parse(format!("DIMACS: {e}")))?;
                if cnf.clauses().len() > self.config.max_events {
                    return Err(RequestError::oversized(format!(
                        "{} clauses exceed the limit of {}",
                        cnf.clauses().len(),
                        self.config.max_events
                    )));
                }
                cnf.to_instance::<f64>()
                    .map_err(|e| RequestError::invalid(format!("DIMACS: {e}")))
            }
            Payload::Instance(ji) => {
                if ji.events.len() > self.config.max_events {
                    return Err(RequestError::oversized(format!(
                        "{} events exceed the limit of {}",
                        ji.events.len(),
                        self.config.max_events
                    )));
                }
                ji.build_instance()
            }
        }
    }
}

/// A [`TimingSink`] that folds sweep spans into the engine's metric
/// histograms, in microseconds. Write-only from the solve's point of
/// view — the sweep never reads it back.
struct MetricsTiming<'a> {
    metrics: &'a ServeMetrics,
}

impl TimingSink for MetricsTiming<'_> {
    fn record_span(&mut self, scope: TimingScope, nanos: u64) {
        match scope {
            TimingScope::FixRun => self.metrics.sweep_micros.record(nanos / 1_000),
            TimingScope::FixClass => self.metrics.class_micros.record(nanos / 1_000),
            _ => {}
        }
    }
}

fn run_scheduled<R: Recorder, S: TimingSink>(
    inst: &Instance<f64>,
    schedule: &Schedule,
    kind: ScheduleKind,
    rec: &mut R,
    sink: &mut S,
) -> Result<DistReport, RequestError> {
    let result = match kind {
        ScheduleKind::Edge => distributed_fixer2_scheduled_traced(
            inst,
            schedule,
            CriterionCheck::Enforce,
            1,
            rec,
            sink,
        ),
        ScheduleKind::Distance2 => distributed_fixer3_scheduled_traced(
            inst,
            schedule,
            CriterionCheck::Enforce,
            1,
            rec,
            sink,
        ),
    };
    result.map_err(|e| match e {
        DistError::Fixer(f) => RequestError::out_of_regime(f.to_string()),
        other => RequestError::internal(other.to_string()),
    })
}

/// Best-effort id recovery for lines that fail request parsing but are
/// themselves valid JSON objects with a scalar `id` — so clients can
/// correlate even schema-violation errors.
fn salvage_id(line: &str) -> String {
    if let Ok(value) = serde_json::from_str::<Value>(line) {
        if let Some(id @ (Value::Null | Value::String(_) | Value::U64(_) | Value::I64(_))) =
            value.get("id")
        {
            if let Ok(text) = serde_json::to_string(id) {
                return text;
            }
        }
    }
    "null".to_owned()
}
