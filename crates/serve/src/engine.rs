//! The solving engine: request in, deterministic response out.
//!
//! Routing: instances of rank ≤ 2 go to the rank-2 fixer under an
//! edge-coloring schedule, rank 3 to the rank-3 fixer under a
//! distance-2 schedule (Theorems 1.1/1.3); rank > 3 is refused with an
//! `out_of_regime` error. Schedules come from the [`TopologyCache`]
//! keyed by graph fingerprint + seed, and the sweep runs through the
//! `*_scheduled` drivers — the same code path a cold run takes, so a
//! cache hit cannot change a byte of the response or of a teed
//! recorder stream.
//!
//! Per-request solves are single-threaded; parallelism lives one
//! level up, across the requests of a batch (see [`crate::server`]).
//!
//! Timeouts are opt-in (`timeout_ms`) and checked when the solve
//! completes: a request past its deadline gets a structured `timeout`
//! error instead of its result. The check is cooperative — a sweep is
//! never aborted mid-flight — so requests without a deadline remain
//! purely deterministic, and `max_events`/`max_line_bytes` are the
//! deterministic work bounds.

use std::fs::File;
use std::io::BufWriter;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use lll_apps::sat::CnfFormula;
use lll_core::dist::{
    distributed_fixer2_scheduled_recorded, distributed_fixer3_scheduled_recorded, CriterionCheck,
    DistError, DistReport, Schedule, ScheduleKind,
};
use lll_core::Instance;
use lll_obs::hist::Histogram;
use lll_obs::{JsonlRecorder, NullRecorder, Recorder};
use serde::Value;

use crate::cache::TopologyCache;
use crate::error::RequestError;
use crate::request::{Payload, Request, SolveRequest, SCHEMA_VERSION};
use crate::response::{OkResponse, Response};

/// Engine configuration. All of it is deterministic input: two engines
/// with the same config produce byte-identical responses for the same
/// requests, regardless of `cache` (which only changes *when* work
/// happens, not what it computes).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Schedule seed used when a request does not carry one.
    pub default_seed: u64,
    /// Whether to reuse schedules across same-shape requests.
    pub cache: bool,
    /// Largest number of events a request may declare.
    pub max_events: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            default_seed: 5,
            cache: true,
            max_events: 1 << 20,
        }
    }
}

/// A snapshot of the engine's counters, for stderr reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests answered (ok + error + shutdown).
    pub requests: u64,
    /// Successful solves.
    pub ok: u64,
    /// Error responses.
    pub errors: u64,
    /// Schedule-cache hits.
    pub cache_hits: u64,
    /// Schedule-cache misses (schedules computed).
    pub cache_misses: u64,
    /// p50 request latency in microseconds (0 when no requests).
    pub p50_micros: u64,
    /// p99 request latency in microseconds (0 when no requests).
    pub p99_micros: u64,
}

/// The long-lived solving engine shared by all workers.
pub struct Engine {
    config: EngineConfig,
    cache: TopologyCache,
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    latency: Mutex<Histogram>,
}

impl Engine {
    /// An engine with the given configuration and an empty cache.
    pub fn new(config: EngineConfig) -> Engine {
        Engine {
            config,
            cache: TopologyCache::new(),
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency: Mutex::new(Histogram::new()),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Parses and answers one request line. Never panics on input;
    /// every failure is a typed error response.
    pub fn solve_line(&self, line: &str) -> Response {
        let start = Instant::now();
        let response = match Request::parse(line) {
            Ok(Request::Shutdown { id }) => Response::Shutdown { id },
            Ok(Request::Solve(req)) => self.respond(&req),
            Err(e) => Response::error(salvage_id(line), e),
        };
        self.note(&response, start.elapsed());
        response
    }

    /// Answers an already-parsed solve request.
    pub fn respond(&self, req: &SolveRequest) -> Response {
        match self.solve(req) {
            Ok(ok) => Response::Ok(ok),
            Err(error) => Response::error(req.id.clone(), error),
        }
    }

    /// Counter + latency snapshot.
    pub fn stats(&self) -> EngineStats {
        let hist = self.latency.lock().expect("latency lock poisoned");
        EngineStats {
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            p50_micros: if hist.is_empty() { 0 } else { hist.p50() },
            p99_micros: if hist.is_empty() { 0 } else { hist.p99() },
        }
    }

    /// Number of schedules currently cached.
    pub fn cached_schedules(&self) -> usize {
        self.cache.len()
    }

    fn note(&self, response: &Response, elapsed: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match response {
            Response::Ok(_) => {
                self.ok.fetch_add(1, Ordering::Relaxed);
            }
            Response::Error { .. } => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
            Response::Shutdown { .. } => {}
        }
        self.latency
            .lock()
            .expect("latency lock poisoned")
            .record(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    fn solve(&self, req: &SolveRequest) -> Result<OkResponse, RequestError> {
        let start = Instant::now();
        let inst = self.build_instance(req)?;
        let g = inst.dependency_graph();
        let rank = inst.max_rank();
        let seed = req.schedule_seed.unwrap_or(self.config.default_seed);
        let kind = match rank {
            0..=2 => ScheduleKind::Edge,
            3 => ScheduleKind::Distance2,
            r => {
                return Err(RequestError::out_of_regime(format!(
                    "instance has rank {r}; the fixers cover rank <= 3"
                )))
            }
        };
        let compute = || match kind {
            ScheduleKind::Edge => Schedule::edge(g, seed, 1),
            ScheduleKind::Distance2 => Schedule::distance2(g, seed, 1),
        };
        let schedule = if self.config.cache {
            self.cache.get_or_compute(g, seed, kind, compute)
        } else {
            compute().map(std::sync::Arc::new)
        }
        .map_err(|e| RequestError::internal(format!("schedule coloring failed: {e}")))?;

        let report = match &req.obs {
            None => run_scheduled(&inst, &schedule, kind, &mut NullRecorder)?,
            Some(path) => {
                let file = File::create(path).map_err(|e| {
                    RequestError::io(format!("cannot create obs tee {path:?}: {e}"))
                })?;
                // No provenance meta line: the stream must be
                // byte-identical cold vs. warm and at every worker
                // count, and the meta line carries host facts.
                let mut rec = JsonlRecorder::new(BufWriter::new(file));
                let report = run_scheduled(&inst, &schedule, kind, &mut rec);
                let writer = rec
                    .finish()
                    .map_err(|e| RequestError::io(format!("obs tee {path:?}: {e}")))?;
                writer
                    .into_inner()
                    .map_err(|e| RequestError::io(format!("obs tee {path:?}: {e}")))?;
                report?
            }
        };

        if let Some(ms) = req.timeout_ms {
            if start.elapsed() >= Duration::from_millis(ms) {
                return Err(RequestError::timeout(format!(
                    "deadline of {ms} ms exceeded"
                )));
            }
        }

        let violated = inst
            .violated_events(report.fix.assignment())
            .map_err(|e| RequestError::internal(format!("post-check: {e}")))?
            .len();
        let fixer = if kind == ScheduleKind::Edge { 2 } else { 3 };
        Ok(OkResponse {
            id: req.id.clone(),
            assignment: report.fix.assignment().to_vec(),
            steps: report.fix.num_steps(),
            rounds: report.rounds,
            coloring_rounds: report.coloring_rounds,
            classes: report.num_classes,
            violated,
            fingerprint: format!("{:016x}", g.fingerprint()),
            provenance: format!(
                "schema={SCHEMA_VERSION} engine=lll-serve/{} fixer={fixer} seed={seed} \
                 nodes={} edges={} max_degree={}",
                env!("CARGO_PKG_VERSION"),
                g.num_nodes(),
                g.num_edges(),
                g.max_degree(),
            ),
        })
    }

    fn build_instance(&self, req: &SolveRequest) -> Result<Instance<f64>, RequestError> {
        match &req.payload {
            Payload::Dimacs(text) => {
                let cnf: CnfFormula = text
                    .parse()
                    .map_err(|e| RequestError::parse(format!("DIMACS: {e}")))?;
                if cnf.clauses().len() > self.config.max_events {
                    return Err(RequestError::oversized(format!(
                        "{} clauses exceed the limit of {}",
                        cnf.clauses().len(),
                        self.config.max_events
                    )));
                }
                cnf.to_instance::<f64>()
                    .map_err(|e| RequestError::invalid(format!("DIMACS: {e}")))
            }
            Payload::Instance(ji) => {
                if ji.events.len() > self.config.max_events {
                    return Err(RequestError::oversized(format!(
                        "{} events exceed the limit of {}",
                        ji.events.len(),
                        self.config.max_events
                    )));
                }
                ji.build_instance()
            }
        }
    }
}

fn run_scheduled<R: Recorder>(
    inst: &Instance<f64>,
    schedule: &Schedule,
    kind: ScheduleKind,
    rec: &mut R,
) -> Result<DistReport, RequestError> {
    let result = match kind {
        ScheduleKind::Edge => {
            distributed_fixer2_scheduled_recorded(inst, schedule, CriterionCheck::Enforce, 1, rec)
        }
        ScheduleKind::Distance2 => {
            distributed_fixer3_scheduled_recorded(inst, schedule, CriterionCheck::Enforce, 1, rec)
        }
    };
    result.map_err(|e| match e {
        DistError::Fixer(f) => RequestError::out_of_regime(f.to_string()),
        other => RequestError::internal(other.to_string()),
    })
}

/// Best-effort id recovery for lines that fail request parsing but are
/// themselves valid JSON objects with a scalar `id` — so clients can
/// correlate even schema-violation errors.
fn salvage_id(line: &str) -> String {
    if let Ok(value) = serde_json::from_str::<Value>(line) {
        if let Some(id @ (Value::Null | Value::String(_) | Value::U64(_) | Value::I64(_))) =
            value.get("id")
        {
            if let Ok(text) = serde_json::to_string(id) {
                return text;
            }
        }
    }
    "null".to_owned()
}
