//! `lll-serve`: a batched, cache-warmed LLL-solving daemon.
//!
//! The one-shot binaries in this workspace recompute the full
//! topology pipeline — schedule coloring, twin ports, scheduling
//! classes — for every instance, even though the Brandt–Maus–Uitto
//! machinery makes all of it a pure function of the dependency graph
//! and a seed. This crate serves the amortized, many-instance regime:
//! a long-lived [`Engine`] answers newline-delimited solve requests
//! (DIMACS CNF or a JSON instance schema) and reuses schedules across
//! requests with the same graph shape via a fingerprint-keyed
//! [`TopologyCache`], so a warm request pays only the fixing sweep.
//!
//! The workspace determinism contract extends to the service layer:
//! a response — and any per-request `obs` recorder stream — is a pure
//! function of the request and the engine's deterministic
//! configuration. Cache hit vs. cold, one worker vs. eight: the bytes
//! are identical, and the differential batteries in `tests/` pin it.
//!
//! ```text
//! $ printf '%s\n' '{"id":"q0","dimacs":"p cnf 2 2\n1 2 0\n-1 2 0\n"}' | lll-serve
//! {"id":"q0","status":"ok","assignment":[1,1],...}
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod request;
pub mod response;
pub mod server;

pub use cache::TopologyCache;
pub use engine::{Engine, EngineConfig, EngineStats};
pub use error::{ErrorKind, RequestError};
pub use metrics::{spawn_telemetry, ServeMetrics, TelemetryConfig, TelemetryHandle};
pub use request::{JsonEvent, JsonInstance, JsonVariable, Payload, Request, SolveRequest};
pub use response::{OkResponse, Response};
pub use server::{serve, ServeConfig, ServeSummary};
