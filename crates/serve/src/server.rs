//! The serving loop: adaptive batching + a scoped worker pool.
//!
//! Requests are newline-delimited. The loop blocks for the first
//! request of a batch, then opportunistically drains whatever further
//! lines are already buffered (up to `batch`) — so an interactive
//! client gets an immediate answer while a pipe-fed workload runs in
//! full batches. Each batch is solved by `std::thread::scope` workers
//! (clamped via [`lll_local::effective_workers`]) pulling requests
//! from an atomic cursor; responses are written strictly in input
//! order, so the output stream is byte-identical at every worker
//! count.
//!
//! A `{"shutdown":true}` request drains the batch it arrived in,
//! is acknowledged with `{"status":"shutdown"}`, and stops the loop.
//! EOF on the input stream does the same without an acknowledgement.

use std::io::{BufRead, BufReader, Read, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::engine::Engine;
use crate::error::RequestError;
use crate::response::Response;

/// Serving-loop configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum requests per batch.
    pub batch: usize,
    /// Worker-pool width (clamped to the batch size per batch).
    pub threads: usize,
    /// Longest accepted request line, in bytes (excluding the
    /// newline); longer lines are skipped and answered with an
    /// `oversized` error.
    pub max_line_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            batch: 16,
            threads: 1,
            max_line_bytes: 8 << 20,
        }
    }
}

/// What a serving loop did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Responses written (one per non-blank request line).
    pub responses: u64,
    /// Whether the loop ended on a shutdown request (vs. EOF).
    pub shutdown: bool,
}

/// One unit of work cut from the input stream.
enum Item {
    /// A complete line within the size limit.
    Line(String),
    /// A line longer than `max_line_bytes`; content was skipped.
    Oversized,
    /// A line that is not valid UTF-8.
    BadUtf8,
}

/// Newline framing over a raw reader, with a hard per-line byte cap
/// and a non-blocking probe for already-buffered data.
struct LineReader<R: Read> {
    inner: BufReader<R>,
    max: usize,
}

impl<R: Read> LineReader<R> {
    fn new(reader: R, max: usize) -> LineReader<R> {
        LineReader {
            inner: BufReader::new(reader),
            max,
        }
    }

    /// The next non-blank item, or `None` at EOF. With `block ==
    /// false`, returns `None` immediately when nothing is buffered
    /// (the only case may-block data is a line straddling the buffer
    /// boundary, which means bytes are actively arriving).
    fn next(&mut self, block: bool) -> std::io::Result<Option<Item>> {
        loop {
            if !block && self.inner.buffer().is_empty() {
                return Ok(None);
            }
            let mut line: Vec<u8> = Vec::new();
            let mut oversized = false;
            let mut saw_bytes = false;
            loop {
                let available = self.inner.fill_buf()?;
                if available.is_empty() {
                    break; // EOF: flush whatever the final line holds.
                }
                saw_bytes = true;
                match available.iter().position(|&b| b == b'\n') {
                    Some(i) => {
                        if !oversized && line.len() + i > self.max {
                            oversized = true;
                        }
                        if !oversized {
                            line.extend_from_slice(&available[..i]);
                        }
                        self.inner.consume(i + 1);
                        break;
                    }
                    None => {
                        let n = available.len();
                        if !oversized && line.len() + n > self.max {
                            oversized = true;
                            line.clear();
                        }
                        if !oversized {
                            line.extend_from_slice(available);
                        }
                        self.inner.consume(n);
                    }
                }
            }
            if oversized {
                return Ok(Some(Item::Oversized));
            }
            if !saw_bytes && line.is_empty() {
                return Ok(None); // EOF before any byte.
            }
            match String::from_utf8(line) {
                Ok(s) if s.trim().is_empty() => continue, // skip blank lines
                Ok(s) => return Ok(Some(Item::Line(s))),
                Err(_) => return Ok(Some(Item::BadUtf8)),
            }
        }
    }
}

/// Runs the serving loop until EOF or a shutdown request. Responses
/// are flushed after every batch.
///
/// # Errors
///
/// Only transport errors (reading requests, writing responses) — a
/// malformed request is answered, never escalated.
pub fn serve<R: Read, W: Write>(
    engine: &Engine,
    input: R,
    output: &mut W,
    config: &ServeConfig,
) -> std::io::Result<ServeSummary> {
    let mut lines = LineReader::new(input, config.max_line_bytes);
    let mut summary = ServeSummary {
        responses: 0,
        shutdown: false,
    };
    let batch_size = config.batch.max(1);
    loop {
        let mut batch: Vec<Item> = Vec::new();
        match lines.next(true)? {
            None => break,
            Some(item) => batch.push(item),
        }
        while batch.len() < batch_size {
            match lines.next(false)? {
                Some(item) => batch.push(item),
                None => break,
            }
        }
        let responses = process_batch(engine, &batch, config.threads, config.max_line_bytes);
        for response in &responses {
            output.write_all(response.to_json().as_bytes())?;
            output.write_all(b"\n")?;
            summary.responses += 1;
            if response.is_shutdown() {
                summary.shutdown = true;
            }
        }
        output.flush()?;
        if summary.shutdown {
            break;
        }
    }
    Ok(summary)
}

/// Solves one batch on a scoped worker pool; the returned responses
/// are in input order regardless of worker count.
fn process_batch(
    engine: &Engine,
    batch: &[Item],
    threads: usize,
    max_line_bytes: usize,
) -> Vec<Response> {
    // Queue-depth and in-flight-bytes gauges are observability only:
    // written around each solve, read by the scrape endpoint, never by
    // the solving path.
    let depth = &engine.metrics().queue_depth;
    let inflight = &engine.metrics().inflight_bytes;
    depth.set(i64::try_from(batch.len()).unwrap_or(i64::MAX));
    let answer = |item: &Item| {
        let bytes = match item {
            Item::Line(line) => i64::try_from(line.len()).unwrap_or(i64::MAX),
            Item::Oversized | Item::BadUtf8 => 0,
        };
        inflight.add(bytes);
        let response = match item {
            Item::Line(line) => engine.solve_line(line),
            Item::Oversized => Response::error(
                "null",
                RequestError::oversized(format!("request line exceeds {max_line_bytes} bytes")),
            ),
            Item::BadUtf8 => Response::error(
                "null",
                RequestError::parse("request line is not valid UTF-8"),
            ),
        };
        inflight.add(-bytes);
        depth.add(-1);
        response
    };
    let workers = lll_local::effective_workers(threads, batch.len());
    if workers <= 1 {
        return batch.iter().map(answer).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Response>>> = batch.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= batch.len() {
                    break;
                }
                let response = answer(&batch[i]);
                *slots[i].lock().expect("slot lock poisoned") = Some(response);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock poisoned")
                .expect("every slot below the cursor is filled")
        })
        .collect()
}
