//! Request parsing and validation.
//!
//! One request per line, as a JSON object. Two payload forms:
//!
//! ```json
//! {"id":"r1","dimacs":"p cnf 2 2\n1 2 0\n-1 2 0\n"}
//! {"id":7,"instance":{"variables":[{"affects":[0,1],"k":2}],
//!                     "events":[{"vars":[0],"values":[0]}]}}
//! ```
//!
//! plus the control form `{"id":...,"shutdown":true}`. Optional fields
//! on solve requests: `schedule_seed` (defaults to the engine's),
//! `obs` (path to tee a per-request JSONL recorder stream), and
//! `timeout_ms` (opt-in wall-clock deadline — see the engine docs for
//! why it is off by default). Unknown fields are rejected so typos
//! surface as typed errors instead of silently-ignored options.

use lll_core::{Instance, InstanceBuilder};
use serde::Value;

use crate::error::RequestError;

/// Wire schema version, reported in response provenance.
pub const SCHEMA_VERSION: u32 = 1;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Solve an instance.
    Solve(SolveRequest),
    /// Drain in-flight work, acknowledge, and stop serving.
    Shutdown {
        /// The request id, as JSON text.
        id: String,
    },
}

/// A validated solve request.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// The request id, echoed verbatim in the response, as JSON text
    /// (`"null"` when absent). Restricted to null/string/integer.
    pub id: String,
    /// What to solve.
    pub payload: Payload,
    /// Schedule-coloring seed; engine default when absent.
    pub schedule_seed: Option<u64>,
    /// Path to tee this request's recorder stream to, as JSONL.
    pub obs: Option<String>,
    /// Opt-in wall-clock deadline in milliseconds.
    pub timeout_ms: Option<u64>,
}

/// The instance payload of a solve request.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A DIMACS CNF formula (solved via the SAT front end).
    Dimacs(String),
    /// A general LLL instance in the JSON schema.
    Instance(JsonInstance),
}

/// A general LLL instance: variables with uniform domains, events as
/// conjunctions of `variable == value` literals.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonInstance {
    /// The variables, in index order.
    pub variables: Vec<JsonVariable>,
    /// The events, in index order (event count = `events.len()`).
    pub events: Vec<JsonEvent>,
}

/// One variable of a [`JsonInstance`].
#[derive(Debug, Clone, PartialEq)]
pub struct JsonVariable {
    /// Indices of the events this variable affects.
    pub affects: Vec<usize>,
    /// Uniform domain size (`k ≥ 2`).
    pub k: usize,
}

/// One event of a [`JsonInstance`]: occurs iff every listed variable
/// takes its listed value.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonEvent {
    /// Variable indices tested by this event.
    pub vars: Vec<usize>,
    /// Required values, aligned with `vars`.
    pub values: Vec<usize>,
}

/// Largest uniform domain a request may declare; a guard against
/// accidental `k`-bombs, far above anything the criterion admits.
pub const MAX_DOMAIN: usize = 1 << 16;

fn as_usize(v: &Value, what: &str) -> Result<usize, RequestError> {
    match v {
        Value::U64(n) => usize::try_from(*n)
            .map_err(|_| RequestError::parse(format!("{what} does not fit in usize"))),
        other => Err(RequestError::parse(format!(
            "{what} must be a non-negative integer, found {}",
            other.kind()
        ))),
    }
}

fn as_u64(v: &Value, what: &str) -> Result<u64, RequestError> {
    match v {
        Value::U64(n) => Ok(*n),
        other => Err(RequestError::parse(format!(
            "{what} must be a non-negative integer, found {}",
            other.kind()
        ))),
    }
}

fn as_usize_array(v: &Value, what: &str) -> Result<Vec<usize>, RequestError> {
    match v {
        Value::Array(items) => items
            .iter()
            .enumerate()
            .map(|(i, item)| as_usize(item, &format!("{what}[{i}]")))
            .collect(),
        other => Err(RequestError::parse(format!(
            "{what} must be an array, found {}",
            other.kind()
        ))),
    }
}

impl JsonInstance {
    /// Parses the `instance` payload object (shape only; semantic
    /// checks live in [`JsonInstance::validate`]).
    ///
    /// # Errors
    ///
    /// [`crate::ErrorKind::Parse`] on any shape violation.
    pub fn from_value(v: &Value) -> Result<JsonInstance, RequestError> {
        let Value::Object(fields) = v else {
            return Err(RequestError::parse(format!(
                "instance must be an object, found {}",
                v.kind()
            )));
        };
        let mut variables = None;
        let mut events = None;
        for (key, val) in fields {
            match key.as_str() {
                "variables" => {
                    let Value::Array(items) = val else {
                        return Err(RequestError::parse("instance.variables must be an array"));
                    };
                    let mut out = Vec::with_capacity(items.len());
                    for (i, item) in items.iter().enumerate() {
                        out.push(JsonVariable::from_value(item, i)?);
                    }
                    variables = Some(out);
                }
                "events" => {
                    let Value::Array(items) = val else {
                        return Err(RequestError::parse("instance.events must be an array"));
                    };
                    let mut out = Vec::with_capacity(items.len());
                    for (i, item) in items.iter().enumerate() {
                        out.push(JsonEvent::from_value(item, i)?);
                    }
                    events = Some(out);
                }
                other => {
                    return Err(RequestError::parse(format!(
                        "unknown instance field {other:?}"
                    )))
                }
            }
        }
        let variables =
            variables.ok_or_else(|| RequestError::parse("instance is missing \"variables\""))?;
        let events = events.ok_or_else(|| RequestError::parse("instance is missing \"events\""))?;
        Ok(JsonInstance { variables, events })
    }

    /// Semantic validation: every index in range, every event affected
    /// by at least one variable, and every variable an event tests
    /// listed among that event's affecting variables (otherwise the
    /// dependency graph would not describe the predicate).
    ///
    /// # Errors
    ///
    /// [`crate::ErrorKind::Invalid`] with the offending index.
    pub fn validate(&self) -> Result<(), RequestError> {
        let num_events = self.events.len();
        let mut affected = vec![false; num_events];
        for (x, var) in self.variables.iter().enumerate() {
            if var.affects.is_empty() {
                return Err(RequestError::invalid(format!(
                    "variable {x} affects no event"
                )));
            }
            if !(2..=MAX_DOMAIN).contains(&var.k) {
                return Err(RequestError::invalid(format!(
                    "variable {x} has domain size {}, need 2..={MAX_DOMAIN}",
                    var.k
                )));
            }
            let mut seen = var.affects.clone();
            seen.sort_unstable();
            if seen.windows(2).any(|w| w[0] == w[1]) {
                return Err(RequestError::invalid(format!(
                    "variable {x} lists an event twice in affects"
                )));
            }
            for &e in &var.affects {
                if e >= num_events {
                    return Err(RequestError::invalid(format!(
                        "variable {x} affects event {e}, but there are only {num_events} events"
                    )));
                }
                affected[e] = true;
            }
        }
        for (e, ok) in affected.iter().enumerate() {
            if !ok {
                return Err(RequestError::invalid(format!(
                    "event {e} is affected by no variable"
                )));
            }
        }
        for (e, ev) in self.events.iter().enumerate() {
            if ev.vars.len() != ev.values.len() {
                return Err(RequestError::invalid(format!(
                    "event {e} has {} vars but {} values",
                    ev.vars.len(),
                    ev.values.len()
                )));
            }
            if ev.vars.is_empty() {
                return Err(RequestError::invalid(format!(
                    "event {e} tests no variable"
                )));
            }
            let mut seen = ev.vars.clone();
            seen.sort_unstable();
            if seen.windows(2).any(|w| w[0] == w[1]) {
                return Err(RequestError::invalid(format!(
                    "event {e} tests a variable twice"
                )));
            }
            for (&x, &val) in ev.vars.iter().zip(&ev.values) {
                let Some(var) = self.variables.get(x) else {
                    return Err(RequestError::invalid(format!(
                        "event {e} tests variable {x}, but there are only {} variables",
                        self.variables.len()
                    )));
                };
                if val >= var.k {
                    return Err(RequestError::invalid(format!(
                        "event {e} requires variable {x} = {val}, outside its domain 0..{}",
                        var.k
                    )));
                }
                if !var.affects.contains(&e) {
                    return Err(RequestError::invalid(format!(
                        "event {e} tests variable {x}, which does not list it in affects"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Builds the typed [`Instance`] (validates first).
    ///
    /// # Errors
    ///
    /// [`crate::ErrorKind::Invalid`] from [`JsonInstance::validate`] or
    /// the instance builder.
    pub fn build_instance(&self) -> Result<Instance<f64>, RequestError> {
        self.validate()?;
        let mut b = InstanceBuilder::<f64>::new(self.events.len());
        for var in &self.variables {
            b.add_uniform_variable(&var.affects, var.k);
        }
        for (e, ev) in self.events.iter().enumerate() {
            let lits: Vec<(usize, usize)> = ev
                .vars
                .iter()
                .copied()
                .zip(ev.values.iter().copied())
                .collect();
            b.set_event_predicate(e, move |vals| lits.iter().all(|&(x, v)| vals[x] == v));
        }
        b.build()
            .map_err(|e| RequestError::invalid(format!("instance build: {e}")))
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "variables".to_owned(),
                Value::Array(
                    self.variables
                        .iter()
                        .map(|v| {
                            Value::Object(vec![
                                (
                                    "affects".to_owned(),
                                    Value::Array(
                                        v.affects.iter().map(|&e| Value::U64(e as u64)).collect(),
                                    ),
                                ),
                                ("k".to_owned(), Value::U64(v.k as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "events".to_owned(),
                Value::Array(
                    self.events
                        .iter()
                        .map(|e| {
                            Value::Object(vec![
                                (
                                    "vars".to_owned(),
                                    Value::Array(
                                        e.vars.iter().map(|&x| Value::U64(x as u64)).collect(),
                                    ),
                                ),
                                (
                                    "values".to_owned(),
                                    Value::Array(
                                        e.values.iter().map(|&v| Value::U64(v as u64)).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl JsonVariable {
    fn from_value(v: &Value, index: usize) -> Result<JsonVariable, RequestError> {
        let Value::Object(fields) = v else {
            return Err(RequestError::parse(format!(
                "variable {index} must be an object, found {}",
                v.kind()
            )));
        };
        let mut affects = None;
        let mut k = None;
        for (key, val) in fields {
            match key.as_str() {
                "affects" => {
                    affects = Some(as_usize_array(val, &format!("variable {index} affects"))?);
                }
                "k" => k = Some(as_usize(val, &format!("variable {index} k"))?),
                other => {
                    return Err(RequestError::parse(format!(
                        "unknown field {other:?} on variable {index}"
                    )))
                }
            }
        }
        Ok(JsonVariable {
            affects: affects.ok_or_else(|| {
                RequestError::parse(format!("variable {index} is missing \"affects\""))
            })?,
            k: k.ok_or_else(|| RequestError::parse(format!("variable {index} is missing \"k\"")))?,
        })
    }
}

impl JsonEvent {
    fn from_value(v: &Value, index: usize) -> Result<JsonEvent, RequestError> {
        let Value::Object(fields) = v else {
            return Err(RequestError::parse(format!(
                "event {index} must be an object, found {}",
                v.kind()
            )));
        };
        let mut vars = None;
        let mut values = None;
        for (key, val) in fields {
            match key.as_str() {
                "vars" => vars = Some(as_usize_array(val, &format!("event {index} vars"))?),
                "values" => {
                    values = Some(as_usize_array(val, &format!("event {index} values"))?);
                }
                other => {
                    return Err(RequestError::parse(format!(
                        "unknown field {other:?} on event {index}"
                    )))
                }
            }
        }
        Ok(JsonEvent {
            vars: vars
                .ok_or_else(|| RequestError::parse(format!("event {index} is missing \"vars\"")))?,
            values: values.ok_or_else(|| {
                RequestError::parse(format!("event {index} is missing \"values\""))
            })?,
        })
    }
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorKind::Parse`] for anything that is not a
    /// well-formed request object.
    pub fn parse(line: &str) -> Result<Request, RequestError> {
        let value: Value = serde_json::from_str(line)
            .map_err(|e| RequestError::parse(format!("request is not valid JSON: {e}")))?;
        let Value::Object(fields) = &value else {
            return Err(RequestError::parse(format!(
                "request must be a JSON object, found {}",
                value.kind()
            )));
        };
        let mut id = "null".to_owned();
        let mut dimacs = None;
        let mut instance = None;
        let mut shutdown = false;
        let mut schedule_seed = None;
        let mut obs = None;
        let mut timeout_ms = None;
        for (key, val) in fields {
            match key.as_str() {
                "id" => {
                    match val {
                        Value::Null | Value::String(_) | Value::U64(_) | Value::I64(_) => {}
                        other => {
                            return Err(RequestError::parse(format!(
                                "id must be null, a string, or an integer, found {}",
                                other.kind()
                            )))
                        }
                    }
                    id = serde_json::to_string(val)
                        .map_err(|e| RequestError::parse(format!("id: {e}")))?;
                }
                "dimacs" => match val {
                    Value::String(s) => dimacs = Some(s.clone()),
                    other => {
                        return Err(RequestError::parse(format!(
                            "dimacs must be a string, found {}",
                            other.kind()
                        )))
                    }
                },
                "instance" => instance = Some(JsonInstance::from_value(val)?),
                "shutdown" => match val {
                    Value::Bool(true) => shutdown = true,
                    Value::Bool(false) => {}
                    other => {
                        return Err(RequestError::parse(format!(
                            "shutdown must be a boolean, found {}",
                            other.kind()
                        )))
                    }
                },
                "schedule_seed" => schedule_seed = Some(as_u64(val, "schedule_seed")?),
                "obs" => match val {
                    Value::String(s) => obs = Some(s.clone()),
                    other => {
                        return Err(RequestError::parse(format!(
                            "obs must be a string path, found {}",
                            other.kind()
                        )))
                    }
                },
                "timeout_ms" => timeout_ms = Some(as_u64(val, "timeout_ms")?),
                other => {
                    return Err(RequestError::parse(format!(
                        "unknown request field {other:?}"
                    )))
                }
            }
        }
        if shutdown {
            if dimacs.is_some() || instance.is_some() {
                return Err(RequestError::parse(
                    "a shutdown request cannot carry a payload",
                ));
            }
            return Ok(Request::Shutdown { id });
        }
        let payload = match (dimacs, instance) {
            (Some(d), None) => Payload::Dimacs(d),
            (None, Some(i)) => Payload::Instance(i),
            (None, None) => {
                return Err(RequestError::parse(
                    "request needs exactly one of \"dimacs\" or \"instance\"",
                ))
            }
            (Some(_), Some(_)) => {
                return Err(RequestError::parse(
                    "request carries both \"dimacs\" and \"instance\"",
                ))
            }
        };
        Ok(Request::Solve(SolveRequest {
            id,
            payload,
            schedule_seed,
            obs,
            timeout_ms,
        }))
    }

    /// Canonical JSON text of the request — `parse(to_json(r)) == r`
    /// for every valid request (pinned by the proptest battery).
    pub fn to_json(&self) -> String {
        let id_value = |id: &str| {
            serde_json::from_str::<Value>(id).expect("request ids are stored as JSON text")
        };
        let mut fields = Vec::new();
        match self {
            Request::Shutdown { id } => {
                fields.push(("id".to_owned(), id_value(id)));
                fields.push(("shutdown".to_owned(), Value::Bool(true)));
            }
            Request::Solve(req) => {
                fields.push(("id".to_owned(), id_value(&req.id)));
                match &req.payload {
                    Payload::Dimacs(text) => {
                        fields.push(("dimacs".to_owned(), Value::String(text.clone())));
                    }
                    Payload::Instance(inst) => {
                        fields.push(("instance".to_owned(), inst.to_value()));
                    }
                }
                if let Some(seed) = req.schedule_seed {
                    fields.push(("schedule_seed".to_owned(), Value::U64(seed)));
                }
                if let Some(obs) = &req.obs {
                    fields.push(("obs".to_owned(), Value::String(obs.clone())));
                }
                if let Some(ms) = req.timeout_ms {
                    fields.push(("timeout_ms".to_owned(), Value::U64(ms)));
                }
            }
        }
        serde_json::to_string(&Value::Object(fields)).expect("request values are finite")
    }
}
