//! Telemetry battery: the side-band contract, the LRU cache bound,
//! and the exposition format.
//!
//! The tentpole invariant under test: enabling metrics, scraping them
//! mid-run, bounding the cache — none of it may change a response byte
//! or a teed recorder stream, at any worker count. Metrics are *about*
//! the deterministic path, never *in* it (DESIGN.md §3.11).

use std::sync::atomic::{AtomicBool, Ordering};

use lll_serve::{serve, Engine, EngineConfig, Response, ServeConfig};

fn scratch(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("lll-serve-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name).to_str().expect("utf-8 path").to_owned()
}

/// A DIMACS request over the ring formula; `n` selects the graph shape
/// (so distinct `n` = distinct fingerprint = distinct cache entry).
fn dimacs_request(id: &str, n: usize, obs: Option<&str>) -> String {
    let cnf = lll_apps::sat::ring_formula(n, 5, 7);
    let mut fields = vec![
        ("id".to_owned(), serde::Value::String(id.to_owned())),
        ("dimacs".to_owned(), serde::Value::String(cnf.to_string())),
    ];
    if let Some(path) = obs {
        fields.push(("obs".to_owned(), serde::Value::String(path.to_owned())));
    }
    serde_json::to_string(&serde::Value::Object(fields)).unwrap()
}

fn ok_json(engine: &Engine, request: &str) -> String {
    match engine.solve_line(request) {
        r @ Response::Ok(_) => r.to_json(),
        other => panic!("expected ok response, got {other:?}"),
    }
}

/// The eviction regression: a capacity-1 cache cycling through three
/// shapes must evict and recompute — and every recomputed response
/// must be byte-identical to an unbounded engine's, because a schedule
/// is a pure function of `(graph, seed)`. Eviction may cost work,
/// never correctness.
#[test]
fn bounded_cache_evicts_and_recomputes_identically() {
    let bounded = Engine::new(EngineConfig {
        cache_capacity: Some(1),
        ..EngineConfig::default()
    });
    let unbounded = Engine::new(EngineConfig::default());
    let shapes = [16usize, 20, 24];
    // Two full passes: pass 2 re-solves shapes the LRU has evicted.
    for pass in 0..2 {
        for &n in &shapes {
            let req = dimacs_request(&format!("e{n}"), n, None);
            assert_eq!(
                ok_json(&bounded, &req),
                ok_json(&unbounded, &req),
                "pass {pass} shape {n}: eviction changed response bytes"
            );
            assert_eq!(bounded.cached_schedules(), 1, "capacity bound violated");
        }
    }
    let stats = bounded.stats();
    assert_eq!(stats.cache_hits, 0, "capacity 1 cannot hit across 3 shapes");
    assert_eq!(stats.cache_misses, 6, "every solve recomputed");
    assert_eq!(
        stats.cache_evictions, 5,
        "each insert past the first evicts"
    );
    // The unbounded engine hit on the second pass and never evicted.
    assert_eq!(unbounded.stats().cache_hits, 3);
    assert_eq!(unbounded.stats().cache_evictions, 0);
}

#[test]
fn capacity_zero_caches_nothing_but_still_answers() {
    let engine = Engine::new(EngineConfig {
        cache_capacity: Some(0),
        ..EngineConfig::default()
    });
    let req = dimacs_request("z", 16, None);
    let first = ok_json(&engine, &req);
    let second = ok_json(&engine, &req);
    assert_eq!(first, second);
    assert_eq!(engine.cached_schedules(), 0);
    assert_eq!(engine.stats().cache_misses, 2);
    assert_eq!(engine.stats().cache_evictions, 0);
}

/// Validates one rendered exposition against the text-format grammar:
/// comment lines are `# HELP` / `# TYPE`, sample lines are
/// `name[{labels}] value` with an integer value, and every `# TYPE`
/// names a type the format defines.
fn assert_well_formed_exposition(text: &str) {
    assert!(!text.is_empty(), "empty exposition");
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let ty = rest.rsplit(' ').next().unwrap();
            assert!(
                ["counter", "gauge", "summary", "histogram", "untyped"].contains(&ty),
                "bad TYPE: {line}"
            );
            continue;
        }
        if line.starts_with('#') {
            assert!(line.starts_with("# HELP "), "bad comment line: {line}");
            continue;
        }
        let (name_part, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without value: {line}");
        });
        assert!(!name_part.is_empty(), "empty metric name: {line}");
        let bare = name_part.split('{').next().unwrap();
        assert!(
            bare.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name {bare:?} in {line}"
        );
        assert!(value.parse::<i64>().is_ok(), "non-integer sample: {line}");
    }
}

#[test]
fn exposition_is_well_formed_and_complete() {
    let engine = Engine::new(EngineConfig {
        cache_capacity: Some(2),
        ..EngineConfig::default()
    });
    engine.solve_line(&dimacs_request("m0", 16, None));
    engine.solve_line(&dimacs_request("m1", 20, None));
    engine.solve_line(r#"{"id":"bad","dimacs":"p cnf"}"#);
    let text = engine.render_metrics();
    assert_well_formed_exposition(&text);
    // Every series exists regardless of traffic; the counters the
    // traffic did touch carry the expected totals.
    for needle in [
        "lll_serve_requests_total 3\n",
        "lll_serve_ok_total 2\n",
        "lll_serve_errors_total{kind=\"parse\"} 1\n",
        "lll_serve_errors_total{kind=\"timeout\"} 0\n",
        "lll_serve_errors_total{kind=\"internal\"} 0\n",
        "lll_serve_cache_misses_total 2\n",
        "lll_serve_cache_entries 2\n",
        "lll_serve_latency_micros_count 3\n",
        "lll_serve_sweep_micros_count 2\n",
        "lll_serve_shutdowns_total 0\n",
        "lll_engine_slab_bytes",
        "lll_engine_slab_slots",
        "lll_engine_slab_shards",
        "lll_engine_slab_max_shard_slots",
        "lll_process_peak_rss_bytes",
        "lll_numeric_tier_promotes_total",
        "lll_numeric_tier_demotes_total",
    ] {
        assert!(
            text.contains(needle),
            "exposition is missing {needle:?}:\n{text}"
        );
    }
    // Memory gauges are live: a warm cache occupies bytes.
    let bytes_line = text
        .lines()
        .find(|l| l.starts_with("lll_serve_cache_bytes "))
        .expect("cache bytes gauge");
    let bytes: i64 = bytes_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(bytes > 0, "cached schedules occupy no bytes? {bytes_line}");
    // Where procfs exists, the peak-RSS gauge reads the allocator truth.
    #[cfg(target_os = "linux")]
    {
        let rss_line = text
            .lines()
            .find(|l| l.starts_with("lll_process_peak_rss_bytes "))
            .expect("peak RSS gauge");
        let rss: i64 = rss_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(rss > 0, "implausible peak RSS: {rss_line}");
    }
}

/// Per-request attribution: every solve feeds exactly one latency and
/// one sweep sample, and every line of its teed stream carries the
/// request id as its `req` correlation field.
#[test]
fn sweep_spans_and_request_tags_line_up() {
    let engine = Engine::new(EngineConfig::default());
    for (i, n) in [16usize, 20, 24].iter().enumerate() {
        let obs = scratch(&format!("tags-{i}.jsonl"));
        let req = dimacs_request(&format!("tag{i}"), *n, Some(&obs));
        ok_json(&engine, &req);
        let stream = std::fs::read_to_string(&obs).expect("obs stream");
        assert!(!stream.is_empty());
        for line in stream.lines() {
            assert!(
                line.contains(&format!("\"req\":\"tag{i}\"")),
                "untagged line in request tag{i}'s stream: {line}"
            );
        }
    }
    assert_eq!(engine.metrics().requests.value(), 3);
    assert_eq!(engine.metrics().ok.value(), 3);
    assert_eq!(engine.metrics().latency_micros.merged().count(), 3);
    assert_eq!(engine.metrics().sweep_micros.merged().count(), 3);
    assert!(engine.metrics().class_micros.merged().count() >= 3);
}

/// The tentpole differential: the same request stream served at 1, 2,
/// and 8 workers, with a scraper hammering the metrics renderer the
/// whole time — stdout bytes and every teed stream must match the
/// quiet 1-worker baseline exactly.
#[test]
fn scraping_cannot_perturb_responses_or_obs_streams() {
    let mut input = String::new();
    for i in 0..8 {
        let obs = scratch(&format!("scrape-base-{i}.jsonl"));
        input.push_str(&dimacs_request(
            &format!("s{i}"),
            16 + 2 * (i % 3),
            Some(&obs),
        ));
        input.push('\n');
    }
    // Quiet baseline: one worker, no scrapes.
    let baseline_engine = Engine::new(EngineConfig::default());
    let mut baseline_out = Vec::new();
    serve(
        &baseline_engine,
        input.as_bytes(),
        &mut baseline_out,
        &ServeConfig {
            threads: 1,
            ..ServeConfig::default()
        },
    )
    .expect("baseline serve");
    let baseline_streams: Vec<String> = (0..8)
        .map(|i| std::fs::read_to_string(scratch(&format!("scrape-base-{i}.jsonl"))).unwrap())
        .collect();

    for threads in [1usize, 2, 8] {
        let mut run_input = String::new();
        for i in 0..8 {
            let obs = scratch(&format!("scrape-t{threads}-{i}.jsonl"));
            run_input.push_str(&dimacs_request(
                &format!("s{i}"),
                16 + 2 * (i % 3),
                Some(&obs),
            ));
            run_input.push('\n');
        }
        let engine = Engine::new(EngineConfig::default());
        let stop = AtomicBool::new(false);
        let mut out = Vec::new();
        std::thread::scope(|s| {
            let scraper_engine = &engine;
            let scraper_stop = &stop;
            s.spawn(move || {
                let mut scrapes = 0u64;
                while !scraper_stop.load(Ordering::Relaxed) {
                    let text = scraper_engine.render_metrics();
                    assert!(!text.is_empty());
                    scraper_engine.metrics().registry().rotate_windows();
                    scrapes += 1;
                }
                assert!(scrapes > 0);
            });
            serve(
                &engine,
                run_input.as_bytes(),
                &mut out,
                &ServeConfig {
                    threads,
                    ..ServeConfig::default()
                },
            )
            .expect("scraped serve");
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(
            String::from_utf8(out).unwrap(),
            String::from_utf8(baseline_out.clone()).unwrap(),
            "stdout diverged from quiet baseline at {threads} workers"
        );
        for (i, baseline_stream) in baseline_streams.iter().enumerate() {
            let stream =
                std::fs::read_to_string(scratch(&format!("scrape-t{threads}-{i}.jsonl"))).unwrap();
            assert_eq!(
                &stream, baseline_stream,
                "obs stream {i} diverged under scraping at {threads} workers"
            );
        }
    }
}
