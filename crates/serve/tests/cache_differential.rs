//! Cache-correctness differential battery.
//!
//! For each graph family: solve a request cold (cache disabled), then
//! again through a warmed fingerprint cache, and assert the response
//! bytes, assignments, step bills, and teed recorder streams are all
//! byte-identical. A cache hit must be invisible in every observable
//! channel; divergences are triaged with `obs::diff::first_divergence`
//! so a broken contract names the first divergent event instead of
//! dumping blobs.

use lll_serve::{Engine, EngineConfig, Response};

fn scratch(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("lll-serve-cachediff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name).to_str().expect("utf-8 path").to_owned()
}

/// A rank-3 DIMACS request (ring formula: d = 4, shared vars rank 3).
fn dimacs_request(id: &str, polarity_seed: u64, obs: Option<&str>) -> String {
    let cnf = lll_apps::sat::ring_formula(24, 5, polarity_seed);
    let mut fields = vec![
        ("id".to_owned(), serde::Value::String(id.to_owned())),
        ("dimacs".to_owned(), serde::Value::String(cnf.to_string())),
    ];
    if let Some(path) = obs {
        fields.push(("obs".to_owned(), serde::Value::String(path.to_owned())));
    }
    serde_json::to_string(&serde::Value::Object(fields)).unwrap()
}

/// A rank-2 JSON-instance request (ring of binary events).
fn ring_instance_request(id: &str, n: usize, obs: Option<&str>) -> String {
    let variables: Vec<serde::Value> = (0..n)
        .map(|i| {
            serde::Value::Object(vec![
                (
                    "affects".to_owned(),
                    serde::Value::Array(vec![
                        serde::Value::U64(i as u64),
                        serde::Value::U64(((i + 1) % n) as u64),
                    ]),
                ),
                ("k".to_owned(), serde::Value::U64(3)),
            ])
        })
        .collect();
    let events: Vec<serde::Value> = (0..n)
        .map(|i| {
            serde::Value::Object(vec![
                (
                    "vars".to_owned(),
                    serde::Value::Array(vec![
                        serde::Value::U64(((i + n - 1) % n) as u64),
                        serde::Value::U64(i as u64),
                    ]),
                ),
                (
                    "values".to_owned(),
                    serde::Value::Array(vec![serde::Value::U64(0), serde::Value::U64(0)]),
                ),
            ])
        })
        .collect();
    let instance = serde::Value::Object(vec![
        ("variables".to_owned(), serde::Value::Array(variables)),
        ("events".to_owned(), serde::Value::Array(events)),
    ]);
    let mut fields = vec![
        ("id".to_owned(), serde::Value::String(id.to_owned())),
        ("instance".to_owned(), instance),
    ];
    if let Some(path) = obs {
        fields.push(("obs".to_owned(), serde::Value::String(path.to_owned())));
    }
    serde_json::to_string(&serde::Value::Object(fields)).unwrap()
}

fn triage(name: &str, cold: &str, warm: &str) -> String {
    let cold_lines = cold.lines().map(str::to_owned).collect::<Vec<_>>();
    let warm_lines = warm.lines().map(str::to_owned).collect::<Vec<_>>();
    match lll_obs::diff::first_divergence(cold_lines.into_iter(), warm_lines.into_iter(), 2) {
        Some(d) => format!("{name}: first divergence: {d:?}"),
        None => format!("{name}: streams differ only in framing"),
    }
}

fn assert_cold_equals_warm(name: &str, requests: &[String]) {
    let cold_engine = Engine::new(EngineConfig {
        cache: false,
        ..EngineConfig::default()
    });
    let warm_engine = Engine::new(EngineConfig::default());

    // Prime the warm cache with every request shape (responses discarded).
    for (i, req) in requests.iter().enumerate() {
        let prime = req.replace("OBS_PATH", &scratch(&format!("{name}-{i}-prime.jsonl")));
        warm_engine.solve_line(&prime);
    }
    assert!(
        warm_engine.cached_schedules() >= 1,
        "{name}: priming populated no schedule"
    );

    for (i, req) in requests.iter().enumerate() {
        let cold_obs = scratch(&format!("{name}-{i}-cold.jsonl"));
        let warm_obs = scratch(&format!("{name}-{i}-warm.jsonl"));
        let cold_req = req.replace("OBS_PATH", &cold_obs);
        let warm_req = req.replace("OBS_PATH", &warm_obs);

        let cold = cold_engine.solve_line(&cold_req);
        let warm = warm_engine.solve_line(&warm_req);

        // Response objects and wire bytes (modulo the obs path, which
        // is an input, not an output — it never appears in responses).
        match (&cold, &warm) {
            (Response::Ok(c), Response::Ok(w)) => {
                assert_eq!(c.assignment, w.assignment, "{name} req {i}: assignment");
                assert_eq!(c.steps, w.steps, "{name} req {i}: steps");
                assert_eq!(c.rounds, w.rounds, "{name} req {i}: rounds");
                assert_eq!(c.fingerprint, w.fingerprint, "{name} req {i}");
                assert_eq!(c.provenance, w.provenance, "{name} req {i}");
            }
            other => panic!("{name} req {i}: non-ok responses: {other:?}"),
        }
        let cold_json = cold.to_json().replace(&cold_obs, "OBS_PATH");
        let warm_json = warm.to_json().replace(&warm_obs, "OBS_PATH");
        assert_eq!(cold_json, warm_json, "{name} req {i}: response bytes");

        // Teed recorder streams, byte for byte.
        let cold_stream = std::fs::read_to_string(&cold_obs).expect("cold obs stream");
        let warm_stream = std::fs::read_to_string(&warm_obs).expect("warm obs stream");
        assert!(
            !cold_stream.is_empty(),
            "{name} req {i}: cold stream is empty"
        );
        assert_eq!(
            cold_stream,
            warm_stream,
            "{name} req {i}: obs streams diverge — {}",
            triage(name, &cold_stream, &warm_stream)
        );
    }

    // The warm engine really was warm: after priming, every solve hit.
    assert_eq!(
        warm_engine.stats().cache_misses as usize,
        warm_engine.cached_schedules(),
        "{name}: warm engine recomputed a schedule after priming"
    );
}

#[test]
fn rank3_dimacs_cold_equals_warm() {
    // Same graph shape, five different polarity patterns.
    let requests: Vec<String> = (0..5)
        .map(|seed| dimacs_request(&format!("d{seed}"), seed, Some("OBS_PATH")))
        .collect();
    assert_cold_equals_warm("rank3-dimacs", &requests);
}

#[test]
fn rank2_instance_cold_equals_warm() {
    let requests: Vec<String> = [16usize, 48]
        .iter()
        .map(|&n| ring_instance_request(&format!("r{n}"), n, Some("OBS_PATH")))
        .collect();
    assert_cold_equals_warm("rank2-ring", &requests);
}

#[test]
fn hit_equals_miss_within_one_engine() {
    let engine = Engine::new(EngineConfig::default());
    let a = scratch("within-a.jsonl");
    let b = scratch("within-b.jsonl");
    let first = engine.solve_line(&dimacs_request("x", 9, Some(&a)));
    let misses = engine.stats().cache_misses;
    let second = engine.solve_line(&dimacs_request("x", 9, Some(&b)));
    assert_eq!(engine.stats().cache_misses, misses, "second solve missed");
    assert!(engine.stats().cache_hits >= 1);
    assert_eq!(first.to_json(), second.to_json());
    assert_eq!(
        std::fs::read_to_string(&a).unwrap(),
        std::fs::read_to_string(&b).unwrap(),
        "hit and miss recorder streams diverge"
    );
}

#[test]
fn different_seeds_do_not_share_schedules() {
    let engine = Engine::new(EngineConfig::default());
    let base = dimacs_request("s", 3, None);
    let with_seed = |seed: u64| {
        base.replace(
            "\"dimacs\"",
            &format!("\"schedule_seed\":{seed},\"dimacs\""),
        )
    };
    engine.solve_line(&with_seed(1));
    engine.solve_line(&with_seed(2));
    assert_eq!(engine.cached_schedules(), 2, "seeds must not collide");
    engine.solve_line(&with_seed(1));
    assert_eq!(engine.cached_schedules(), 2);
    assert_eq!(engine.stats().cache_hits, 1);
}
