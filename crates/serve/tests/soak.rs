//! Concurrency soak: one stream of interleaved requests, solved at
//! worker counts t ∈ {1, 2, 8} (overridable via `LLL_DIFF_THREADS`,
//! matching the repo's other differential batteries), must produce a
//! byte-identical response stream — with the cache warm, cold, and
//! disabled.

use lll_serve::{serve, Engine, EngineConfig, ServeConfig};

fn thread_counts() -> Vec<usize> {
    match std::env::var("LLL_DIFF_THREADS") {
        Ok(spec) => spec
            .split(',')
            .map(|t| t.trim().parse().expect("LLL_DIFF_THREADS: bad count"))
            .collect(),
        Err(_) => vec![1, 2, 8],
    }
}

/// ~40 interleaved requests: rank-3 CNFs in three shapes, rank-2 JSON
/// instances, parse errors, invalid instances, regime refusals.
fn request_stream() -> String {
    let mut input = String::new();
    for i in 0..8u64 {
        let (m, w) = [(12, 5), (20, 5), (16, 6)][(i % 3) as usize];
        let cnf = lll_apps::sat::ring_formula(m, w, i);
        input.push_str(&format!(
            "{{\"id\":\"cnf-{i}\",\"dimacs\":{}}}\n",
            serde_json::to_string(&cnf.to_string()).unwrap()
        ));
        if i % 2 == 0 {
            let n = 8 + 4 * i as usize;
            let vars: Vec<String> = (0..n)
                .map(|j| format!("{{\"affects\":[{},{}],\"k\":3}}", j, (j + 1) % n))
                .collect();
            let events: Vec<String> = (0..n)
                .map(|j| format!("{{\"vars\":[{},{}],\"values\":[0,0]}}", (j + n - 1) % n, j))
                .collect();
            input.push_str(&format!(
                "{{\"id\":\"ring-{i}\",\"instance\":{{\"variables\":[{}],\"events\":[{}]}}}}\n",
                vars.join(","),
                events.join(",")
            ));
        }
        match i % 4 {
            0 => input.push_str("definitely not json\n"),
            1 => input.push_str("{\"id\":\"bad\",\"instance\":{\"variables\":[],\"events\":[{\"vars\":[],\"values\":[]}]}}\n"),
            2 => input.push_str("{\"id\":\"edge\",\"dimacs\":\"p cnf 1 2\\n1 0\\n-1 0\\n\"}\n"),
            _ => input.push_str("{\"id\":\"empty\",\"dimacs\":\"\"}\n"),
        }
    }
    input
}

fn run_stream(input: &str, threads: usize, cache: bool, batch: usize) -> Vec<u8> {
    let engine = Engine::new(EngineConfig {
        cache,
        ..EngineConfig::default()
    });
    let mut out = Vec::new();
    serve(
        &engine,
        input.as_bytes(),
        &mut out,
        &ServeConfig {
            batch,
            threads,
            max_line_bytes: 1 << 20,
        },
    )
    .expect("in-memory transport cannot fail");
    out
}

#[test]
fn response_stream_is_identical_at_every_worker_count() {
    let input = request_stream();
    let base = run_stream(&input, 1, true, 8);
    assert!(!base.is_empty());
    let expected_lines = input.lines().filter(|l| !l.trim().is_empty()).count();
    assert_eq!(
        base.iter().filter(|&&b| b == b'\n').count(),
        expected_lines,
        "one response per request"
    );
    for t in thread_counts() {
        for batch in [1usize, 8, 64] {
            let got = run_stream(&input, t, true, batch);
            assert_eq!(
                got, base,
                "response stream diverged at {t} workers, batch {batch}"
            );
        }
        // Cache off: same bytes, colder schedule path.
        let cold = run_stream(&input, t, false, 8);
        assert_eq!(cold, base, "cold stream diverged at {t} workers");
    }
}

#[test]
fn soak_honors_thread_override() {
    // With an explicit single-thread override the battery must not
    // spawn wider pools; observable as "it still passes" — the
    // override plumbing itself is what this pins.
    std::env::set_var("LLL_DIFF_THREADS", "1, 2");
    assert_eq!(thread_counts(), vec![1, 2]);
    std::env::remove_var("LLL_DIFF_THREADS");
    assert_eq!(thread_counts(), vec![1, 2, 8]);
}
