//! End-to-end protocol test: drives the `lll-serve` binary over a
//! pipe with a batch of mixed valid / invalid / oversized requests and
//! pins the per-request responses, error payloads, and exit codes.
//!
//! Response lines are pinned byte-for-byte where the payload is small
//! enough to read — the determinism contract says these bytes are a
//! pure function of the request and the engine configuration, so this
//! test doubles as a canary for accidental nondeterminism (thread
//! counts, cache state, or timing leaking into responses).

use std::io::Write;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_lll-serve");

/// Runs the daemon with `args`, writes `input` to stdin, closes it,
/// and returns (stdout lines, exit code).
fn run(args: &[&str], input: &str) -> (Vec<String>, i32) {
    let mut child = Command::new(BIN)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lll-serve");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write requests");
    let out = child.wait_with_output().expect("daemon exit");
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    (
        stdout.lines().map(str::to_owned).collect(),
        out.status.code().expect("no signal"),
    )
}

#[test]
fn mixed_batch_pins_responses_and_exit_code() {
    let input = concat!(
        // Valid rank-2 CNF.
        r#"{"id":"q0","dimacs":"p cnf 2 2\n1 2 0\n-1 2 0\n"}"#,
        "\n",
        // Not JSON at all.
        "not json\n",
        // JSON, but not an object.
        "[1,2,3]\n",
        // Unknown field (typo'd payload key), id still salvaged.
        r#"{"id":"q1","dimcas":"x"}"#,
        "\n",
        // Missing payload.
        r#"{"id":42}"#,
        "\n",
        // Malformed DIMACS.
        r#"{"id":"q2","dimacs":"p cnf 2 1\n1 2"}"#,
        "\n",
        // Semantically invalid instance: event tests a foreign variable.
        r#"{"id":"q3","instance":{"variables":[{"affects":[0],"k":2}],"events":[{"vars":[1],"values":[0]}]}}"#,
        "\n",
        // Out of regime: at-threshold formula (two width-1 clauses
        // sharing the variable: p = 1/2, d = 1, p * 2^d = 1).
        r#"{"id":"q4","dimacs":"p cnf 1 2\n1 0\n-1 0\n"}"#,
        "\n",
        // Forced timeout (opt-in zero deadline).
        r#"{"id":"q5","timeout_ms":0,"dimacs":"p cnf 2 2\n1 2 0\n-1 2 0\n"}"#,
        "\n",
        // Clean shutdown with an id.
        r#"{"id":"bye","shutdown":true}"#,
        "\n",
        // After the shutdown: with --batch 1 the shutdown is always
        // its own batch, so this line is deterministically unread.
        r#"{"id":"late","dimacs":"p cnf 2 2\n1 2 0\n-1 2 0\n"}"#,
        "\n",
    );
    let (lines, code) = run(&["--batch", "1"], input);
    assert_eq!(code, 0, "clean shutdown");

    let expected_q0 = concat!(
        r#"{"id":"q0","status":"ok","assignment":[0,1],"steps":2,"rounds":3,"#,
        r#""coloring_rounds":0,"classes":2,"violated":0,"fingerprint":"0f869412e0fcd667","#,
        r#""provenance":"schema=1 engine=lll-serve/0.1.0 fixer=2 seed=5 nodes=2 edges=1 max_degree=1"}"#
    );
    assert_eq!(lines[0], expected_q0);
    assert!(
        lines[1].starts_with(r#"{"id":null,"status":"error","error":{"kind":"parse","#),
        "line 1: {}",
        lines[1]
    );
    assert!(
        lines[2].starts_with(r#"{"id":null,"status":"error","error":{"kind":"parse","#),
        "line 2: {}",
        lines[2]
    );
    assert_eq!(
        lines[3],
        r#"{"id":"q1","status":"error","error":{"kind":"parse","message":"unknown request field \"dimcas\""}}"#
    );
    assert_eq!(
        lines[4],
        r#"{"id":42,"status":"error","error":{"kind":"parse","message":"request needs exactly one of \"dimacs\" or \"instance\""}}"#
    );
    assert_eq!(
        lines[5],
        r#"{"id":"q2","status":"error","error":{"kind":"parse","message":"DIMACS: bad application input: unterminated final clause"}}"#
    );
    assert_eq!(
        lines[6],
        r#"{"id":"q3","status":"error","error":{"kind":"invalid","message":"event 0 tests variable 1, but there are only 1 variables"}}"#
    );
    assert!(
        lines[7].starts_with(r#"{"id":"q4","status":"error","error":{"kind":"out_of_regime","#),
        "line 7: {}",
        lines[7]
    );
    assert_eq!(
        lines[8],
        r#"{"id":"q5","status":"error","error":{"kind":"timeout","message":"deadline of 0 ms exceeded"}}"#
    );
    assert_eq!(lines[9], r#"{"id":"bye","status":"shutdown"}"#);
    // Nothing after the shutdown acknowledgement… unless the late
    // request rode in the same batch (batch=4 makes it a later batch).
    assert_eq!(lines.len(), 10, "shutdown stopped the stream: {lines:?}");
}

#[test]
fn oversized_lines_are_skipped_and_reported() {
    let big = format!(
        "{{\"id\":\"fat\",\"dimacs\":\"{}\"}}\n",
        "c padding ".repeat(40)
    );
    let input = format!(
        "{big}{}\n",
        r#"{"id":"after","dimacs":"p cnf 2 2\n1 2 0\n-1 2 0\n"}"#
    );
    let (lines, code) = run(&["--max-line-bytes", "128"], &input);
    assert_eq!(code, 0, "EOF after draining is clean");
    assert_eq!(
        lines[0],
        r#"{"id":null,"status":"error","error":{"kind":"oversized","message":"request line exceeds 128 bytes"}}"#
    );
    // The pipeline is not wedged: the next request still solves.
    assert!(
        lines[1].starts_with(r#"{"id":"after","status":"ok","#),
        "line 1: {}",
        lines[1]
    );
    assert_eq!(lines.len(), 2);
}

#[test]
fn oversized_instances_are_refused() {
    let input = concat!(
        r#"{"id":"cap","dimacs":"p cnf 2 2\n1 2 0\n-1 2 0\n"}"#,
        "\n"
    );
    let (lines, code) = run(&["--max-events", "1"], input);
    assert_eq!(code, 0);
    assert_eq!(
        lines[0],
        r#"{"id":"cap","status":"error","error":{"kind":"oversized","message":"2 clauses exceed the limit of 1"}}"#
    );
}

#[test]
fn usage_errors_exit_2() {
    let (_, code) = run(&["--frobnicate"], "");
    assert_eq!(code, 2);
    let out = Command::new(BIN)
        .args(["--threads"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "missing value is a usage error");
}

#[test]
fn help_exits_0_and_documents_exit_codes() {
    let out = Command::new(BIN).arg("--help").output().expect("spawn");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    for needle in ["EXIT CODES", "shutdown", "--no-cache", "--socket"] {
        assert!(text.contains(needle), "help is missing {needle:?}");
    }
}

#[test]
fn eof_without_requests_is_clean() {
    let (lines, code) = run(&[], "");
    assert_eq!(code, 0);
    assert!(lines.is_empty());
}

#[test]
fn responses_identical_at_every_worker_count() {
    // Protocol-level replay of the determinism contract: same input
    // stream, worker counts 1 / 2 / 8, byte-identical stdout.
    let mut input = String::new();
    for i in 0..12 {
        let cnf = lll_apps::sat::ring_formula(16, 5, i);
        input.push_str(&format!(
            "{{\"id\":{i},\"dimacs\":{}}}\n",
            serde_json::to_string(&cnf.to_string()).unwrap()
        ));
    }
    input.push_str("garbage line\n");
    let (base, code) = run(&["--threads", "1", "--batch", "6"], &input);
    assert_eq!(code, 0);
    assert_eq!(base.len(), 13);
    for threads in ["2", "8"] {
        let (lines, code) = run(&["--threads", threads, "--batch", "6"], &input);
        assert_eq!(code, 0);
        assert_eq!(lines, base, "stdout diverged at {threads} workers");
    }
    // And with the cache disabled: cold bytes == warm bytes.
    let (cold, code) = run(&["--threads", "2", "--batch", "6", "--no-cache"], &input);
    assert_eq!(code, 0);
    assert_eq!(cold, base, "cache state leaked into responses");
}
