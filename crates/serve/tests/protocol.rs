//! End-to-end protocol test: drives the `lll-serve` binary over a
//! pipe with a batch of mixed valid / invalid / oversized requests and
//! pins the per-request responses, error payloads, and exit codes.
//!
//! Response lines are pinned byte-for-byte where the payload is small
//! enough to read — the determinism contract says these bytes are a
//! pure function of the request and the engine configuration, so this
//! test doubles as a canary for accidental nondeterminism (thread
//! counts, cache state, or timing leaking into responses).

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_lll-serve");
const SCRAPE_BIN: &str = env!("CARGO_BIN_EXE_lll-metrics-scrape");

/// Runs the daemon with `args`, writes `input` to stdin, closes it,
/// and returns (stdout lines, exit code).
fn run(args: &[&str], input: &str) -> (Vec<String>, i32) {
    let mut child = Command::new(BIN)
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lll-serve");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("write requests");
    let out = child.wait_with_output().expect("daemon exit");
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    (
        stdout.lines().map(str::to_owned).collect(),
        out.status.code().expect("no signal"),
    )
}

#[test]
fn mixed_batch_pins_responses_and_exit_code() {
    let input = concat!(
        // Valid rank-2 CNF.
        r#"{"id":"q0","dimacs":"p cnf 2 2\n1 2 0\n-1 2 0\n"}"#,
        "\n",
        // Not JSON at all.
        "not json\n",
        // JSON, but not an object.
        "[1,2,3]\n",
        // Unknown field (typo'd payload key), id still salvaged.
        r#"{"id":"q1","dimcas":"x"}"#,
        "\n",
        // Missing payload.
        r#"{"id":42}"#,
        "\n",
        // Malformed DIMACS.
        r#"{"id":"q2","dimacs":"p cnf 2 1\n1 2"}"#,
        "\n",
        // Semantically invalid instance: event tests a foreign variable.
        r#"{"id":"q3","instance":{"variables":[{"affects":[0],"k":2}],"events":[{"vars":[1],"values":[0]}]}}"#,
        "\n",
        // Out of regime: at-threshold formula (two width-1 clauses
        // sharing the variable: p = 1/2, d = 1, p * 2^d = 1).
        r#"{"id":"q4","dimacs":"p cnf 1 2\n1 0\n-1 0\n"}"#,
        "\n",
        // Forced timeout (opt-in zero deadline).
        r#"{"id":"q5","timeout_ms":0,"dimacs":"p cnf 2 2\n1 2 0\n-1 2 0\n"}"#,
        "\n",
        // Clean shutdown with an id.
        r#"{"id":"bye","shutdown":true}"#,
        "\n",
        // After the shutdown: with --batch 1 the shutdown is always
        // its own batch, so this line is deterministically unread.
        r#"{"id":"late","dimacs":"p cnf 2 2\n1 2 0\n-1 2 0\n"}"#,
        "\n",
    );
    let (lines, code) = run(&["--batch", "1"], input);
    assert_eq!(code, 0, "clean shutdown");

    let expected_q0 = concat!(
        r#"{"id":"q0","status":"ok","assignment":[0,1],"steps":2,"rounds":3,"#,
        r#""coloring_rounds":0,"classes":2,"violated":0,"fingerprint":"0f869412e0fcd667","#,
        r#""provenance":"schema=1 engine=lll-serve/0.1.0 fixer=2 seed=5 nodes=2 edges=1 max_degree=1"}"#
    );
    assert_eq!(lines[0], expected_q0);
    assert!(
        lines[1].starts_with(r#"{"id":null,"status":"error","error":{"kind":"parse","#),
        "line 1: {}",
        lines[1]
    );
    assert!(
        lines[2].starts_with(r#"{"id":null,"status":"error","error":{"kind":"parse","#),
        "line 2: {}",
        lines[2]
    );
    assert_eq!(
        lines[3],
        r#"{"id":"q1","status":"error","error":{"kind":"parse","message":"unknown request field \"dimcas\""}}"#
    );
    assert_eq!(
        lines[4],
        r#"{"id":42,"status":"error","error":{"kind":"parse","message":"request needs exactly one of \"dimacs\" or \"instance\""}}"#
    );
    assert_eq!(
        lines[5],
        r#"{"id":"q2","status":"error","error":{"kind":"parse","message":"DIMACS: bad application input: unterminated final clause"}}"#
    );
    assert_eq!(
        lines[6],
        r#"{"id":"q3","status":"error","error":{"kind":"invalid","message":"event 0 tests variable 1, but there are only 1 variables"}}"#
    );
    assert!(
        lines[7].starts_with(r#"{"id":"q4","status":"error","error":{"kind":"out_of_regime","#),
        "line 7: {}",
        lines[7]
    );
    assert_eq!(
        lines[8],
        r#"{"id":"q5","status":"error","error":{"kind":"timeout","message":"deadline of 0 ms exceeded"}}"#
    );
    assert_eq!(lines[9], r#"{"id":"bye","status":"shutdown"}"#);
    // Nothing after the shutdown acknowledgement… unless the late
    // request rode in the same batch (batch=4 makes it a later batch).
    assert_eq!(lines.len(), 10, "shutdown stopped the stream: {lines:?}");
}

#[test]
fn oversized_lines_are_skipped_and_reported() {
    let big = format!(
        "{{\"id\":\"fat\",\"dimacs\":\"{}\"}}\n",
        "c padding ".repeat(40)
    );
    let input = format!(
        "{big}{}\n",
        r#"{"id":"after","dimacs":"p cnf 2 2\n1 2 0\n-1 2 0\n"}"#
    );
    let (lines, code) = run(&["--max-line-bytes", "128"], &input);
    assert_eq!(code, 0, "EOF after draining is clean");
    assert_eq!(
        lines[0],
        r#"{"id":null,"status":"error","error":{"kind":"oversized","message":"request line exceeds 128 bytes"}}"#
    );
    // The pipeline is not wedged: the next request still solves.
    assert!(
        lines[1].starts_with(r#"{"id":"after","status":"ok","#),
        "line 1: {}",
        lines[1]
    );
    assert_eq!(lines.len(), 2);
}

#[test]
fn oversized_instances_are_refused() {
    let input = concat!(
        r#"{"id":"cap","dimacs":"p cnf 2 2\n1 2 0\n-1 2 0\n"}"#,
        "\n"
    );
    let (lines, code) = run(&["--max-events", "1"], input);
    assert_eq!(code, 0);
    assert_eq!(
        lines[0],
        r#"{"id":"cap","status":"error","error":{"kind":"oversized","message":"2 clauses exceed the limit of 1"}}"#
    );
}

#[test]
fn usage_errors_exit_2() {
    let (_, code) = run(&["--frobnicate"], "");
    assert_eq!(code, 2);
    let out = Command::new(BIN)
        .args(["--threads"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "missing value is a usage error");
}

#[test]
fn help_exits_0_and_documents_exit_codes() {
    let out = Command::new(BIN).arg("--help").output().expect("spawn");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    for needle in ["EXIT CODES", "shutdown", "--no-cache", "--socket"] {
        assert!(text.contains(needle), "help is missing {needle:?}");
    }
}

#[test]
fn eof_without_requests_is_clean() {
    let (lines, code) = run(&[], "");
    assert_eq!(code, 0);
    assert!(lines.is_empty());
}

/// Scrapes the daemon's metrics socket with the workspace's own
/// scrape binary, retrying briefly while the socket comes up.
fn scrape(socket: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let out = Command::new(SCRAPE_BIN)
            .arg(socket)
            .output()
            .expect("spawn lll-metrics-scrape");
        if out.status.code() == Some(0) {
            return String::from_utf8(out.stdout).expect("exposition is UTF-8");
        }
        assert!(
            Instant::now() < deadline,
            "metrics socket {socket} never came up: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn sample(exposition: &str, series: &str) -> i64 {
    exposition
        .lines()
        .find(|l| l.strip_prefix(series).is_some_and(|r| r.starts_with(' ')))
        .unwrap_or_else(|| panic!("exposition has no series {series:?}:\n{exposition}"))
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .expect("integer sample")
}

/// Live-scrape test: drive the daemon with a mixed batch, scrape the
/// `--metrics` socket mid-session, and pin the exported counters
/// against the known per-request outcomes. The response lines
/// themselves must be exactly the no-telemetry bytes.
#[test]
fn metrics_socket_pins_per_request_counters() {
    let dir = std::env::temp_dir().join(format!("lll-serve-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let socket = dir.join("metrics.sock");
    let socket = socket.to_str().expect("utf-8 path");

    let mut child = Command::new(BIN)
        .args(["--batch", "1", "--metrics", socket, "--cache-capacity", "8"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lll-serve");
    let mut stdin = child.stdin.take().expect("stdin piped");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut read_line = || {
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read response");
        line
    };

    // 2 ok solves (same shape: 1 miss + 1 hit), 1 parse error, 1
    // timeout error — answered before we scrape, so the counters are
    // settled.
    let ok_req = r#"{"id":"q0","dimacs":"p cnf 2 2\n1 2 0\n-1 2 0\n"}"#;
    let expected_ok = concat!(
        r#"{"id":"q0","status":"ok","assignment":[0,1],"steps":2,"rounds":3,"#,
        r#""coloring_rounds":0,"classes":2,"violated":0,"fingerprint":"0f869412e0fcd667","#,
        r#""provenance":"schema=1 engine=lll-serve/0.1.0 fixer=2 seed=5 nodes=2 edges=1 max_degree=1"}"#
    );
    for _ in 0..2 {
        writeln!(stdin, "{ok_req}").expect("write request");
        assert_eq!(
            read_line().trim_end(),
            expected_ok,
            "telemetry changed bytes"
        );
    }
    writeln!(stdin, "not json").expect("write request");
    assert!(read_line().contains(r#""kind":"parse""#));
    writeln!(
        stdin,
        r#"{{"id":"t","timeout_ms":0,"dimacs":"p cnf 2 2\n1 2 0\n-1 2 0\n"}}"#
    )
    .expect("write request");
    assert!(read_line().contains(r#""kind":"timeout""#));

    let text = scrape(socket);
    assert_eq!(sample(&text, "lll_serve_requests_total"), 4);
    assert_eq!(sample(&text, "lll_serve_ok_total"), 2);
    assert_eq!(sample(&text, "lll_serve_errors_total{kind=\"parse\"}"), 1);
    assert_eq!(sample(&text, "lll_serve_errors_total{kind=\"timeout\"}"), 1);
    assert_eq!(
        sample(&text, "lll_serve_errors_total{kind=\"internal\"}"),
        0
    );
    // The timeout request still solves (the deadline check is
    // cooperative), so it hits the cached schedule too: 1 miss, 2 hits.
    assert_eq!(sample(&text, "lll_serve_cache_hits_total"), 2);
    assert_eq!(sample(&text, "lll_serve_cache_misses_total"), 1);
    assert_eq!(sample(&text, "lll_serve_cache_entries"), 1);
    assert_eq!(sample(&text, "lll_serve_latency_micros_count"), 4);
    // 3 solves ran a sweep (2 ok + the cooperative-timeout one).
    assert_eq!(sample(&text, "lll_serve_sweep_micros_count"), 3);
    assert!(sample(&text, "lll_serve_cache_bytes") > 0);
    assert_eq!(sample(&text, "lll_serve_shutdowns_total"), 0);

    writeln!(stdin, r#"{{"id":"bye","shutdown":true}}"#).expect("write request");
    drop(stdin);
    let status = child.wait().expect("daemon exit");
    assert_eq!(status.code(), Some(0));
    assert!(
        !std::path::Path::new(socket).exists(),
        "metrics socket not removed on shutdown"
    );
}

#[test]
fn responses_identical_at_every_worker_count() {
    // Protocol-level replay of the determinism contract: same input
    // stream, worker counts 1 / 2 / 8, byte-identical stdout.
    let mut input = String::new();
    for i in 0..12 {
        let cnf = lll_apps::sat::ring_formula(16, 5, i);
        input.push_str(&format!(
            "{{\"id\":{i},\"dimacs\":{}}}\n",
            serde_json::to_string(&cnf.to_string()).unwrap()
        ));
    }
    input.push_str("garbage line\n");
    let (base, code) = run(&["--threads", "1", "--batch", "6"], &input);
    assert_eq!(code, 0);
    assert_eq!(base.len(), 13);
    for threads in ["2", "8"] {
        let (lines, code) = run(&["--threads", threads, "--batch", "6"], &input);
        assert_eq!(code, 0);
        assert_eq!(lines, base, "stdout diverged at {threads} workers");
    }
    // And with the cache disabled: cold bytes == warm bytes.
    let (cold, code) = run(&["--threads", "2", "--batch", "6", "--no-cache"], &input);
    assert_eq!(code, 0);
    assert_eq!(cold, base, "cache state leaked into responses");
}
