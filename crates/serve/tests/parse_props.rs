//! Proptest battery for the request parsers.
//!
//! Two properties per parser family: (1) canonical serialization
//! round-trips (`parse(to_json(r)) == r`, `parse(display(cnf)) ==
//! cnf`), and (2) arbitrary garbage — byte noise, malformed JSON,
//! schema violations — always yields a typed error response, never a
//! panic and never a wedged serving loop.

use lll_apps::sat::CnfFormula;
use lll_serve::{
    serve, Engine, EngineConfig, JsonEvent, JsonInstance, JsonVariable, Payload, Request, Response,
    ServeConfig, SolveRequest,
};
use proptest::prelude::*;
use proptest::TestRng;

fn arb_id(rng: &mut TestRng) -> String {
    match rng.below(4) {
        0 => "null".to_owned(),
        1 => format!("{}", rng.below(1000)),
        2 => format!("-{}", rng.below(1000) + 1),
        _ => serde_json::to_string(&format!("req-{}", rng.below(1000))).unwrap(),
    }
}

fn arb_json_instance(rng: &mut TestRng) -> JsonInstance {
    // Shape-valid but not necessarily semantically valid: the wire
    // round-trip must hold for anything the parser accepts.
    let num_events = 1 + rng.below(5) as usize;
    let num_vars = 1 + rng.below(5) as usize;
    let variables = (0..num_vars)
        .map(|_| {
            let affects = (0..1 + rng.below(3))
                .map(|_| rng.below(8) as usize)
                .collect();
            JsonVariable {
                affects,
                k: 2 + rng.below(4) as usize,
            }
        })
        .collect();
    let events = (0..num_events)
        .map(|_| {
            let n = rng.below(3) as usize;
            JsonEvent {
                vars: (0..n).map(|_| rng.below(8) as usize).collect(),
                values: (0..n).map(|_| rng.below(4) as usize).collect(),
            }
        })
        .collect();
    JsonInstance { variables, events }
}

prop_compose! {
    fn arb_request()(raw in proptest::Generated::new(|rng: &mut TestRng| {
        let id = arb_id(rng);
        if rng.below(8) == 0 {
            return Request::Shutdown { id };
        }
        let payload = if rng.below(2) == 0 {
            let m = 5 + rng.below(8) as usize;
            let w = 5 + rng.below(3) as usize;
            Payload::Dimacs(lll_apps::sat::ring_formula(m, w, rng.next_u64()).to_string())
        } else {
            Payload::Instance(arb_json_instance(rng))
        };
        Request::Solve(SolveRequest {
            id,
            payload,
            schedule_seed: if rng.below(2) == 0 { Some(rng.below(1000)) } else { None },
            obs: if rng.below(4) == 0 {
                Some(format!("/tmp/trace-{}.jsonl", rng.below(100)))
            } else {
                None
            },
            timeout_ms: if rng.below(4) == 0 { Some(rng.below(100_000)) } else { None },
        })
    })) -> Request { raw }
}

prop_compose! {
    fn arb_cnf()(raw in proptest::Generated::new(|rng: &mut TestRng| {
        let num_vars = 1 + rng.below(6) as usize;
        let num_clauses = 1 + rng.below(6) as usize;
        let clauses = (0..num_clauses)
            .map(|_| {
                // A non-empty subset of the variables, random polarity.
                let mask = 1 + rng.below((1u64 << num_vars) - 1);
                (0..num_vars)
                    .filter(|&x| mask >> x & 1 == 1)
                    .map(|x| {
                        let lit = (x + 1) as i32;
                        if rng.below(2) == 0 { lit } else { -lit }
                    })
                    .collect::<Vec<i32>>()
            })
            .collect();
        CnfFormula::new(num_vars, clauses).expect("subset clauses are well-formed")
    })) -> CnfFormula { raw }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_json_round_trips(req in arb_request()) {
        let wire = req.to_json();
        let back = Request::parse(&wire);
        prop_assert_eq!(back.as_ref(), Ok(&req), "wire: {}", wire);
        // Canonical text is a fixed point.
        let again = Request::parse(&wire).unwrap().to_json();
        prop_assert_eq!(again, wire);
    }

    #[test]
    fn dimacs_round_trips(cnf in arb_cnf()) {
        let text = cnf.to_string();
        let back: CnfFormula = text.parse().expect("display output parses");
        prop_assert_eq!(back, cnf);
    }

    #[test]
    fn garbage_strings_get_typed_errors(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let engine = Engine::new(EngineConfig::default());
        let line = String::from_utf8_lossy(&bytes).replace('\n', " ");
        let response = engine.solve_line(&line);
        match response {
            Response::Error { .. } => {}
            other => {
                // Random bytes parsing into a valid request would be
                // astonishing; accept it but require a response.
                prop_assert!(!other.is_shutdown() || line.contains("shutdown"));
            }
        }
    }

    #[test]
    fn garbage_streams_never_wedge_the_loop(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let engine = Engine::new(EngineConfig::default());
        let mut out = Vec::new();
        let summary = serve(
            &engine,
            bytes.as_slice(),
            &mut out,
            &ServeConfig { batch: 4, threads: 2, max_line_bytes: 64 },
        )
        .expect("in-memory transport cannot fail");
        let text = String::from_utf8(out).expect("responses are UTF-8");
        let mut lines = 0;
        for line in text.lines() {
            lines += 1;
            let value: serde::Value =
                serde_json::from_str(line).expect("every response line is JSON");
            prop_assert!(value.get("status").is_some(), "line: {line}");
        }
        prop_assert_eq!(lines, summary.responses as usize);
    }

    #[test]
    fn schema_violations_get_parse_errors(field in 0usize..7) {
        let line = [
            r#"{"dimacs":"p cnf 1 1\n1 0\n"}"#.replace("dimacs", "dimcas"),
            r#"{"id":[1,2],"dimacs":"x"}"#.to_owned(),
            r#"{"id":"a","dimacs":7}"#.to_owned(),
            r#"{"id":"a","dimacs":"x","instance":{"variables":[],"events":[]}}"#.to_owned(),
            r#"{"id":"a"}"#.to_owned(),
            r#"{"id":"a","instance":{"variables":[{"affects":[0],"k":-2}],"events":[]}}"#.to_owned(),
            r#"{"id":"a","schedule_seed":-1,"dimacs":"x"}"#.to_owned(),
        ][field].clone();
        let err = Request::parse(&line).expect_err("schema violation");
        prop_assert_eq!(err.kind, lll_serve::ErrorKind::Parse, "{}", err);
    }
}
