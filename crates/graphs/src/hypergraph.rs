//! Hypergraphs of bounded rank and their dependency graphs.

use std::collections::BTreeSet;
use std::fmt;

use crate::graph::{Graph, GraphBuilder};

/// A hyperedge: the sorted, duplicate-free set of incident nodes.
///
/// In the LLL setting a hyperedge is a random variable and its nodes are
/// the bad events the variable affects; the paper's parameter `r` is the
/// *rank* — the maximum hyperedge cardinality.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Hyperedge(Vec<usize>);

impl Hyperedge {
    /// Creates a hyperedge from arbitrary node order, sorting and
    /// deduplicating.
    ///
    /// # Panics
    ///
    /// Panics if the node set is empty.
    pub fn new(nodes: impl IntoIterator<Item = usize>) -> Hyperedge {
        let set: BTreeSet<usize> = nodes.into_iter().collect();
        assert!(!set.is_empty(), "empty hyperedge");
        Hyperedge(set.into_iter().collect())
    }

    /// Incident nodes, sorted ascending.
    pub fn nodes(&self) -> &[usize] {
        &self.0
    }

    /// Cardinality of the hyperedge.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Whether `v` is incident.
    pub fn contains(&self, v: usize) -> bool {
        self.0.binary_search(&v).is_ok()
    }
}

/// Error produced when constructing a malformed [`Hypergraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HypergraphError {
    /// A hyperedge mentioned a node `>= n`.
    NodeOutOfRange {
        /// The offending node.
        node: usize,
        /// Number of nodes.
        n: usize,
    },
    /// A hyperedge exceeded the declared maximum rank.
    RankTooLarge {
        /// Index of the offending hyperedge.
        edge: usize,
        /// Its rank.
        rank: usize,
        /// The allowed maximum.
        max_rank: usize,
    },
}

impl fmt::Display for HypergraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HypergraphError::NodeOutOfRange { node, n } => {
                write!(f, "hyperedge node {node} out of range for {n} nodes")
            }
            HypergraphError::RankTooLarge {
                edge,
                rank,
                max_rank,
            } => {
                write!(f, "hyperedge {edge} has rank {rank} > maximum {max_rank}")
            }
        }
    }
}

impl std::error::Error for HypergraphError {}

/// An immutable hypergraph with incidence lists.
///
/// Nodes are `0..n`; hyperedges keep their insertion order and are
/// addressed by index (in the LLL setting, hyperedge index = variable
/// index). Parallel hyperedges (same node set) are allowed — the paper
/// explicitly treats several random variables on the same node set.
///
/// # Examples
///
/// ```
/// use lll_graphs::{Hyperedge, Hypergraph};
///
/// let h = Hypergraph::new(4, vec![
///     Hyperedge::new([0, 1, 2]),
///     Hyperedge::new([1, 2, 3]),
/// ], 3)?;
/// assert_eq!(h.degree(1), 2);
/// assert_eq!(h.rank(), 3);
/// let dep = h.dependency_graph();
/// assert!(dep.has_edge(1, 3));  // events 1 and 3 share the second variable
/// assert!(!dep.has_edge(0, 3)); // 0 and 3 share no variable
/// # Ok::<(), lll_graphs::HypergraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    n: usize,
    edges: Vec<Hyperedge>,
    /// incidence[v] = indices of hyperedges containing v.
    incidence: Vec<Vec<usize>>,
}

impl Hypergraph {
    /// Creates a hypergraph on `n` nodes with the given hyperedges,
    /// enforcing the rank bound `max_rank`.
    ///
    /// # Errors
    ///
    /// Returns [`HypergraphError`] for out-of-range nodes or oversized
    /// hyperedges.
    pub fn new(
        n: usize,
        edges: Vec<Hyperedge>,
        max_rank: usize,
    ) -> Result<Hypergraph, HypergraphError> {
        let mut incidence = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            if e.rank() > max_rank {
                return Err(HypergraphError::RankTooLarge {
                    edge: i,
                    rank: e.rank(),
                    max_rank,
                });
            }
            for &v in e.nodes() {
                if v >= n {
                    return Err(HypergraphError::NodeOutOfRange { node: v, n });
                }
                incidence[v].push(i);
            }
        }
        Ok(Hypergraph {
            n,
            edges,
            incidence,
        })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of hyperedges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The hyperedge with index `i`.
    pub fn edge(&self, i: usize) -> &Hyperedge {
        &self.edges[i]
    }

    /// All hyperedges in insertion order.
    pub fn edges(&self) -> &[Hyperedge] {
        &self.edges
    }

    /// Indices of the hyperedges incident to `v`.
    pub fn incident(&self, v: usize) -> &[usize] {
        &self.incidence[v]
    }

    /// Number of hyperedges incident to `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.incidence[v].len()
    }

    /// Maximum node degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Rank: the maximum hyperedge cardinality (`0` if there are no
    /// hyperedges).
    pub fn rank(&self) -> usize {
        self.edges.iter().map(Hyperedge::rank).max().unwrap_or(0)
    }

    /// The dependency graph: nodes of the hypergraph, an edge between two
    /// nodes iff they share a hyperedge.
    ///
    /// In the LLL reading this is exactly the paper's dependency graph `G`
    /// of the instance whose variables are the hyperedges.
    pub fn dependency_graph(&self) -> Graph {
        let mut b = GraphBuilder::new(self.n);
        for e in &self.edges {
            let nodes = e.nodes();
            for i in 0..nodes.len() {
                for j in i + 1..nodes.len() {
                    b.add_edge(nodes[i], nodes[j]);
                }
            }
        }
        b.build()
            .expect("dependency graph of a valid hypergraph is valid")
    }

    /// Maximum dependency degree `d`: the maximum, over nodes `v`, of the
    /// number of *other* nodes sharing a hyperedge with `v`. This is the
    /// `d` in the paper's criterion `p < 2^-d`.
    pub fn max_dependency_degree(&self) -> usize {
        self.dependency_graph().max_degree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h3() -> Hypergraph {
        Hypergraph::new(
            5,
            vec![
                Hyperedge::new([0, 1, 2]),
                Hyperedge::new([1, 2, 3]),
                Hyperedge::new([3, 4]),
            ],
            3,
        )
        .unwrap()
    }

    #[test]
    fn hyperedge_normalizes() {
        let e = Hyperedge::new([3, 1, 2, 1]);
        assert_eq!(e.nodes(), &[1, 2, 3]);
        assert_eq!(e.rank(), 3);
        assert!(e.contains(2));
        assert!(!e.contains(0));
    }

    #[test]
    #[should_panic(expected = "empty hyperedge")]
    fn empty_hyperedge_panics() {
        Hyperedge::new([]);
    }

    #[test]
    fn incidence_and_degrees() {
        let h = h3();
        assert_eq!(h.num_nodes(), 5);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.incident(1), &[0, 1]);
        assert_eq!(h.incident(4), &[2]);
        assert_eq!(h.degree(2), 2);
        assert_eq!(h.max_degree(), 2);
        assert_eq!(h.rank(), 3);
    }

    #[test]
    fn rank_bound_enforced() {
        let err = Hypergraph::new(4, vec![Hyperedge::new([0, 1, 2, 3])], 3).unwrap_err();
        assert_eq!(
            err,
            HypergraphError::RankTooLarge {
                edge: 0,
                rank: 4,
                max_rank: 3
            }
        );
        let err = Hypergraph::new(2, vec![Hyperedge::new([0, 5])], 3).unwrap_err();
        assert_eq!(err, HypergraphError::NodeOutOfRange { node: 5, n: 2 });
    }

    #[test]
    fn dependency_graph_connects_cohabitants() {
        let h = h3();
        let g = h.dependency_graph();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(1, 3));
        assert!(g.has_edge(3, 4));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(0, 4));
        assert!(!g.has_edge(2, 4));
        // d = max dependency degree: node 1 and 2 see {0,2,3} resp {0,1,3}.
        assert_eq!(h.max_dependency_degree(), 3);
    }

    #[test]
    fn parallel_hyperedges_allowed() {
        let h = Hypergraph::new(
            3,
            vec![Hyperedge::new([0, 1, 2]), Hyperedge::new([0, 1, 2])],
            3,
        )
        .unwrap();
        assert_eq!(h.degree(0), 2);
        assert_eq!(h.dependency_graph().num_edges(), 3);
    }
}
