//! Optional Serde support (feature `serde`).
//!
//! [`Graph`] serializes as `{num_nodes, edges}` and [`Hypergraph`] as
//! `{num_nodes, edges}` (hyperedges as sorted node lists); on
//! deserialization the structures are rebuilt through their validating
//! constructors, so invalid data (self loops, out-of-range nodes) is
//! rejected rather than admitted.
//!
//! The impls are written by hand against the vendored serde stub's
//! [`Value`] data model (the stub has no proc-macro derive).

use serde::de::{Error as _, ValueDeserializer};
use serde::{Deserialize, Deserializer, Serialize, Serializer, Value};

use crate::{Graph, Hyperedge, Hypergraph};

fn object<S: Serializer>(serializer: S, num_nodes: usize, edges: Value) -> Result<S::Ok, S::Error> {
    serializer.serialize_value(Value::Object(vec![
        ("num_nodes".to_string(), Value::U64(num_nodes as u64)),
        ("edges".to_string(), edges),
    ]))
}

fn field<'de, T: Deserialize<'de>, D: Deserializer<'de>>(
    repr: &Value,
    name: &str,
) -> Result<T, D::Error> {
    let value = repr
        .get(name)
        .ok_or_else(|| D::Error::custom(format!("missing field `{name}`")))?;
    T::deserialize(ValueDeserializer::<D::Error>::new(value.clone()))
}

impl Serialize for Graph {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        object(
            serializer,
            self.num_nodes(),
            serde::to_value(&self.edges().to_vec()),
        )
    }
}

impl<'de> Deserialize<'de> for Graph {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = deserializer.deserialize_value()?;
        let num_nodes: usize = field::<_, D>(&repr, "num_nodes")?;
        let edges: Vec<(usize, usize)> = field::<_, D>(&repr, "edges")?;
        Graph::from_edges(num_nodes, edges).map_err(D::Error::custom)
    }
}

impl Serialize for Hyperedge {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.nodes().serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Hyperedge {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let nodes = Vec::<usize>::deserialize(deserializer)?;
        if nodes.is_empty() {
            return Err(D::Error::custom("empty hyperedge"));
        }
        Ok(Hyperedge::new(nodes))
    }
}

impl Serialize for Hypergraph {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        object(
            serializer,
            self.num_nodes(),
            serde::to_value(&self.edges().to_vec()),
        )
    }
}

impl<'de> Deserialize<'de> for Hypergraph {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = deserializer.deserialize_value()?;
        let num_nodes: usize = field::<_, D>(&repr, "num_nodes")?;
        let edges: Vec<Hyperedge> = field::<_, D>(&repr, "edges")?;
        let max_rank = edges.iter().map(Hyperedge::rank).max().unwrap_or(0);
        Hypergraph::new(num_nodes, edges, max_rank).map_err(D::Error::custom)
    }
}
