//! Optional Serde support (feature `serde`).
//!
//! [`Graph`] serializes as `{num_nodes, edges}` and [`Hypergraph`] as
//! `{num_nodes, edges}` (hyperedges as sorted node lists); on
//! deserialization the structures are rebuilt through their validating
//! constructors, so invalid data (self loops, out-of-range nodes) is
//! rejected rather than admitted.

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::{Graph, Hyperedge, Hypergraph};

#[derive(Serialize, Deserialize)]
struct GraphRepr {
    num_nodes: usize,
    edges: Vec<(usize, usize)>,
}

impl Serialize for Graph {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        GraphRepr { num_nodes: self.num_nodes(), edges: self.edges().to_vec() }
            .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Graph {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = GraphRepr::deserialize(deserializer)?;
        Graph::from_edges(repr.num_nodes, repr.edges).map_err(D::Error::custom)
    }
}

impl Serialize for Hyperedge {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.nodes().serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Hyperedge {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let nodes = Vec::<usize>::deserialize(deserializer)?;
        if nodes.is_empty() {
            return Err(D::Error::custom("empty hyperedge"));
        }
        Ok(Hyperedge::new(nodes))
    }
}

#[derive(Serialize, Deserialize)]
struct HypergraphRepr {
    num_nodes: usize,
    edges: Vec<Hyperedge>,
}

impl Serialize for Hypergraph {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        HypergraphRepr { num_nodes: self.num_nodes(), edges: self.edges().to_vec() }
            .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Hypergraph {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = HypergraphRepr::deserialize(deserializer)?;
        let max_rank = repr.edges.iter().map(Hyperedge::rank).max().unwrap_or(0);
        Hypergraph::new(repr.num_nodes, repr.edges, max_rank).map_err(D::Error::custom)
    }
}
