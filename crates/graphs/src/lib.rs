//! Graphs, hypergraphs and workload generators for the `sharp-lll`
//! toolkit.
//!
//! The LLL dependency structures of Brandt–Maus–Uitto live on two levels:
//!
//! * a **dependency graph** whose nodes are bad events and whose edges
//!   connect events sharing a random variable — represented by [`Graph`];
//! * a **variable hypergraph** `H` with one hyperedge per random variable
//!   connecting the (at most `r`) events the variable affects —
//!   represented by [`Hypergraph`] (rank ≤ 3 throughout the paper).
//!
//! [`Graph`] is a compact CSR structure with stable port numbers (the
//! LOCAL simulator in `lll-local` addresses messages by port), plus the
//! derived structures the coloring algorithms need: the square graph `G²`
//! (for distance-2 coloring, Corollary 1.4) and the line graph (for edge
//! coloring, Corollary 1.2).
//!
//! The [`gen`] module provides the deterministic and seeded random
//! workloads used by the experiments: rings, toruses, hypercubes, random
//! regular graphs, random 3-uniform hypergraphs, and bipartite biregular
//! graphs for the weak-splitting application.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod hypergraph;
#[cfg(feature = "serde")]
mod serde_impls;

pub mod gen;

pub use gen::GenError;
pub use graph::{Graph, GraphBuilder, GraphError};
pub use hypergraph::{Hyperedge, Hypergraph, HypergraphError};
