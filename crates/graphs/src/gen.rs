//! Workload generators: deterministic topologies and seeded random
//! graphs/hypergraphs used by the experiments.
//!
//! All random generators take an explicit `seed` and are fully
//! reproducible. Generators that use rejection sampling (random regular
//! graphs, random 3-uniform hypergraphs, bipartite biregular graphs)
//! return an error after a bounded number of attempts instead of looping
//! forever on infeasible parameters.

use std::collections::BTreeSet;
use std::fmt;

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::graph::{Graph, GraphBuilder};
use crate::hypergraph::{Hyperedge, Hypergraph};

/// Maximum number of rejection-sampling attempts before giving up.
const MAX_ATTEMPTS: usize = 500;

/// Error produced by the random generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// The requested parameters are structurally impossible
    /// (e.g. `n*d` odd for a `d`-regular graph).
    InvalidParameters(String),
    /// Rejection sampling failed `MAX_ATTEMPTS` (500) times; the parameters
    /// are likely too dense for a simple structure.
    RetriesExhausted,
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::InvalidParameters(msg) => write!(f, "invalid generator parameters: {msg}"),
            GenError::RetriesExhausted => write!(f, "generator retries exhausted"),
        }
    }
}

impl std::error::Error for GenError {}

/// The cycle `C_n` (requires `n >= 3`).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "ring needs n >= 3");
    Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).expect("ring edges are valid")
}

/// The path `P_n` on `n` nodes.
pub fn path(n: usize) -> Graph {
    Graph::from_edges(n, (1..n).map(|i| (i - 1, i))).expect("path edges are valid")
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in u + 1..n {
            b.add_edge(u, v);
        }
    }
    b.build().expect("complete graph is valid")
}

/// The `w × h` torus (4-regular; requires `w, h >= 3`).
///
/// # Panics
///
/// Panics if `w < 3` or `h < 3`.
pub fn torus(w: usize, h: usize) -> Graph {
    assert!(w >= 3 && h >= 3, "torus needs both dimensions >= 3");
    let idx = |x: usize, y: usize| y * w + x;
    let mut b = GraphBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            b.add_edge(idx(x, y), idx((x + 1) % w, y));
            b.add_edge(idx(x, y), idx(x, (y + 1) % h));
        }
    }
    b.build().expect("torus is valid")
}

/// The `dim`-dimensional hypercube `Q_dim` on `2^dim` nodes.
pub fn hypercube(dim: u32) -> Graph {
    let n = 1usize << dim;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..dim {
            b.add_edge(v, v ^ (1 << bit));
        }
    }
    b.build().expect("hypercube is valid")
}

/// A random simple `d`-regular graph on `n` nodes (configuration model
/// with edge-switching repair).
///
/// The raw configuration pairing is repaired by double-edge swaps: while
/// a self loop or parallel edge exists, it is switched with a random
/// other pair — the standard technique that keeps the degree sequence
/// intact and converges quickly for `d ≪ n`.
///
/// # Errors
///
/// Returns [`GenError::InvalidParameters`] if `n*d` is odd or `d >= n`,
/// and [`GenError::RetriesExhausted`] if repair failed repeatedly.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<Graph, GenError> {
    if !(n * d).is_multiple_of(2) {
        return Err(GenError::InvalidParameters(format!(
            "n*d = {} is odd",
            n * d
        )));
    }
    if d >= n {
        return Err(GenError::InvalidParameters(format!("d = {d} >= n = {n}")));
    }
    if d == 0 {
        return Ok(Graph::empty(n));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    'attempt: for _ in 0..MAX_ATTEMPTS {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(&mut rng);
        let mut edges: Vec<(usize, usize)> = stubs
            .chunks_exact(2)
            .map(|p| (p[0].min(p[1]), p[0].max(p[1])))
            .collect();
        // Switching repair: bounded number of double-edge swaps.
        let mut budget = 100 * edges.len() + 1000;
        loop {
            let mut multiplicity: BTreeSet<(usize, usize)> = BTreeSet::new();
            let mut bad: Vec<usize> = Vec::new();
            for (i, &e) in edges.iter().enumerate() {
                if e.0 == e.1 || !multiplicity.insert(e) {
                    bad.push(i);
                }
            }
            if bad.is_empty() {
                return Ok(Graph::from_edges(n, edges).expect("repaired edges are simple"));
            }
            for &i in &bad {
                if budget == 0 {
                    continue 'attempt;
                }
                budget -= 1;
                let j = rng.random_range(0..edges.len());
                if i == j {
                    continue;
                }
                let (u, v) = edges[i];
                let (x, y) = edges[j];
                // Swap to (u, x), (v, y); orientation of the partner pair
                // is randomized by the shuffle above over attempts.
                let e1 = (u.min(x), u.max(x));
                let e2 = (v.min(y), v.max(y));
                if u != x && v != y && !edges.contains(&e1) && !edges.contains(&e2) {
                    edges[i] = e1;
                    edges[j] = e2;
                }
            }
        }
    }
    Err(GenError::RetriesExhausted)
}

/// Erdős–Rényi `G(n, p)`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in u + 1..n {
            if rng.random::<f64>() < p {
                b.add_edge(u, v);
            }
        }
    }
    b.build().expect("gnp graph is valid")
}

/// A random simple bipartite biregular graph: sides `V = 0..nv` (degree
/// `dv`) and `U = nv..nv+nu` (degree `du`), with `nv*dv == nu*du`.
///
/// Used by the weak-splitting application (`V` = constraint nodes, `U` =
/// variable nodes of degree `r`).
///
/// # Errors
///
/// Returns [`GenError::InvalidParameters`] if the stub counts disagree,
/// and [`GenError::RetriesExhausted`] if no simple pairing was found.
pub fn random_bipartite_biregular(
    nv: usize,
    dv: usize,
    nu: usize,
    du: usize,
    seed: u64,
) -> Result<Graph, GenError> {
    if nv * dv != nu * du {
        return Err(GenError::InvalidParameters(format!(
            "stub mismatch: {nv}*{dv} != {nu}*{du}"
        )));
    }
    if dv > nu || du > nv {
        return Err(GenError::InvalidParameters(
            "degree exceeds opposite side size".to_owned(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    'attempt: for _ in 0..MAX_ATTEMPTS {
        let mut u_stubs: Vec<usize> = (0..nu)
            .flat_map(|u| std::iter::repeat_n(nv + u, du))
            .collect();
        u_stubs.shuffle(&mut rng);
        let mut seen = BTreeSet::new();
        let mut k = 0;
        for v in 0..nv {
            for _ in 0..dv {
                let u = u_stubs[k];
                k += 1;
                if !seen.insert((v, u)) {
                    continue 'attempt;
                }
            }
        }
        return Ok(Graph::from_edges(nv + nu, seen).expect("checked bipartite edges"));
    }
    Err(GenError::RetriesExhausted)
}

/// The 3-uniform "hyper-ring": hyperedges `{i, i+1, i+2}` for every `i`
/// (indices mod `n`). Every node has hypergraph degree 3 and dependency
/// degree 4.
///
/// # Panics
///
/// Panics if `n < 5` (smaller rings degenerate to overlapping edges).
pub fn hyper_ring(n: usize) -> Hypergraph {
    assert!(n >= 5, "hyper_ring needs n >= 5");
    let edges = (0..n)
        .map(|i| Hyperedge::new([i, (i + 1) % n, (i + 2) % n]))
        .collect();
    Hypergraph::new(n, edges, 3).expect("hyper ring is valid")
}

/// A random 3-uniform hypergraph where every node lies in exactly `deg`
/// hyperedges (configuration model over triples with rejection of
/// degenerate triples). Parallel hyperedges are permitted — the LLL
/// framework explicitly allows several variables on the same event set.
///
/// # Errors
///
/// Returns [`GenError::InvalidParameters`] if `n*deg` is not divisible by
/// 3 or `n < 3`, and [`GenError::RetriesExhausted`] on sampling failure.
pub fn random_3_uniform(n: usize, deg: usize, seed: u64) -> Result<Hypergraph, GenError> {
    if n < 3 {
        return Err(GenError::InvalidParameters(format!("n = {n} < 3")));
    }
    if !(n * deg).is_multiple_of(3) {
        return Err(GenError::InvalidParameters(format!(
            "n*deg = {} not divisible by 3",
            n * deg
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    'attempt: for _ in 0..MAX_ATTEMPTS {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, deg)).collect();
        stubs.shuffle(&mut rng);
        let mut edges = Vec::with_capacity(stubs.len() / 3);
        for tri in stubs.chunks_exact(3) {
            if tri[0] == tri[1] || tri[1] == tri[2] || tri[0] == tri[2] {
                continue 'attempt;
            }
            edges.push(Hyperedge::new(tri.iter().copied()));
        }
        return Ok(Hypergraph::new(n, edges, 3).expect("checked 3-uniform edges"));
    }
    Err(GenError::RetriesExhausted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_and_path() {
        let r = ring(5);
        assert_eq!(r.num_edges(), 5);
        assert!((0..5).all(|v| r.degree(v) == 2));
        assert!(r.is_connected());
        let p = path(4);
        assert_eq!(p.num_edges(), 3);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(1), 2);
    }

    #[test]
    fn torus_is_4_regular() {
        let t = torus(4, 5);
        assert_eq!(t.num_nodes(), 20);
        assert!((0..20).all(|v| t.degree(v) == 4));
        assert_eq!(t.num_edges(), 40);
        assert!(t.is_connected());
    }

    #[test]
    fn hypercube_structure() {
        let q = hypercube(4);
        assert_eq!(q.num_nodes(), 16);
        assert!((0..16).all(|v| q.degree(v) == 4));
        assert!(q.is_connected());
        assert!(q.has_edge(0b0000, 0b1000));
        assert!(!q.has_edge(0b0000, 0b0011));
    }

    #[test]
    fn complete_graph() {
        let k = complete(6);
        assert_eq!(k.num_edges(), 15);
        assert_eq!(k.max_degree(), 5);
    }

    #[test]
    fn random_regular_is_regular_and_reproducible() {
        let g = random_regular(50, 4, 7).unwrap();
        assert!((0..50).all(|v| g.degree(v) == 4));
        let g2 = random_regular(50, 4, 7).unwrap();
        assert_eq!(g, g2);
        let g3 = random_regular(50, 4, 8).unwrap();
        assert_ne!(g, g3);
    }

    #[test]
    fn random_regular_rejects_bad_params() {
        assert!(matches!(
            random_regular(5, 3, 0),
            Err(GenError::InvalidParameters(_))
        ));
        assert!(matches!(
            random_regular(4, 5, 0),
            Err(GenError::InvalidParameters(_))
        ));
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 1).num_edges(), 45);
        let g = gnp(30, 0.2, 42);
        assert!(g.num_edges() > 30 && g.num_edges() < 160);
    }

    #[test]
    fn bipartite_biregular_degrees() {
        // nv=12 of degree 3, nu=9 of degree 4
        let g = random_bipartite_biregular(12, 3, 9, 4, 3).unwrap();
        assert_eq!(g.num_nodes(), 21);
        assert!((0..12).all(|v| g.degree(v) == 3));
        assert!((12..21).all(|u| g.degree(u) == 4));
        // bipartite: no edge within a side
        for &(a, b) in g.edges() {
            assert!(a < 12 && b >= 12, "edge ({a},{b}) crosses sides");
        }
        assert!(matches!(
            random_bipartite_biregular(3, 2, 4, 2, 0),
            Err(GenError::InvalidParameters(_))
        ));
    }

    #[test]
    fn hyper_ring_structure() {
        let h = hyper_ring(7);
        assert_eq!(h.num_edges(), 7);
        assert!((0..7).all(|v| h.degree(v) == 3));
        assert_eq!(h.rank(), 3);
        assert_eq!(h.max_dependency_degree(), 4);
    }

    #[test]
    fn random_3_uniform_degrees() {
        let h = random_3_uniform(30, 3, 11).unwrap();
        assert_eq!(h.num_edges(), 30);
        assert!((0..30).all(|v| h.degree(v) == 3));
        assert_eq!(h.rank(), 3);
        let h2 = random_3_uniform(30, 3, 11).unwrap();
        assert_eq!(h, h2);
        assert!(matches!(
            random_3_uniform(10, 2, 0),
            Err(GenError::InvalidParameters(_))
        ));
    }
}
