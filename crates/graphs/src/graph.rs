//! Undirected simple graphs in CSR form with stable port numbers.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// Error produced when constructing a malformed [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint was `>= n`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: usize,
        /// Number of nodes in the graph.
        n: usize,
    },
    /// An edge connected a node to itself.
    SelfLoop(usize),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "edge endpoint {node} out of range for {n} nodes")
            }
            GraphError::SelfLoop(v) => write!(f, "self loop at node {v}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Incremental builder for [`Graph`].
///
/// Duplicate edges are silently deduplicated; self loops are rejected at
/// [`GraphBuilder::build`] time.
///
/// # Examples
///
/// ```
/// use lll_graphs::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// b.add_edge(2, 1); // duplicate, ignored
/// let g = b.build()?;
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.degree(1), 2);
/// # Ok::<(), lll_graphs::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: BTreeSet<(usize, usize)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` nodes.
    pub fn new(n: usize) -> GraphBuilder {
        GraphBuilder {
            n,
            edges: BTreeSet::new(),
        }
    }

    /// Adds an undirected edge `{u, v}` (idempotent).
    pub fn add_edge(&mut self, u: usize, v: usize) -> &mut Self {
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        self.edges.insert((a, b));
        self
    }

    /// Finalizes the CSR structure.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an endpoint is out of range or a self
    /// loop was added.
    pub fn build(&self) -> Result<Graph, GraphError> {
        for &(u, v) in &self.edges {
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            if v >= self.n {
                return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
            }
        }
        let edges: Vec<(usize, usize)> = self.edges.iter().copied().collect();
        let mut offsets = vec![0usize; self.n + 1];
        for &(u, v) in &edges {
            offsets[u + 1] += 1;
            offsets[v + 1] += 1;
        }
        for i in 0..self.n {
            offsets[i + 1] += offsets[i];
        }
        let mut neighbors = vec![0usize; edges.len() * 2];
        let mut edge_ids = vec![0usize; edges.len() * 2];
        let mut cursor = offsets.clone();
        for (eid, &(u, v)) in edges.iter().enumerate() {
            neighbors[cursor[u]] = v;
            edge_ids[cursor[u]] = eid;
            cursor[u] += 1;
            neighbors[cursor[v]] = u;
            edge_ids[cursor[v]] = eid;
            cursor[v] += 1;
        }
        Ok(Graph {
            offsets,
            neighbors,
            edge_ids,
            edges,
        })
    }
}

/// An immutable undirected simple graph in CSR form.
///
/// Nodes are `0..n`. Every edge has a stable id in `0..m` (edges sorted
/// lexicographically by endpoints) and each node addresses its incident
/// edges through consecutive *ports* `0..degree(v)` — the LOCAL simulator
/// uses ports as its message-addressing scheme, exactly like the standard
/// port-numbering network model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    neighbors: Vec<usize>,
    edge_ids: Vec<usize>,
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Builds a graph directly from an edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] for out-of-range endpoints or self loops.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<Graph, GraphError> {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// The empty graph on `n` nodes.
    pub fn empty(n: usize) -> Graph {
        GraphBuilder::new(n)
            .build()
            .expect("empty graph is always valid")
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Degree of node `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree over all nodes (`0` for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Neighbors of `v`, in port order.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Ids of the edges incident to `v`, in port order.
    pub fn incident_edges(&self, v: usize) -> &[usize] {
        &self.edge_ids[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Endpoints `(u, v)` with `u < v` of edge `eid`.
    pub fn edge(&self, eid: usize) -> (usize, usize) {
        self.edges[eid]
    }

    /// All edges, sorted lexicographically; the position of an edge is its
    /// id.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Id of the edge `{u, v}` if present.
    pub fn edge_id(&self, u: usize, v: usize) -> Option<usize> {
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        self.edges.binary_search(&(a, b)).ok()
    }

    /// Approximate resident heap size of this graph in bytes: the struct
    /// itself plus the capacity of every CSR buffer. Used by memory
    /// accounting (e.g. the serve daemon's cache-size gauge); it is an
    /// estimate for telemetry, not an allocator-exact figure.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Graph>()
            + self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.neighbors.capacity() * std::mem::size_of::<usize>()
            + self.edge_ids.capacity() * std::mem::size_of::<usize>()
            + self.edges.capacity() * std::mem::size_of::<(usize, usize)>()
    }

    /// A structural fingerprint of the graph: a 64-bit FNV-1a hash over
    /// the node count and the canonical (sorted) edge list.
    ///
    /// The fingerprint depends only on the labeled *shape* of the graph —
    /// never on RNG seeds, id shuffles, or any execution state — so two
    /// instances whose dependency graphs were built from the same
    /// structure hash identically. Because the edge list is canonical and
    /// the CSR layout (ports, edge ids, twin-port involution) is a pure
    /// function of it, equal fingerprints mean every derived topology
    /// artifact (colorings, schedules, slot tables) is reusable across
    /// the graphs. Equal hashes do not *prove* equal graphs; collision-
    /// sensitive callers (e.g. the `lll-serve` topology cache) must
    /// confirm with a full structure comparison before reuse.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h = (h ^ u64::from(byte)).wrapping_mul(PRIME);
            }
        };
        mix(self.num_nodes() as u64);
        mix(self.edges.len() as u64);
        for &(u, v) in &self.edges {
            mix(u as u64);
            mix(v as u64);
        }
        h
    }

    /// The neighbor reached from `v` through port `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree(v)`.
    pub fn neighbor_at(&self, v: usize, port: usize) -> usize {
        self.neighbors(v)[port]
    }

    /// The port of `v` that leads to `u`, if `{u, v}` is an edge.
    pub fn port_to(&self, v: usize, u: usize) -> Option<usize> {
        self.neighbors(v).iter().position(|&w| w == u)
    }

    /// Whether `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.edge_id(u, v).is_some()
    }

    /// Total number of port slots, `Σ_v deg(v) = 2·num_edges`.
    ///
    /// This is the size of the flat per-port message slabs used by the
    /// simulator's parallel engine: slot `port_slot(v, p)` belongs to
    /// port `p` of node `v`.
    pub fn num_ports(&self) -> usize {
        self.neighbors.len()
    }

    /// CSR slot offsets per node: node `v` owns the contiguous slot
    /// range `port_offsets()[v]..port_offsets()[v + 1]` (length `n + 1`).
    pub fn port_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The global slot index of port `port` of node `v` in CSR order.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `port >= degree(v)`.
    pub fn port_slot(&self, v: usize, port: usize) -> usize {
        debug_assert!(port < self.degree(v), "port {port} out of range at {v}");
        self.offsets[v] + port
    }

    /// The twin-slot table: for every slot `s = port_slot(v, p)` with
    /// `u = neighbor_at(v, p)`, `twin[s] = port_slot(u, q)` where
    /// `neighbor_at(u, q) == v`. A message written by `u` into its own
    /// slot `twin[s]` is exactly the message `v` receives on port `p`,
    /// so delivery is an O(1) lookup instead of an O(deg) `port_to`
    /// scan. Built in O(num_ports) time via edge ids.
    pub fn twin_ports(&self) -> Vec<usize> {
        let mut first_slot = vec![usize::MAX; self.edges.len()];
        let mut twin = vec![usize::MAX; self.neighbors.len()];
        for slot in 0..self.neighbors.len() {
            let eid = self.edge_ids[slot];
            if first_slot[eid] == usize::MAX {
                first_slot[eid] = slot;
            } else {
                twin[slot] = first_slot[eid];
                twin[first_slot[eid]] = slot;
            }
        }
        twin
    }

    /// The square graph `G²`: same nodes, edges between nodes at distance
    /// 1 or 2. A proper coloring of `G²` is exactly a 2-hop (distance-2)
    /// coloring of `G`, as used in the proof of Corollary 1.4.
    pub fn square(&self) -> Graph {
        let mut b = GraphBuilder::new(self.num_nodes());
        for v in 0..self.num_nodes() {
            for &u in self.neighbors(v) {
                b.add_edge(v, u);
                for &w in self.neighbors(u) {
                    if w != v {
                        b.add_edge(v, w);
                    }
                }
            }
        }
        b.build().expect("square of a valid graph is valid")
    }

    /// The line graph `L(G)`: one node per edge of `G`, adjacent iff the
    /// edges share an endpoint. Node `i` of `L(G)` corresponds to edge id
    /// `i` of `G`. Used to reduce edge coloring (Corollary 1.2) to vertex
    /// coloring.
    pub fn line_graph(&self) -> Graph {
        let mut b = GraphBuilder::new(self.num_edges());
        for v in 0..self.num_nodes() {
            let inc = self.incident_edges(v);
            for i in 0..inc.len() {
                for j in i + 1..inc.len() {
                    b.add_edge(inc[i], inc[j]);
                }
            }
        }
        b.build().expect("line graph of a valid graph is valid")
    }

    /// Breadth-first distances from `src` (`usize::MAX` for unreachable
    /// nodes).
    pub fn bfs_distances(&self, src: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.num_nodes()];
        dist[src] = 0;
        let mut queue = VecDeque::from([src]);
        while let Some(v) = queue.pop_front() {
            for &u in self.neighbors(v) {
                if dist[u] == usize::MAX {
                    dist[u] = dist[v] + 1;
                    queue.push_back(u);
                }
            }
        }
        dist
    }

    /// Whether the graph is connected (the empty graph and single node are
    /// connected).
    pub fn is_connected(&self) -> bool {
        if self.num_nodes() <= 1 {
            return true;
        }
        self.bfs_distances(0).iter().all(|&d| d != usize::MAX)
    }

    /// Connected components: `component[v]` is the 0-based index of
    /// `v`'s component (components numbered by smallest contained node).
    pub fn connected_components(&self) -> Vec<usize> {
        let n = self.num_nodes();
        let mut component = vec![usize::MAX; n];
        let mut next = 0;
        for start in 0..n {
            if component[start] != usize::MAX {
                continue;
            }
            let id = next;
            next += 1;
            let mut queue = VecDeque::from([start]);
            component[start] = id;
            while let Some(v) = queue.pop_front() {
                for &u in self.neighbors(v) {
                    if component[u] == usize::MAX {
                        component[u] = id;
                        queue.push_back(u);
                    }
                }
            }
        }
        component
    }

    /// The induced subgraph on `nodes`, together with the mapping from
    /// new indices back to the original nodes.
    ///
    /// Duplicate entries in `nodes` are deduplicated; order is
    /// normalized ascending.
    ///
    /// # Panics
    ///
    /// Panics if a node is out of range.
    pub fn induced_subgraph(&self, nodes: &[usize]) -> (Graph, Vec<usize>) {
        let mut keep: Vec<usize> = nodes.to_vec();
        keep.sort_unstable();
        keep.dedup();
        for &v in &keep {
            assert!(v < self.num_nodes(), "node {v} out of range");
        }
        let index_of: std::collections::BTreeMap<usize, usize> =
            keep.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut b = GraphBuilder::new(keep.len());
        for &(u, v) in &self.edges {
            if let (Some(&iu), Some(&iv)) = (index_of.get(&u), index_of.get(&v)) {
                b.add_edge(iu, iv);
            }
        }
        (
            b.build()
                .expect("induced subgraph of a valid graph is valid"),
            keep,
        )
    }

    /// Validates a vertex coloring: proper iff no edge is monochromatic.
    pub fn is_proper_coloring(&self, colors: &[usize]) -> bool {
        colors.len() == self.num_nodes() && self.edges.iter().all(|&(u, v)| colors[u] != colors[v])
    }

    /// Validates a distance-2 coloring: proper on `G` and no two neighbors
    /// of any node share a color.
    pub fn is_distance2_coloring(&self, colors: &[usize]) -> bool {
        if colors.len() != self.num_nodes() {
            return false;
        }
        self.square().is_proper_coloring(colors)
    }

    /// Validates an edge coloring indexed by edge id: proper iff no two
    /// edges sharing an endpoint have the same color.
    pub fn is_proper_edge_coloring(&self, colors: &[usize]) -> bool {
        if colors.len() != self.num_edges() {
            return false;
        }
        (0..self.num_nodes()).all(|v| {
            let inc = self.incident_edges(v);
            let mut seen: Vec<usize> = inc.iter().map(|&e| colors[e]).collect();
            seen.sort_unstable();
            seen.windows(2).all(|w| w[0] != w[1])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn csr_basics() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.max_degree(), 2);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
            let mut nbrs = g.neighbors(v).to_vec();
            nbrs.sort_unstable();
            let expect: Vec<usize> = (0..3).filter(|&u| u != v).collect();
            assert_eq!(nbrs, expect);
        }
    }

    #[test]
    fn fingerprint_tracks_structure_not_construction_order() {
        let g = triangle();
        // Same structure, different insertion order and edge direction.
        let h = Graph::from_edges(3, [(2, 1), (0, 2), (1, 0)]).unwrap();
        assert_eq!(g.fingerprint(), h.fingerprint());
        // Structure changes move the fingerprint.
        let path = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert_ne!(g.fingerprint(), path.fingerprint());
        let bigger = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_ne!(g.fingerprint(), bigger.fingerprint());
        // Relabelings are distinct shapes by design.
        let relabeled = Graph::from_edges(4, [(0, 1), (1, 3), (0, 3)]).unwrap();
        assert_ne!(bigger.fingerprint(), relabeled.fingerprint());
        assert_ne!(Graph::empty(2).fingerprint(), Graph::empty(3).fingerprint());
    }

    #[test]
    fn edge_ids_and_ports_are_consistent() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        for eid in 0..g.num_edges() {
            let (u, v) = g.edge(eid);
            assert_eq!(g.edge_id(u, v), Some(eid));
            assert_eq!(g.edge_id(v, u), Some(eid));
            let pu = g.port_to(u, v).unwrap();
            assert_eq!(g.neighbor_at(u, pu), v);
            assert_eq!(g.incident_edges(u)[pu], eid);
        }
        assert_eq!(g.edge_id(0, 2), None);
        assert!(!g.has_edge(1, 3));
    }

    #[test]
    fn rejects_malformed_input() {
        assert_eq!(
            Graph::from_edges(2, [(0, 2)]),
            Err(GraphError::NodeOutOfRange { node: 2, n: 2 })
        );
        assert_eq!(Graph::from_edges(2, [(1, 1)]), Err(GraphError::SelfLoop(1)));
    }

    #[test]
    fn deduplicates_edges() {
        let g = Graph::from_edges(2, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn square_of_path() {
        // 0 - 1 - 2 - 3: square adds {0,2}, {1,3}
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let g2 = g.square();
        assert_eq!(g2.num_edges(), 5);
        assert!(g2.has_edge(0, 2));
        assert!(g2.has_edge(1, 3));
        assert!(!g2.has_edge(0, 3));
    }

    #[test]
    fn line_graph_of_star() {
        // K_{1,3}: line graph is a triangle.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        let lg = g.line_graph();
        assert_eq!(lg.num_nodes(), 3);
        assert_eq!(lg.num_edges(), 3);
    }

    #[test]
    fn bfs_and_connectivity() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let d = g.bfs_distances(0);
        assert_eq!(d[..3], [0, 1, 2]);
        assert_eq!(d[3], usize::MAX);
        assert!(!g.is_connected());
        assert!(triangle().is_connected());
        assert!(Graph::empty(1).is_connected());
        assert!(Graph::empty(0).is_connected());
    }

    #[test]
    fn connected_components_numbering() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (4, 5)]).unwrap();
        assert_eq!(g.connected_components(), vec![0, 0, 0, 1, 2, 2]);
        assert_eq!(Graph::empty(3).connected_components(), vec![0, 1, 2]);
    }

    #[test]
    fn induced_subgraphs() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let (sub, mapping) = g.induced_subgraph(&[0, 1, 2, 2]);
        assert_eq!(mapping, vec![0, 1, 2]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 2); // path 0-1-2; edge (4,0) dropped
        assert!(sub.has_edge(0, 1) && sub.has_edge(1, 2) && !sub.has_edge(0, 2));
        let (empty, m) = g.induced_subgraph(&[]);
        assert_eq!(empty.num_nodes(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn coloring_validation() {
        let g = triangle();
        assert!(g.is_proper_coloring(&[0, 1, 2]));
        assert!(!g.is_proper_coloring(&[0, 0, 1]));
        assert!(!g.is_proper_coloring(&[0, 1])); // wrong length
        let path = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert!(path.is_proper_coloring(&[0, 1, 0]));
        assert!(!path.is_distance2_coloring(&[0, 1, 0]));
        assert!(path.is_distance2_coloring(&[0, 1, 2]));
    }

    #[test]
    fn edge_coloring_validation() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        // edges sorted: (0,1)=0, (1,2)=1, (2,3)=2
        assert!(g.is_proper_edge_coloring(&[0, 1, 0]));
        assert!(!g.is_proper_edge_coloring(&[0, 0, 1]));
        assert!(!g.is_proper_edge_coloring(&[0, 1]));
    }

    #[test]
    fn port_slots_cover_csr_ranges() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (1, 2), (3, 0)]).unwrap();
        assert_eq!(g.num_ports(), 2 * g.num_edges());
        assert_eq!(g.port_offsets().len(), g.num_nodes() + 1);
        let mut seen = vec![false; g.num_ports()];
        for v in 0..g.num_nodes() {
            assert_eq!(g.port_offsets()[v + 1] - g.port_offsets()[v], g.degree(v));
            for p in 0..g.degree(v) {
                let s = g.port_slot(v, p);
                assert!(!seen[s], "slot {s} assigned twice");
                seen[s] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "slots must tile 0..num_ports");
        // Isolated node 4 owns an empty range.
        assert_eq!(g.port_offsets()[4], g.port_offsets()[5]);
    }

    #[test]
    fn twin_ports_invert_adjacency() {
        for g in [
            triangle(),
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 4)]).unwrap(),
        ] {
            let twin = g.twin_ports();
            assert_eq!(twin.len(), g.num_ports());
            for v in 0..g.num_nodes() {
                for p in 0..g.degree(v) {
                    let u = g.neighbor_at(v, p);
                    let s = g.port_slot(v, p);
                    let t = twin[s];
                    // The twin slot belongs to u and points back at v.
                    let q = t - g.port_offsets()[u];
                    assert_eq!(g.neighbor_at(u, q), v);
                    assert_eq!(twin[t], s, "twin must be an involution");
                }
            }
        }
    }
}
