//! Round-trip tests for the optional Serde support (feature `serde`).
#![cfg(feature = "serde")]

use lll_graphs::gen::{hyper_ring, random_regular, torus};
use lll_graphs::{Graph, Hypergraph};

#[test]
fn graph_json_roundtrip() {
    for g in [
        torus(4, 4),
        random_regular(20, 3, 1).unwrap(),
        Graph::empty(5),
    ] {
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
    }
}

#[test]
fn graph_deserialization_validates() {
    // Self loop and out-of-range node must be rejected.
    assert!(serde_json::from_str::<Graph>(r#"{"num_nodes":3,"edges":[[1,1]]}"#).is_err());
    assert!(serde_json::from_str::<Graph>(r#"{"num_nodes":3,"edges":[[0,7]]}"#).is_err());
}

#[test]
fn hypergraph_json_roundtrip() {
    let h = hyper_ring(9);
    let json = serde_json::to_string(&h).unwrap();
    let back: Hypergraph = serde_json::from_str(&json).unwrap();
    assert_eq!(back, h);
}

#[test]
fn hypergraph_deserialization_validates() {
    assert!(serde_json::from_str::<Hypergraph>(r#"{"num_nodes":2,"edges":[[0,5]]}"#).is_err());
    assert!(serde_json::from_str::<Hypergraph>(r#"{"num_nodes":2,"edges":[[]]}"#).is_err());
}
