//! Property tests for graphs, hypergraphs and generators.

use lll_graphs::gen::{gnp, hyper_ring, random_3_uniform, random_regular, ring, torus};
use lll_graphs::{Graph, GraphBuilder, Hyperedge, Hypergraph};
use proptest::prelude::*;

prop_compose! {
    fn arb_edge_list()(n in 2usize..24, edges in prop::collection::vec((0usize..24, 0usize..24), 0..60)) -> (usize, Vec<(usize, usize)>) {
        let filtered = edges.into_iter().filter(|&(u, v)| u != v && u < n && v < n).collect();
        (n, filtered)
    }
}

proptest! {
    #[test]
    fn csr_structure_is_consistent((n, edges) in arb_edge_list()) {
        let g = Graph::from_edges(n, edges.clone()).expect("filtered edges are valid");
        // Handshake lemma.
        let degree_sum: usize = (0..n).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
        // Every listed edge is present with a consistent id and ports.
        for &(u, v) in &edges {
            prop_assert!(g.has_edge(u, v));
            let eid = g.edge_id(u, v).expect("edge present");
            let (a, b) = g.edge(eid);
            prop_assert_eq!((a.min(b), a.max(b)), (u.min(v), u.max(v)));
            let p = g.port_to(u, v).expect("port exists");
            prop_assert_eq!(g.neighbor_at(u, p), v);
        }
        // Adjacency is symmetric.
        for v in 0..n {
            for &u in g.neighbors(v) {
                prop_assert!(g.neighbors(u).contains(&v));
            }
        }
    }

    #[test]
    fn square_contains_graph_and_two_paths((n, edges) in arb_edge_list()) {
        let g = Graph::from_edges(n, edges).expect("valid");
        let g2 = g.square();
        for &(u, v) in g.edges() {
            prop_assert!(g2.has_edge(u, v));
        }
        // Distance-2 pairs are exactly the extra edges.
        for u in 0..n {
            for v in (u + 1)..n {
                let dist = g.bfs_distances(u)[v];
                prop_assert_eq!(g2.has_edge(u, v), dist <= 2 && dist > 0, "pair ({}, {})", u, v);
            }
        }
    }

    #[test]
    fn line_graph_counts((n, edges) in arb_edge_list()) {
        let g = Graph::from_edges(n, edges).expect("valid");
        let lg = g.line_graph();
        prop_assert_eq!(lg.num_nodes(), g.num_edges());
        // Each node of G contributes C(deg, 2) line-graph edges; sharing
        // two endpoints is impossible in a simple graph, so the sum is
        // exact.
        let expect: usize = (0..n).map(|v| g.degree(v) * (g.degree(v).saturating_sub(1)) / 2).sum();
        prop_assert_eq!(lg.num_edges(), expect);
    }

    #[test]
    fn builder_is_idempotent((n, edges) in arb_edge_list()) {
        let mut b1 = GraphBuilder::new(n);
        let mut b2 = GraphBuilder::new(n);
        for &(u, v) in &edges {
            b1.add_edge(u, v);
            b2.add_edge(u, v);
            b2.add_edge(v, u); // duplicates in both orientations
        }
        prop_assert_eq!(b1.build().unwrap(), b2.build().unwrap());
    }

    #[test]
    fn random_regular_is_simple_and_regular(n in 6usize..40, seed in 0u64..50) {
        let d = 3 + (seed as usize % 2); // 3 or 4
        prop_assume!((n * d).is_multiple_of(2));
        let g = random_regular(n, d, seed).expect("feasible parameters");
        prop_assert!((0..n).all(|v| g.degree(v) == d));
        prop_assert_eq!(g.num_edges(), n * d / 2);
    }

    #[test]
    fn gnp_edge_count_within_bounds(n in 2usize..30, seed in 0u64..20) {
        let g = gnp(n, 0.5, seed);
        prop_assert!(g.num_edges() <= n * (n - 1) / 2);
        prop_assert!(g.max_degree() < n);
    }

    #[test]
    fn random_3_uniform_degrees_exact(k in 2usize..12, seed in 0u64..20) {
        let n = 3 * k;
        let h = random_3_uniform(n, 3, seed).expect("feasible parameters");
        prop_assert!((0..n).all(|v| h.degree(v) == 3));
        prop_assert_eq!(h.num_edges(), n);
        // Dependency graph degree bounded by 2 * node degree.
        prop_assert!(h.max_dependency_degree() <= 6);
    }

    #[test]
    fn hypergraph_dependency_graph_is_exact(nodes in 3usize..12, seed in 0u64..30) {
        // Random small hypergraph from triples of a seeded walk.
        let mut edges = Vec::new();
        let mut state = seed;
        for _ in 0..nodes {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (state >> 10) as usize % nodes;
            let b = (state >> 20) as usize % nodes;
            let c = (state >> 30) as usize % nodes;
            let e = Hyperedge::new([a, b, c]);
            if e.rank() >= 2 {
                edges.push(e);
            }
        }
        prop_assume!(!edges.is_empty());
        let h = Hypergraph::new(nodes, edges.clone(), 3).expect("valid");
        let dep = h.dependency_graph();
        for u in 0..nodes {
            for v in (u + 1)..nodes {
                let share = edges.iter().any(|e| e.contains(u) && e.contains(v));
                prop_assert_eq!(dep.has_edge(u, v), share, "pair ({}, {})", u, v);
            }
        }
    }
}

#[test]
fn deterministic_topologies_have_expected_girth_like_structure() {
    // Spot integration checks that don't fit proptest well.
    let t = torus(5, 4);
    assert_eq!(t.num_edges(), 40);
    let r = ring(9);
    assert_eq!(r.bfs_distances(0)[4], 4);
    assert_eq!(r.bfs_distances(0)[5], 4);
    let h = hyper_ring(9);
    assert_eq!(h.max_dependency_degree(), 4);
}
