//! Bounded-intersection SAT via the rank-3 fixer.
//!
//! A CNF formula is the canonical LLL instance: clauses are bad events
//! ("clause falsified"), boolean variables are the random variables, and
//! a clause of width `w` is falsified by a uniform assignment with
//! probability `2^-w`. When every variable occurs in at most 3 clauses
//! (rank ≤ 3) and every clause intersects at most `d < w_min` other
//! clauses, the formula satisfies `p < 2^-d` and [`solve`] finds a
//! satisfying assignment **deterministically** — a by-product of the
//! paper's machinery that also makes a nice end-to-end example.

use std::fmt;
use std::str::FromStr;

use lll_core::{BuildError, Fixer3, FixerError, Instance, InstanceBuilder};
use lll_numeric::Num;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::AppError;

/// A CNF formula with 1-based DIMACS-style literals (`-3` = ¬x₃).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Vec<i32>>,
}

impl CnfFormula {
    /// Creates a formula, validating literals.
    ///
    /// # Errors
    ///
    /// Returns [`AppError::BadInput`] on zero literals, out-of-range
    /// variables, empty clauses, or clauses containing a variable twice
    /// (tautological or duplicated literals).
    pub fn new(num_vars: usize, clauses: Vec<Vec<i32>>) -> Result<CnfFormula, AppError> {
        for (i, clause) in clauses.iter().enumerate() {
            if clause.is_empty() {
                return Err(AppError::BadInput(format!("clause {i} is empty")));
            }
            let mut vars: Vec<i32> = clause.iter().map(|&l| l.abs()).collect();
            vars.sort_unstable();
            if vars.windows(2).any(|w| w[0] == w[1]) {
                return Err(AppError::BadInput(format!("clause {i} repeats a variable")));
            }
            for &l in clause {
                if l == 0 || l.unsigned_abs() as usize > num_vars {
                    return Err(AppError::BadInput(format!(
                        "clause {i} has bad literal {l}"
                    )));
                }
            }
        }
        Ok(CnfFormula { num_vars, clauses })
    }

    /// Number of boolean variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<i32>] {
        &self.clauses
    }

    /// Maximum number of clauses any variable occurs in (the LLL rank).
    pub fn max_occurrences(&self) -> usize {
        let mut occ = vec![0usize; self.num_vars];
        for clause in &self.clauses {
            for &l in clause {
                occ[l.unsigned_abs() as usize - 1] += 1;
            }
        }
        occ.into_iter().max().unwrap_or(0)
    }

    /// Evaluates the formula under an assignment (`assignment[i]` is the
    /// value of variable `i+1`).
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from `num_vars`.
    pub fn is_satisfied(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars, "one value per variable");
        self.clauses.iter().all(|clause| {
            clause.iter().any(|&l| {
                let val = assignment[l.unsigned_abs() as usize - 1];
                if l > 0 {
                    val
                } else {
                    !val
                }
            })
        })
    }

    /// Builds the LLL instance of this formula (events = clauses).
    ///
    /// # Errors
    ///
    /// Returns [`AppError::BadInput`] if a variable occurs nowhere (it
    /// would affect no event) — such variables should be removed first.
    pub fn to_instance<T: Num>(&self) -> Result<Instance<T>, AppError> {
        let mut affects: Vec<Vec<usize>> = vec![Vec::new(); self.num_vars];
        for (ci, clause) in self.clauses.iter().enumerate() {
            for &l in clause {
                affects[l.unsigned_abs() as usize - 1].push(ci);
            }
        }
        let mut b = InstanceBuilder::<T>::new(self.clauses.len());
        for (x, a) in affects.iter().enumerate() {
            if a.is_empty() {
                return Err(AppError::BadInput(format!(
                    "variable {} occurs nowhere",
                    x + 1
                )));
            }
            b.add_uniform_variable(a, 2);
        }
        for (ci, clause) in self.clauses.iter().enumerate() {
            // Falsified iff every literal is false; value 1 = true.
            let lits: Vec<(usize, usize)> = clause
                .iter()
                .map(|&l| (l.unsigned_abs() as usize - 1, usize::from(l < 0)))
                .collect();
            b.set_event_predicate(ci, move |vals| {
                lits.iter().all(|&(x, falsifying)| vals[x] == falsifying)
            });
        }
        b.to_instance_result()
    }
}

/// Small extension trait-free helper so `to_instance` can map the build
/// error uniformly.
trait BuildExt<T> {
    fn to_instance_result(&self) -> Result<Instance<T>, AppError>;
}

impl<T: Num> BuildExt<T> for InstanceBuilder<T> {
    fn to_instance_result(&self) -> Result<Instance<T>, AppError> {
        self.build()
            .map_err(|e: BuildError| AppError::BadInput(e.to_string()))
    }
}

impl FromStr for CnfFormula {
    type Err = AppError;

    /// Parses DIMACS CNF: `c` comment lines, a `p cnf <vars> <clauses>`
    /// header, then whitespace-separated literals with `0` terminating
    /// each clause.
    fn from_str(s: &str) -> Result<CnfFormula, AppError> {
        let mut num_vars: Option<usize> = None;
        let mut declared_clauses = 0usize;
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        let mut current: Vec<i32> = Vec::new();
        for line in s.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                if num_vars.is_some() {
                    return Err(AppError::BadInput("duplicate DIMACS header".to_owned()));
                }
                let mut parts = rest.split_whitespace();
                if parts.next() != Some("cnf") {
                    return Err(AppError::BadInput("header is not `p cnf`".to_owned()));
                }
                let nv = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| AppError::BadInput("bad variable count".to_owned()))?;
                declared_clauses = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| AppError::BadInput("bad clause count".to_owned()))?;
                num_vars = Some(nv);
                continue;
            }
            for tok in line.split_whitespace() {
                let lit: i32 = tok
                    .parse()
                    .map_err(|_| AppError::BadInput(format!("bad literal token {tok:?}")))?;
                if lit == 0 {
                    clauses.push(std::mem::take(&mut current));
                } else {
                    current.push(lit);
                }
            }
        }
        let num_vars =
            num_vars.ok_or_else(|| AppError::BadInput("missing `p cnf` header".to_owned()))?;
        if !current.is_empty() {
            return Err(AppError::BadInput("unterminated final clause".to_owned()));
        }
        if clauses.len() != declared_clauses {
            return Err(AppError::BadInput(format!(
                "header declares {declared_clauses} clauses, found {}",
                clauses.len()
            )));
        }
        CnfFormula::new(num_vars, clauses)
    }
}

impl fmt::Display for CnfFormula {
    /// Serializes to DIMACS CNF.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "p cnf {} {}", self.num_vars, self.clauses.len())?;
        for clause in &self.clauses {
            for lit in clause {
                write!(f, "{lit} ")?;
            }
            writeln!(f, "0")?;
        }
        Ok(())
    }
}

/// Error produced by the SAT solver.
#[derive(Debug, Clone, PartialEq)]
pub enum SatError {
    /// The formula is structurally unusable (validation message inside).
    BadFormula(AppError),
    /// The formula does not meet the solver's guarantee conditions
    /// (rank ≤ 3 and `p < 2^-d`): the underlying fixer refused.
    OutOfRegime(FixerError),
}

impl std::fmt::Display for SatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SatError::BadFormula(e) => write!(f, "bad formula: {e}"),
            SatError::OutOfRegime(e) => write!(f, "formula outside the LLL regime: {e}"),
        }
    }
}

impl std::error::Error for SatError {}

/// Deterministically solves a bounded-intersection CNF formula with the
/// rank-3 fixer.
///
/// Requirements (checked): every variable occurs in ≤ 3 clauses and the
/// LLL criterion `2^-w_min < 2^-d` holds, where `d` is the maximum
/// number of clauses any clause shares a variable with.
///
/// # Errors
///
/// [`SatError::BadFormula`] for malformed input and
/// [`SatError::OutOfRegime`] when the guarantee conditions fail.
pub fn solve(cnf: &CnfFormula) -> Result<Vec<bool>, SatError> {
    solve_recorded(cnf, &mut lll_obs::NullRecorder)
}

/// [`solve`] with a flight recorder: the rank-3 fixing process streams a
/// `fix_run_start`/`fix_step`.../`fix_run_end` event bracket through
/// `rec`, one `fix_step` per CNF variable in index order.
///
/// # Errors
///
/// Same as [`solve`].
pub fn solve_recorded<R: lll_obs::Recorder>(
    cnf: &CnfFormula,
    rec: &mut R,
) -> Result<Vec<bool>, SatError> {
    let inst: Instance<f64> = cnf.to_instance().map_err(SatError::BadFormula)?;
    let order = 0..inst.num_variables();
    let report = Fixer3::new(&inst)
        .map_err(SatError::OutOfRegime)?
        .run_recorded(order, rec)
        .expect("below the threshold every cost is finite");
    debug_assert!(
        report.is_success(),
        "Theorem 1.3 guarantees success below the threshold"
    );
    Ok(report.assignment().iter().map(|&v| v == 1).collect())
}

/// Generates a satisfiable-by-construction bounded-intersection formula:
/// `num_clauses` clauses of width `width` arranged on a ring where the
/// shared variable `s_i` occurs in clauses `{i, i+1, i+2}` (so every
/// shared variable has rank 3 and every clause intersects exactly 4
/// others), padded with private variables and random polarities.
///
/// # Panics
///
/// Panics if `width < 4` (the criterion `width > 4` needs room) or
/// `num_clauses < 5`.
pub fn ring_formula(num_clauses: usize, width: usize, seed: u64) -> CnfFormula {
    assert!(width >= 4, "need width >= 4");
    assert!(num_clauses >= 5, "need at least 5 clauses on the ring");
    let mut rng = StdRng::seed_from_u64(seed);
    let shared = num_clauses; // s_0..s_{m-1} are variables 1..m
    let privates_per_clause = width - 3;
    let num_vars = shared + num_clauses * privates_per_clause;
    let mut clauses = Vec::with_capacity(num_clauses);
    let mut next_private = shared;
    for i in 0..num_clauses {
        let mut clause = Vec::with_capacity(width);
        for back in 0..3usize {
            let s = (i + num_clauses - back) % num_clauses;
            let lit = (s + 1) as i32;
            clause.push(if rng.random::<bool>() { lit } else { -lit });
        }
        for _ in 0..privates_per_clause {
            next_private += 1;
            let lit = next_private as i32;
            clause.push(if rng.random::<bool>() { lit } else { -lit });
        }
        clauses.push(clause);
    }
    CnfFormula::new(num_vars, clauses).expect("generated formula is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_validation() {
        assert!(CnfFormula::new(2, vec![vec![1, -2]]).is_ok());
        assert!(CnfFormula::new(2, vec![vec![]]).is_err());
        assert!(CnfFormula::new(2, vec![vec![0]]).is_err());
        assert!(CnfFormula::new(2, vec![vec![3]]).is_err());
        assert!(CnfFormula::new(2, vec![vec![1, -1]]).is_err());
        assert!(CnfFormula::new(2, vec![vec![2, 2]]).is_err());
    }

    #[test]
    fn recorded_solve_matches_and_counts_steps() {
        let cnf = ring_formula(12, 6, 5);
        let mut rec = lll_obs::CounterRecorder::new();
        let recorded = solve_recorded(&cnf, &mut rec).unwrap();
        assert_eq!(recorded, solve(&cnf).unwrap());
        assert_eq!(rec.fix_runs, 1);
        assert_eq!(rec.fix_steps, cnf.num_vars());
    }

    #[test]
    fn satisfaction_semantics() {
        let cnf = CnfFormula::new(3, vec![vec![1, 2], vec![-1, 3], vec![-2, -3]]).unwrap();
        assert!(cnf.is_satisfied(&[true, false, true]));
        assert!(!cnf.is_satisfied(&[false, false, true]));
        assert_eq!(cnf.max_occurrences(), 2);
    }

    #[test]
    fn ring_formula_structure() {
        let cnf = ring_formula(10, 6, 3);
        assert_eq!(cnf.clauses().len(), 10);
        assert!(cnf.clauses().iter().all(|c| c.len() == 6));
        assert_eq!(cnf.max_occurrences(), 3);
        let inst: Instance<f64> = cnf.to_instance().unwrap();
        assert_eq!(inst.max_dependency_degree(), 4);
        assert_eq!(inst.max_rank(), 3);
        // p = 2^-6, d = 4: criterion value 2^-2.
        assert!((inst.criterion_value() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn solves_ring_formulas() {
        for seed in 0..5 {
            let cnf = ring_formula(20, 5, seed);
            let assignment = solve(&cnf).unwrap();
            assert!(cnf.is_satisfied(&assignment), "seed {seed}");
        }
    }

    #[test]
    fn width4_is_out_of_regime() {
        // width 4 = d: p·2^d = 1 — exactly at the threshold, refused.
        let cnf = ring_formula(10, 4, 0);
        assert!(matches!(solve(&cnf), Err(SatError::OutOfRegime(_))));
    }

    #[test]
    fn dimacs_roundtrip() {
        let cnf = ring_formula(8, 5, 1);
        let text = cnf.to_string();
        let parsed: CnfFormula = text.parse().unwrap();
        assert_eq!(parsed, cnf);
    }

    #[test]
    fn dimacs_parsing_accepts_comments_and_multiline_clauses() {
        let text = "c a comment\nc another\np cnf 3 2\n1 -2\n3 0\n-1 2 -3 0\n";
        let cnf: CnfFormula = text.parse().unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.clauses(), &[vec![1, -2, 3], vec![-1, 2, -3]]);
    }

    #[test]
    fn dimacs_parsing_rejects_malformed_input() {
        assert!("1 2 0".parse::<CnfFormula>().is_err()); // no header
        assert!("p cnf 2 1\n1 2".parse::<CnfFormula>().is_err()); // unterminated
        assert!("p cnf 2 2\n1 0".parse::<CnfFormula>().is_err()); // count mismatch
        assert!("p cnf 2 1\n7 0".parse::<CnfFormula>().is_err()); // out of range
        assert!("p dnf 2 1\n1 0".parse::<CnfFormula>().is_err()); // wrong format tag
        assert!("p cnf 2 1\nx 0".parse::<CnfFormula>().is_err()); // bad token
    }

    #[test]
    fn rank4_is_out_of_regime() {
        // A variable in 4 clauses -> rank 4.
        let cnf = CnfFormula::new(
            9,
            vec![
                vec![1, 2, 3, 4, 5],
                vec![1, -2, 6, 7, -8],
                vec![-1, 3, -6, 9, 5],
                vec![1, -4, -7, 8, -9],
            ],
        )
        .unwrap();
        assert_eq!(cnf.max_occurrences(), 4);
        assert!(matches!(solve(&cnf), Err(SatError::OutOfRegime(_))));
    }
}
