//! Sinkless orientation — the problem *at* the sharp threshold.
//!
//! Orient every edge of a graph such that no node has all of its edges
//! pointing inward. With one fair coin per edge the bad event "node `v`
//! is a sink" has probability exactly `2^-deg(v)`, and the dependency
//! degree of the event equals `deg(v)`; on a `δ`-regular graph the
//! criterion value is `p·2^d = 2^-δ·2^δ = 1` — *exactly* the threshold.
//! This is the instance family behind the Ω(log log n) randomized and
//! Ω(log n) deterministic lower bounds the paper cites, and experiment
//! E9 uses it as the boundary witness: the deterministic fixers refuse
//! it (criterion check) while Moser–Tardos still solves it whenever the
//! classic criterion `e·p·(d+1) < 1` holds (δ ≥ 4).

use lll_core::{BuildError, Instance, InstanceBuilder};
use lll_graphs::Graph;
use lll_numeric::Num;

use crate::AppError;

/// Orientation of one edge: value `0` points the edge toward its
/// smaller-indexed endpoint, value `1` toward the larger.
pub const TOWARD_MIN: usize = 0;

/// Builds the sinkless-orientation LLL instance of a graph: one fair
/// binary variable per edge, one bad event ("is a sink") per node.
///
/// # Errors
///
/// Returns [`AppError::BadInput`] if the graph has an isolated node
/// (its sink event would be a certain event over no variables).
pub fn sinkless_orientation_instance<T: Num>(g: &Graph) -> Result<Instance<T>, AppError> {
    if (0..g.num_nodes()).any(|v| g.degree(v) == 0) {
        return Err(AppError::BadInput(
            "isolated node can never be non-sink".to_owned(),
        ));
    }
    let mut b = InstanceBuilder::<T>::new(g.num_nodes());
    // Variable x_e for edge id e; affects both endpoints.
    let vars: Vec<usize> = (0..g.num_edges())
        .map(|eid| {
            let (u, v) = g.edge(eid);
            b.add_uniform_variable(&[u, v], 2)
        })
        .collect();
    for v in 0..g.num_nodes() {
        // v is a sink iff every incident edge points toward v.
        let incident: Vec<(usize, usize)> = g
            .incident_edges(v)
            .iter()
            .map(|&eid| {
                let (a, _) = g.edge(eid);
                let toward_v = if v == a { TOWARD_MIN } else { 1 - TOWARD_MIN };
                (vars[eid], toward_v)
            })
            .collect();
        b.set_event_predicate(v, move |vals| {
            incident.iter().all(|&(x, toward_v)| vals[x] == toward_v)
        });
    }
    b.build()
        .map_err(|e: BuildError| AppError::BadInput(e.to_string()))
}

/// Decodes an assignment into an orientation: `orientation[eid]` is the
/// node edge `eid` points *to* (the head).
pub fn orientation_from_assignment(g: &Graph, assignment: &[usize]) -> Vec<usize> {
    assert_eq!(assignment.len(), g.num_edges(), "one value per edge");
    (0..g.num_edges())
        .map(|eid| {
            let (u, v) = g.edge(eid);
            if assignment[eid] == TOWARD_MIN {
                u
            } else {
                v
            }
        })
        .collect()
}

/// Nodes that are sinks under the given orientation (heads per edge id).
pub fn sinks(g: &Graph, orientation: &[usize]) -> Vec<usize> {
    assert_eq!(orientation.len(), g.num_edges(), "one head per edge");
    (0..g.num_nodes())
        .filter(|&v| {
            g.degree(v) > 0 && g.incident_edges(v).iter().all(|&eid| orientation[eid] == v)
        })
        .collect()
}

/// Whether the orientation is sinkless.
pub fn is_sinkless(g: &Graph, orientation: &[usize]) -> bool {
    sinks(g, orientation).is_empty()
}

/// Expected number of sinks under uniformly random orientation —
/// `Σ_v 2^-deg(v)`; used by experiment E9 to show the random assignment
/// fails somewhere on large graphs (the quantity grows linearly in `n`
/// for bounded-degree graphs).
pub fn expected_sinks(g: &Graph) -> f64 {
    (0..g.num_nodes())
        .map(|v| 0.5f64.powi(g.degree(v) as i32))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lll_core::{Fixer2, FixerError};
    use lll_graphs::gen::{random_regular, ring, torus};
    use lll_mt::sequential_mt;
    use lll_numeric::BigRational;

    #[test]
    fn instance_sits_exactly_at_threshold_on_regular_graphs() {
        let g = torus(4, 4); // 4-regular
        let inst = sinkless_orientation_instance::<BigRational>(&g).unwrap();
        assert_eq!(inst.max_dependency_degree(), 4);
        assert_eq!(inst.max_event_probability(), BigRational::from_ratio(1, 16));
        assert_eq!(inst.criterion_value(), BigRational::one());
        assert!(!inst.satisfies_exponential_criterion());
        // The deterministic fixer refuses: this is the boundary.
        assert!(matches!(
            Fixer2::new(&inst),
            Err(FixerError::CriterionViolated { .. })
        ));
    }

    #[test]
    fn moser_tardos_solves_it_above_the_threshold() {
        let g = torus(5, 5); // 4-regular: classic criterion e/16·5 < 1 holds
        let inst = sinkless_orientation_instance::<f64>(&g).unwrap();
        assert!(inst.satisfies_classic_criterion());
        let rep = sequential_mt(&inst, 9, 100_000).unwrap();
        let orientation = orientation_from_assignment(&g, &rep.assignment);
        assert!(is_sinkless(&g, &orientation));
    }

    #[test]
    fn orientation_decoding_is_consistent() {
        let g = ring(4);
        // All edges toward the larger endpoint.
        let assignment = vec![1 - TOWARD_MIN; 4];
        let orientation = orientation_from_assignment(&g, &assignment);
        for (eid, &head) in orientation.iter().enumerate() {
            let (u, v) = g.edge(eid);
            assert_eq!(head, v, "edge ({u},{v})");
        }
        // Node 0's incident edges (0,1) and (0,3) point to 1 and 3: not a sink.
        assert!(!sinks(&g, &orientation).contains(&0));
    }

    #[test]
    fn sink_detection() {
        // Star K_{1,3}: all edges toward the center -> center is a sink.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        let all_to_center = vec![0, 0, 0];
        assert_eq!(sinks(&g, &all_to_center), vec![0]);
        assert!(!is_sinkless(&g, &all_to_center));
        let away = vec![1, 2, 3];
        // Leaves are sinks now.
        assert_eq!(sinks(&g, &away), vec![1, 2, 3]);
    }

    #[test]
    fn expected_sinks_grows_linearly() {
        let small = random_regular(40, 4, 2).unwrap();
        let large = random_regular(400, 4, 2).unwrap();
        assert!((expected_sinks(&small) - 40.0 / 16.0).abs() < 1e-9);
        assert!((expected_sinks(&large) - 400.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_isolated_nodes() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        assert!(matches!(
            sinkless_orientation_instance::<f64>(&g),
            Err(AppError::BadInput(_))
        ));
    }

    use lll_graphs::Graph;
}
