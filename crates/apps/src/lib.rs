//! Applications of the sharp-threshold LLL machinery.
//!
//! The paper motivates its result with problems sitting just at or just
//! below the exponential threshold `p = 2^-d`:
//!
//! * [`sinkless`] — classic **sinkless orientation** (orient every edge
//!   such that no node is a sink). With fair coin flips per edge the
//!   failure probability at a degree-`δ` node is exactly `2^-δ`, i.e.
//!   the problem sits *exactly at* the threshold on regular graphs —
//!   this is the paper's lower-bound witness (Ω(log log n) randomized /
//!   Ω(log n) deterministic), and our experiments use it to demonstrate
//!   the *other* side of the phase transition.
//! * [`hyper_orientation`] — the paper's rank-3 relaxation: three
//!   independent orientations of a rank-3 hypergraph such that every
//!   node is a non-sink in at least two of them. Strictly below the
//!   threshold, solvable deterministically by [`Fixer3`](lll_core::Fixer3).
//! * [`weak_splitting`] — the relaxed weak splitting problem
//!   (`r ≤ 3`, 16 colors, every constraint node must see ≥ 2 distinct
//!   colors), the paper's second application.
//! * [`sat`] — bounded-intersection SAT: clauses as bad events,
//!   variables occurring in ≤ 3 clauses; when every clause is wide
//!   enough (`width > d`), the rank-3 fixer is a deterministic SAT
//!   solver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod hyper_orientation;
pub mod sat;
pub mod sinkless;
pub mod weak_splitting;

/// Error produced when an application's input violates its structural
/// requirements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppError {
    /// The input structure is unusable for this application.
    BadInput(String),
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::BadInput(msg) => write!(f, "bad application input: {msg}"),
        }
    }
}

impl std::error::Error for AppError {}
