//! Relaxed weak splitting — the paper's second application.
//!
//! Weak splitting: given a bipartite graph `B = (V ∪ U, E)`, color the
//! nodes of `U` such that every node of `V` sees at least a prescribed
//! number of distinct colors among its neighbors. The standard variant
//! (2 colors, see both) is P-SLOCAL-complete and sits *above* the
//! exponential threshold; the paper relaxes it to `r ≤ 3` (maximum
//! degree on the `U` side), **16 colors**, and the requirement to see at
//! least **2** distinct colors — which drops strictly below `p = 2^-d`
//! whenever every `V` node has degree ≥ 3, so the rank-3 fixer solves it
//! deterministically.
//!
//! The bad event at `v ∈ V` is "all neighbors of `v` received the same
//! color": probability `colors^(1-deg(v))`.

use lll_core::{BuildError, Instance, InstanceBuilder};
use lll_graphs::Graph;
use lll_numeric::Num;

use crate::AppError;

/// The paper's palette size for the relaxed variant.
pub const DEFAULT_COLORS: usize = 16;

/// Builds the weak-splitting LLL instance.
///
/// `bip` must be bipartite with constraint side `V = 0..nv` and variable
/// side `U = nv..`; every `U` node becomes one uniform variable over
/// `colors` values affecting its `V` neighbors; every `V` node becomes
/// the bad event "sees fewer than 2 distinct colors".
///
/// # Errors
///
/// Returns [`AppError::BadInput`] if an edge fails to cross the
/// bipartition, a `U` node has degree > 3 (rank bound) or 0, or a `V`
/// node has degree 0 (it can never see 2 colors... it has nothing to
/// see — such inputs are rejected rather than silently satisfied).
pub fn weak_splitting_instance<T: Num>(
    bip: &Graph,
    nv: usize,
    colors: usize,
) -> Result<Instance<T>, AppError> {
    let n = bip.num_nodes();
    if nv == 0 || nv >= n {
        return Err(AppError::BadInput(format!(
            "invalid split nv = {nv} of {n} nodes"
        )));
    }
    for &(a, b) in bip.edges() {
        if (a < nv) == (b < nv) {
            return Err(AppError::BadInput(format!(
                "edge ({a},{b}) does not cross the split"
            )));
        }
    }
    if colors < 2 {
        return Err(AppError::BadInput("need at least 2 colors".to_owned()));
    }
    for u in nv..n {
        if bip.degree(u) > 3 {
            return Err(AppError::BadInput(format!(
                "U node {u} has degree {} > 3 (rank bound r = 3)",
                bip.degree(u)
            )));
        }
        if bip.degree(u) == 0 {
            return Err(AppError::BadInput(format!("U node {u} is isolated")));
        }
    }
    for v in 0..nv {
        if bip.degree(v) == 0 {
            return Err(AppError::BadInput(format!("V node {v} is isolated")));
        }
    }

    let mut b = InstanceBuilder::<T>::new(nv);
    let vars: Vec<usize> = (nv..n)
        .map(|u| b.add_uniform_variable(bip.neighbors(u), colors))
        .collect();
    for v in 0..nv {
        let nbrs: Vec<usize> = bip.neighbors(v).iter().map(|&u| vars[u - nv]).collect();
        b.set_event_predicate(v, move |vals| {
            let first = vals[nbrs[0]];
            nbrs.iter().all(|&x| vals[x] == first)
        });
    }
    b.build()
        .map_err(|e: BuildError| AppError::BadInput(e.to_string()))
}

/// Verifies a coloring of `U` (indexed by `u - nv`): every `V` node must
/// see at least `min_colors` distinct colors.
pub fn is_weak_splitting(bip: &Graph, nv: usize, coloring: &[usize], min_colors: usize) -> bool {
    assert_eq!(coloring.len(), bip.num_nodes() - nv, "one color per U node");
    (0..nv).all(|v| {
        let mut seen: Vec<usize> = bip.neighbors(v).iter().map(|&u| coloring[u - nv]).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len() >= min_colors
    })
}

/// Generalisation: every `V` node must see at least `min_colors`
/// distinct colors (the paper's relaxation is `min_colors = 2`;
/// [`weak_splitting_instance`] is that specialisation).
///
/// # Errors
///
/// Same structural errors as [`weak_splitting_instance`], plus
/// `min_colors < 2` or `min_colors > colors`.
pub fn weak_splitting_instance_general<T: Num>(
    bip: &Graph,
    nv: usize,
    colors: usize,
    min_colors: usize,
) -> Result<Instance<T>, AppError> {
    if min_colors < 2 || min_colors > colors {
        return Err(AppError::BadInput(format!(
            "need 2 <= min_colors <= colors, got {min_colors} of {colors}"
        )));
    }
    // Build the base instance for structure validation, then replace the
    // predicates with the distinct-count version.
    let n = bip.num_nodes();
    weak_splitting_instance::<T>(bip, nv, colors)?; // validation only
    let mut b = InstanceBuilder::<T>::new(nv);
    let vars: Vec<usize> = (nv..n)
        .map(|u| b.add_uniform_variable(bip.neighbors(u), colors))
        .collect();
    for v in 0..nv {
        let nbrs: Vec<usize> = bip.neighbors(v).iter().map(|&u| vars[u - nv]).collect();
        b.set_event_predicate(v, move |vals| {
            let mut seen: Vec<usize> = nbrs.iter().map(|&x| vals[x]).collect();
            seen.sort_unstable();
            seen.dedup();
            seen.len() < min_colors
        });
    }
    b.build()
        .map_err(|e: BuildError| AppError::BadInput(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lll_core::{Fixer3, FixerError};
    use lll_graphs::gen::random_bipartite_biregular;
    use lll_numeric::BigRational;

    #[test]
    fn criterion_analysis_matches_paper() {
        // V nodes of degree k = 3, U nodes of degree r = 3 (16 colors):
        // p = 16^(1-3) = 2^-8, d <= 2k = 6 ⇒ p·2^d <= 1/4 < 1.
        let bip = random_bipartite_biregular(12, 3, 12, 3, 1).unwrap();
        let inst = weak_splitting_instance::<BigRational>(&bip, 12, 16).unwrap();
        assert_eq!(
            inst.max_event_probability(),
            BigRational::from_ratio(1, 256)
        );
        assert!(inst.max_dependency_degree() <= 6);
        assert!(inst.satisfies_exponential_criterion());
    }

    #[test]
    fn fixer3_solves_weak_splitting() {
        let bip = random_bipartite_biregular(20, 3, 20, 3, 7).unwrap();
        let inst = weak_splitting_instance::<f64>(&bip, 20, 16).unwrap();
        let report = Fixer3::new(&inst).unwrap().run_default().unwrap();
        assert!(report.is_success());
        assert!(is_weak_splitting(&bip, 20, report.assignment(), 2));
    }

    #[test]
    fn degree2_constraints_sit_above_threshold() {
        // k = 2 with 2 colors ("see both") is the P-SLOCAL-complete
        // variant: p = 1/2, d >= 2 ⇒ p·2^d >= 2 — the fixer must refuse.
        let bip = random_bipartite_biregular(9, 2, 6, 3, 3).unwrap();
        let inst = weak_splitting_instance::<f64>(&bip, 9, 2).unwrap();
        assert!(!inst.satisfies_exponential_criterion());
        assert!(matches!(
            Fixer3::new(&inst),
            Err(FixerError::CriterionViolated { .. })
        ));
    }

    #[test]
    fn verifier_detects_monochromatic_constraints() {
        let bip = random_bipartite_biregular(6, 3, 6, 3, 11).unwrap();
        assert!(!is_weak_splitting(&bip, 6, &[5; 6], 2));
        // With all-distinct colors every V node of degree 3 sees 3.
        let rainbow: Vec<usize> = (0..6).collect();
        assert!(is_weak_splitting(&bip, 6, &rainbow, 2));
    }

    #[test]
    fn general_form_specialises_to_the_paper() {
        let bip = random_bipartite_biregular(10, 3, 10, 3, 9).unwrap();
        let special = weak_splitting_instance::<f64>(&bip, 10, 16).unwrap();
        let general = weak_splitting_instance_general::<f64>(&bip, 10, 16, 2).unwrap();
        assert!((special.max_event_probability() - general.max_event_probability()).abs() < 1e-12);
    }

    #[test]
    fn demanding_more_colors_crosses_the_threshold() {
        let bip = random_bipartite_biregular(12, 3, 12, 3, 2).unwrap();
        // min_colors = 2: p = 16^-2 = 2^-8 < 2^-6 — below.
        let relaxed = weak_splitting_instance_general::<f64>(&bip, 12, 16, 2).unwrap();
        assert!(relaxed.satisfies_exponential_criterion());
        // min_colors = 3 (all three neighbors distinct): p = Pr[<= 2
        // distinct among 3 of 16] = 1 - 15*14/16² ≈ 0.18 > 2^-6 — above.
        let strict = weak_splitting_instance_general::<f64>(&bip, 12, 16, 3).unwrap();
        assert!(!strict.satisfies_exponential_criterion());
        let expected = 1.0 - (15.0 * 14.0) / (16.0 * 16.0);
        assert!((strict.max_event_probability() - expected).abs() < 1e-12);
    }

    #[test]
    fn general_form_validation() {
        let bip = random_bipartite_biregular(6, 3, 6, 3, 1).unwrap();
        assert!(weak_splitting_instance_general::<f64>(&bip, 6, 16, 1).is_err());
        assert!(weak_splitting_instance_general::<f64>(&bip, 6, 16, 17).is_err());
    }

    #[test]
    fn input_validation() {
        use lll_graphs::Graph;
        // Edge within one side.
        let bad = Graph::from_edges(4, [(0, 1), (2, 3), (0, 2)]).unwrap();
        assert!(matches!(
            weak_splitting_instance::<f64>(&bad, 2, 16),
            Err(AppError::BadInput(_))
        ));
        // U-degree 4 violates the rank bound.
        let too_dense = Graph::from_edges(5, [(0, 4), (1, 4), (2, 4), (3, 4)]).unwrap();
        assert!(matches!(
            weak_splitting_instance::<f64>(&too_dense, 4, 16),
            Err(AppError::BadInput(_))
        ));
    }
}
