//! Hypergraph sinkless orientation — the paper's rank-3 application.
//!
//! Given a 3-uniform hypergraph, compute **three** orientations (each
//! hyperedge picks one of its three nodes as head, per orientation) such
//! that every node is a non-sink — i.e. *not* the head of all of its
//! hyperedges — in **at least two** of the three orientations.
//!
//! One random variable per hyperedge holds the triple of heads (27
//! uniform values), so each variable affects exactly the 3 events of its
//! nodes — rank 3. The bad event at a degree-`δ` node has probability
//! `3q²(1−q) + q³` with `q = 3^-δ` (sink in ≥ 2 of 3 independent
//! orientations), which drops *strictly below* the threshold `2^-d`
//! (with `d ≤ 2δ`) for every `δ ≥ 2` on linear hypergraphs — in contrast
//! to plain sinkless orientation, which sits exactly at the threshold.

use lll_core::{BuildError, Instance, InstanceBuilder};
use lll_graphs::Hypergraph;
use lll_numeric::Num;

use crate::AppError;

/// Number of independent orientations computed.
pub const NUM_ORIENTATIONS: usize = 3;

/// Builds the LLL instance: one 27-valued uniform variable per
/// (3-uniform) hyperedge, one bad event per node ("sink in ≥ 2 of the 3
/// orientations").
///
/// # Errors
///
/// Returns [`AppError::BadInput`] if some hyperedge is not of rank
/// exactly 3 or some node has hypergraph degree 0.
pub fn hyper_orientation_instance<T: Num>(h: &Hypergraph) -> Result<Instance<T>, AppError> {
    for (i, e) in h.edges().iter().enumerate() {
        if e.rank() != 3 {
            return Err(AppError::BadInput(format!(
                "hyperedge {i} has rank {}, need exactly 3",
                e.rank()
            )));
        }
    }
    if (0..h.num_nodes()).any(|v| h.degree(v) == 0) {
        return Err(AppError::BadInput(
            "isolated node can never be non-sink".to_owned(),
        ));
    }
    let mut b = InstanceBuilder::<T>::new(h.num_nodes());
    let vars: Vec<usize> = (0..h.num_edges())
        .map(|i| b.add_uniform_variable(h.edge(i).nodes(), 27))
        .collect();
    for v in 0..h.num_nodes() {
        // For each incident hyperedge, the local index of v within it.
        let incident: Vec<(usize, usize)> = h
            .incident(v)
            .iter()
            .map(|&i| {
                let pos = h
                    .edge(i)
                    .nodes()
                    .iter()
                    .position(|&u| u == v)
                    .expect("v is incident");
                (vars[i], pos)
            })
            .collect();
        b.set_event_predicate(v, move |vals| {
            let mut sink_rounds = 0;
            for round in 0..NUM_ORIENTATIONS {
                let divisor = 3usize.pow(round as u32);
                if incident
                    .iter()
                    .all(|&(x, pos)| (vals[x] / divisor) % 3 == pos)
                {
                    sink_rounds += 1;
                }
            }
            sink_rounds >= 2
        });
    }
    b.build()
        .map_err(|e: BuildError| AppError::BadInput(e.to_string()))
}

/// Decodes an assignment into heads: `heads[i][round]` is the *node*
/// chosen as head of hyperedge `i` in that orientation round.
pub fn heads_from_assignment(
    h: &Hypergraph,
    assignment: &[usize],
) -> Vec<[usize; NUM_ORIENTATIONS]> {
    assert_eq!(assignment.len(), h.num_edges(), "one value per hyperedge");
    (0..h.num_edges())
        .map(|i| {
            let nodes = h.edge(i).nodes();
            let y = assignment[i];
            [nodes[y % 3], nodes[(y / 3) % 3], nodes[(y / 9) % 3]]
        })
        .collect()
}

/// In how many of the three orientations is `v` a non-sink?
pub fn non_sink_rounds(h: &Hypergraph, heads: &[[usize; NUM_ORIENTATIONS]], v: usize) -> usize {
    (0..NUM_ORIENTATIONS)
        .filter(|&round| h.incident(v).iter().any(|&i| heads[i][round] != v))
        .count()
}

/// Whether the solution is valid: every node is a non-sink in at least
/// two orientations.
pub fn is_valid_orientation(h: &Hypergraph, heads: &[[usize; NUM_ORIENTATIONS]]) -> bool {
    (0..h.num_nodes()).all(|v| non_sink_rounds(h, heads, v) >= 2)
}

/// Generalisation of the paper's application: `m` independent
/// orientations, every node must be a non-sink in at least `t` of them.
/// The paper's setting is `m = 3, t = 2` ([`hyper_orientation_instance`]
/// is the specialisation). One variable per hyperedge with `3^m` uniform
/// values (one head per orientation) — rank stays 3 for any `m`.
///
/// # Errors
///
/// Returns [`AppError::BadInput`] for non-3-uniform hypergraphs,
/// isolated nodes, `m = 0`, `t = 0` or `t > m` (and `m > 6`, where the
/// value space `3^m` stops being sensible for the exact engine).
pub fn hyper_orientation_instance_general<T: Num>(
    h: &Hypergraph,
    m: usize,
    t: usize,
) -> Result<Instance<T>, AppError> {
    if m == 0 || t == 0 || t > m || m > 6 {
        return Err(AppError::BadInput(format!(
            "need 1 <= t <= m <= 6, got m = {m}, t = {t}"
        )));
    }
    for (i, e) in h.edges().iter().enumerate() {
        if e.rank() != 3 {
            return Err(AppError::BadInput(format!(
                "hyperedge {i} has rank {}, need exactly 3",
                e.rank()
            )));
        }
    }
    if (0..h.num_nodes()).any(|v| h.degree(v) == 0) {
        return Err(AppError::BadInput(
            "isolated node can never be non-sink".to_owned(),
        ));
    }
    let num_values = 3usize.pow(m as u32);
    let mut b = InstanceBuilder::<T>::new(h.num_nodes());
    let vars: Vec<usize> = (0..h.num_edges())
        .map(|i| b.add_uniform_variable(h.edge(i).nodes(), num_values))
        .collect();
    let max_sink_rounds = m - t;
    for v in 0..h.num_nodes() {
        let incident: Vec<(usize, usize)> = h
            .incident(v)
            .iter()
            .map(|&i| {
                let pos = h
                    .edge(i)
                    .nodes()
                    .iter()
                    .position(|&u| u == v)
                    .expect("v is incident");
                (vars[i], pos)
            })
            .collect();
        b.set_event_predicate(v, move |vals| {
            let mut sink_rounds = 0;
            for round in 0..m {
                let divisor = 3usize.pow(round as u32);
                if incident
                    .iter()
                    .all(|&(x, pos)| (vals[x] / divisor) % 3 == pos)
                {
                    sink_rounds += 1;
                }
            }
            sink_rounds > max_sink_rounds
        });
    }
    b.build()
        .map_err(|e: BuildError| AppError::BadInput(e.to_string()))
}

/// The failure probability of a degree-`delta` node under `m` random
/// orientations requiring `t` non-sink rounds: `Pr[sink in > m − t]`
/// with per-round sink probability `q = 3^-delta` — the quantity whose
/// comparison against `2^-d` decides applicability.
pub fn failure_probability(delta: usize, m: usize, t: usize) -> f64 {
    assert!(t >= 1 && t <= m, "need 1 <= t <= m");
    let q = 3f64.powi(-(delta as i32));
    let mut total = 0.0;
    for j in (m - t + 1)..=m {
        total += binomial(m, j) as f64 * q.powi(j as i32) * (1.0 - q).powi((m - j) as i32);
    }
    total
}

fn binomial(n: usize, k: usize) -> u64 {
    let k = k.min(n - k);
    let mut acc = 1u64;
    for i in 0..k {
        acc = acc * (n - i) as u64 / (i + 1) as u64;
    }
    acc
}

#[cfg(test)]
pub(crate) fn tests_support_fix(inst: &Instance<f64>) -> lll_core::FixReport {
    lll_core::Fixer3::new(inst)
        .expect("below threshold")
        .run_default()
        .expect("finite costs below the threshold")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lll_core::Fixer3;
    use lll_graphs::gen::{hyper_ring, random_3_uniform};
    use lll_graphs::Hyperedge;
    use lll_numeric::BigRational;

    #[test]
    fn criterion_holds_strictly_below_threshold() {
        let h = hyper_ring(12); // δ = 3, dependency degree 4
        let inst = hyper_orientation_instance::<BigRational>(&h).unwrap();
        assert_eq!(inst.max_dependency_degree(), 4);
        // p = 3q²(1-q) + q³ with q = 27^-1... q = 3^-3 = 1/27.
        let q = BigRational::from_ratio(1, 27);
        let one = BigRational::one();
        let three = BigRational::from_ratio(3, 1);
        let expected = &(&(&three * &q) * &q) * &(&one - &q) + &(&(&q * &q) * &q);
        assert_eq!(inst.max_event_probability(), expected);
        assert!(inst.satisfies_exponential_criterion());
        assert!(inst.criterion_value() < BigRational::from_ratio(1, 10));
    }

    #[test]
    fn fixer3_solves_hyper_ring() {
        let h = hyper_ring(10);
        let inst = hyper_orientation_instance::<f64>(&h).unwrap();
        let report = Fixer3::new(&inst).unwrap().run_default().unwrap();
        assert!(report.is_success());
        let heads = heads_from_assignment(&h, report.assignment());
        assert!(is_valid_orientation(&h, &heads));
    }

    #[test]
    fn fixer3_solves_random_3_uniform() {
        let h = random_3_uniform(18, 3, 5).unwrap();
        let inst = hyper_orientation_instance::<f64>(&h).unwrap();
        // Random hypergraphs may have dependency degree up to 6; the
        // criterion still holds (p ≈ 4e-3 < 2^-6).
        assert!(inst.satisfies_exponential_criterion());
        let report = Fixer3::new(&inst).unwrap().run_default().unwrap();
        assert!(report.is_success());
        let heads = heads_from_assignment(&h, report.assignment());
        assert!(is_valid_orientation(&h, &heads));
    }

    #[test]
    fn decoding_matches_encoding() {
        let h = hyper_ring(6);
        // Value 5 = 0·9 + 1·3 + 2: heads at local positions (2, 1, 0).
        let assignment = vec![5; 6];
        let heads = heads_from_assignment(&h, &assignment);
        let nodes = h.edge(0).nodes();
        assert_eq!(heads[0], [nodes[2], nodes[1], nodes[0]]);
    }

    #[test]
    fn validity_checker_catches_double_sinks() {
        let h = hyper_ring(6);
        // Every hyperedge heads toward its smallest node in all three
        // rounds (value 0). All three edges containing node 0 have 0 as
        // their minimum (ring wrap-around), so node 0 is a sink in every
        // round — the checker must reject.
        let heads = heads_from_assignment(&h, &[0; 6]);
        assert_eq!(non_sink_rounds(&h, &heads, 0), 0);
        assert!(!is_valid_orientation(&h, &heads));
        // Now a genuinely bad configuration on a tiny custom hypergraph:
        // one node in all hyperedges, always the head.
        let star = Hypergraph::new(
            5,
            vec![Hyperedge::new([0, 1, 2]), Hyperedge::new([0, 3, 4])],
            3,
        )
        .unwrap();
        let bad_heads = vec![[0, 0, 1], [0, 0, 3]];
        // Node 0 is sink in rounds 0 and 1 -> non-sink in only 1 round.
        assert_eq!(non_sink_rounds(&star, &bad_heads, 0), 1);
        assert!(!is_valid_orientation(&star, &bad_heads));
    }

    #[test]
    fn general_form_specialises_to_the_paper() {
        let h = hyper_ring(9);
        let special = hyper_orientation_instance::<BigRational>(&h).unwrap();
        let general = hyper_orientation_instance_general::<BigRational>(&h, 3, 2).unwrap();
        assert_eq!(
            special.max_event_probability(),
            general.max_event_probability()
        );
        assert_eq!(
            special.max_dependency_degree(),
            general.max_dependency_degree()
        );
    }

    #[test]
    fn failure_probability_matches_exact_engine() {
        let h = hyper_ring(9); // delta = 3
        for (m, t) in [(2usize, 1usize), (3, 2), (4, 2)] {
            let inst = hyper_orientation_instance_general::<f64>(&h, m, t).unwrap();
            let analytic = failure_probability(3, m, t);
            let measured = inst.max_event_probability();
            assert!(
                (analytic - measured).abs() < 1e-12,
                "m={m}, t={t}: analytic {analytic} vs engine {measured}"
            );
        }
    }

    #[test]
    fn stricter_demands_cross_the_threshold() {
        let h = hyper_ring(12); // delta = 3, d = 4
                                // t = 2 of 3: below threshold (the paper's setting).
        let relaxed = hyper_orientation_instance_general::<f64>(&h, 3, 2).unwrap();
        assert!(relaxed.satisfies_exponential_criterion());
        // t = 3 of 3 (non-sink in EVERY orientation): p jumps to
        // ~3·q = 1/9 > 2^-4 — above the threshold, as expected for the
        // unrelaxed problem.
        let strict = hyper_orientation_instance_general::<f64>(&h, 3, 3).unwrap();
        assert!(!strict.satisfies_exponential_criterion());
        // m = 2, t = 1: p = q² ... plus cross terms; still below.
        let two = hyper_orientation_instance_general::<f64>(&h, 2, 1).unwrap();
        assert!(two.satisfies_exponential_criterion());
        let report = crate::hyper_orientation::tests_support_fix(&two);
        assert!(report.is_success());
    }

    #[test]
    fn general_form_validation() {
        let h = hyper_ring(9);
        assert!(hyper_orientation_instance_general::<f64>(&h, 0, 0).is_err());
        assert!(hyper_orientation_instance_general::<f64>(&h, 3, 4).is_err());
        assert!(hyper_orientation_instance_general::<f64>(&h, 7, 2).is_err());
    }

    #[test]
    fn rejects_rank2_hyperedges() {
        let h = Hypergraph::new(3, vec![Hyperedge::new([0, 1])], 3).unwrap();
        assert!(matches!(
            hyper_orientation_instance::<f64>(&h),
            Err(AppError::BadInput(_))
        ));
    }
}
