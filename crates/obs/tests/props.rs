//! Property tests for the phase-2 read side: the streaming histogram
//! against exact sorted-quantile oracles (including merge associativity
//! across simulated shards), and divergence triage against synthetically
//! mutated streams (flip one field at a random index — the diff must
//! localize exactly that index and field).

#![forbid(unsafe_code)]

use lll_obs::diff::diff_streams;
use lll_obs::{Event, Histogram};
use proptest::prelude::*;

/// The histogram's documented accuracy: a reported quantile is never
/// below the exact order statistic and at most one sub-bucket width
/// (1/32, relative) above it.
fn assert_quantile_close(est: u64, exact: u64, q: f64) {
    assert!(est >= exact, "q={q}: est {est} < exact {exact}");
    assert!(
        est - exact <= exact / 32 + 1,
        "q={q}: est {est} too far above exact {exact}"
    );
}

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_quantiles_match_sorted_oracle(
        values in proptest::collection::vec(any::<u64>(), 1..400),
        q in 0.01f64..1.0f64,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
        for q in [q, 0.5, 0.9, 0.99, 1.0] {
            assert_quantile_close(h.quantile(q), exact_quantile(&sorted, q), q);
        }
    }

    #[test]
    fn histogram_merge_is_associative_and_shard_order_free(
        a in proptest::collection::vec(any::<u64>(), 0..120),
        b in proptest::collection::vec(any::<u64>(), 0..120),
        c in proptest::collection::vec(any::<u64>(), 0..120),
    ) {
        let hist = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (ha, hb, hc) = (hist(&a), hist(&b), hist(&c));

        // (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c): shards can be folded in any
        // association order.
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut right_bc = hb.clone();
        right_bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_bc);
        prop_assert_eq!(&left, &right);

        // Commutes with shard order, and equals the single-stream fold.
        let mut reversed = hc.clone();
        reversed.merge(&hb);
        reversed.merge(&ha);
        prop_assert_eq!(&left, &reversed);
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &hist(&all));
    }

    #[test]
    fn diff_localizes_random_single_field_mutations(
        rounds in 1usize..24,
        mutate_at in any::<usize>(),
        field_pick in any::<u8>(),
        delivered in proptest::collection::vec(0u64..1000, 24),
    ) {
        // A synthetic but schema-shaped stream: round_start/round_end
        // pairs with varying payloads.
        let events: Vec<Event> = (0..rounds)
            .flat_map(|r| {
                [
                    Event::RoundStart {
                        round: r + 1,
                        running: 8,
                    },
                    Event::RoundEnd {
                        round: r + 1,
                        delivered: delivered[r] as usize,
                        bytes: 8 * delivered[r] as usize,
                        halted: 0,
                        running: 8,
                    },
                ]
            })
            .collect();
        let i = mutate_at % events.len();
        let mut mutated = events.clone();
        // Flip exactly one numeric field of event i by +1.
        let expected_field = match &mut mutated[i] {
            Event::RoundStart { running, .. } => {
                *running += 1;
                "running"
            }
            Event::RoundEnd {
                delivered,
                bytes,
                halted,
                running,
                ..
            } => match field_pick % 4 {
                0 => {
                    *delivered += 1;
                    "delivered"
                }
                1 => {
                    *bytes += 1;
                    "bytes"
                }
                2 => {
                    *halted += 1;
                    "halted"
                }
                _ => {
                    *running += 1;
                    "running"
                }
            },
            _ => unreachable!("stream holds only round events"),
        };
        let serialize = |evs: &[Event]| {
            evs.iter()
                .map(|e| e.to_jsonl())
                .collect::<Vec<_>>()
                .join("\n")
        };
        let d = diff_streams(&serialize(&events), &serialize(&mutated), 2)
            .expect("mutated stream must diverge");
        prop_assert_eq!(d.index, i);
        prop_assert_eq!(d.fields.len(), 1);
        prop_assert_eq!(d.fields[0].field.as_str(), expected_field);
        // Streams agree again after the mutated event, so the diff's
        // after-context on both sides matches.
        prop_assert_eq!(&d.after_a, &d.after_b);
    }
}
