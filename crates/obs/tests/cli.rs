//! End-to-end tests of the `obs-report` binary: the exit-code contract
//! (0 ok / 1 schema violation or divergence / 2 I/O error / 3 truncated
//! stream), bounded-memory streaming of real files, and the `series` and
//! `diff` subcommands.

#![forbid(unsafe_code)]

use lll_obs::Event;
use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicUsize, Ordering};

const BIN: &str = env!("CARGO_BIN_EXE_obs-report");

static NEXT_FILE: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch path for this test process.
fn scratch(name: &str) -> PathBuf {
    let n = NEXT_FILE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("obs-report-test-{}-{n}-{name}", std::process::id()))
}

fn run(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn obs-report")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A small, schema-valid stream: one simulator run plus one fixer run.
fn valid_stream() -> String {
    let mut text = String::new();
    for e in valid_events() {
        text.push_str(&e.to_jsonl());
        text.push('\n');
    }
    text
}

/// The events behind [`valid_stream`], for recording through a
/// checkpointing recorder.
fn valid_events() -> Vec<Event> {
    vec![
        Event::SimRunStart {
            nodes: 2,
            edges: 1,
            max_degree: 1,
            seed: 7,
        },
        Event::RoundStart {
            round: 1,
            running: 2,
        },
        Event::NodeHalt { round: 1, node: 0 },
        Event::RoundEnd {
            round: 1,
            delivered: 2,
            bytes: 8,
            halted: 1,
            running: 1,
        },
        Event::SimRunEnd {
            rounds: 1,
            messages: 2,
        },
        Event::FixRunStart {
            variables: 1,
            events: 1,
            max_rank: 2,
        },
        Event::FixStep {
            step: 0,
            variable: 0,
            value: 1,
            rank: 1,
            touched: vec![0],
            inc: vec![1.0],
            phi_product: vec![0.5],
            headroom: vec![1.5],
        },
        Event::FixRunEnd {
            steps: 1,
            violated: 0,
        },
    ]
}

/// [`valid_stream`] recorded through a checkpointing recorder: the same
/// event lines plus `#checkpoint ` sidecars every `interval` progress
/// events.
fn checkpointed_stream(interval: u64) -> String {
    use lll_obs::{JsonlRecorder, Recorder};
    let mut rec = JsonlRecorder::new(Vec::new()).checkpoint_every(interval);
    for e in valid_events() {
        rec.record(&e);
    }
    String::from_utf8(rec.finish().unwrap()).unwrap()
}

#[test]
fn valid_stream_exits_zero() {
    let path = scratch("valid.jsonl");
    std::fs::write(&path, valid_stream()).unwrap();
    let p = path.to_str().unwrap();
    for args in [vec!["--validate", p], vec!["summarize", "--validate", p]] {
        let out = run(&args);
        assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
        let text = stdout(&out);
        assert!(text.contains("schema OK"), "{text}");
        assert!(text.contains("simulator: 1 run(s)"), "{text}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn schema_violation_exits_one() {
    // round 2 does not follow round 0: a stream-level violation.
    let mut text = Event::SimRunStart {
        nodes: 1,
        edges: 0,
        max_degree: 0,
        seed: 0,
    }
    .to_jsonl();
    text.push('\n');
    text.push_str(
        &Event::RoundStart {
            round: 2,
            running: 1,
        }
        .to_jsonl(),
    );
    text.push('\n');
    let path = scratch("violation.jsonl");
    std::fs::write(&path, &text).unwrap();
    let out = run(&["--validate", path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 1, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("does not follow"), "{}", stderr(&out));
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_file_exits_two() {
    let out = run(&["--validate", "/nonexistent/trace.jsonl"]);
    assert_eq!(exit_code(&out), 2, "stderr: {}", stderr(&out));
}

#[test]
fn usage_error_exits_two() {
    assert_eq!(exit_code(&run(&[])), 2);
    assert_eq!(exit_code(&run(&["diff", "only-one-file"])), 2);
    assert_eq!(exit_code(&run(&["series", "no-out-flag.jsonl"])), 2);
}

#[test]
fn truncated_final_line_warns_and_exits_three() {
    // A valid stream whose writer died mid-line: final line has no
    // newline and is not valid JSON.
    let mut text = valid_stream();
    text.push_str("{\"type\":\"sim_run_start\",\"nodes\":4,\"ed");
    let path = scratch("truncated.jsonl");
    std::fs::write(&path, &text).unwrap();
    let out = run(&[path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 3, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("truncated"), "{}", stderr(&out));
    // Everything before the torn line was still summarized.
    assert!(
        stdout(&out).contains("simulator: 1 run(s)"),
        "{}",
        stdout(&out)
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn complete_final_line_without_newline_is_fine() {
    // No trailing newline but the line parses: a normally-closed stream
    // from a writer that skips the final newline. Not truncation.
    let text = valid_stream();
    let path = scratch("no-trailing-newline.jsonl");
    std::fs::write(&path, text.trim_end()).unwrap();
    let out = run(&["--validate", path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    std::fs::remove_file(&path).ok();
}

#[test]
fn series_writes_stamped_csvs() {
    let path = scratch("trace.jsonl");
    std::fs::write(&path, valid_stream()).unwrap();
    let out_dir = scratch("series-out");
    let out = run(&[
        "series",
        "--out",
        out_dir.to_str().unwrap(),
        path.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    let stem = path.file_stem().unwrap().to_str().unwrap();
    let rounds = std::fs::read_to_string(out_dir.join(format!("{stem}_rounds.csv"))).unwrap();
    assert!(rounds.starts_with("# provenance:"), "{rounds}");
    assert!(rounds.contains("run,round,delivered,bytes,halted,running"));
    assert!(rounds.contains("0,1,2,8,1,1"), "{rounds}");
    let steps = std::fs::read_to_string(out_dir.join(format!("{stem}_steps.csv"))).unwrap();
    assert!(steps.contains("phi_product_min"), "{steps}");
    assert!(out_dir.join(format!("{stem}_halts.csv")).exists());
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir_all(&out_dir).ok();
}

/// The same stream as [`valid_stream`], with every line tagged with a
/// `req` correlation field (schema v2).
fn tagged_stream(req: &str) -> String {
    valid_stream()
        .lines()
        .map(|line| {
            let (head, tail) = line.split_once(',').expect("every event has >= 2 fields");
            format!("{head},\"req\":{req},{tail}\n")
        })
        .collect()
}

#[test]
fn summarize_json_pins_exit_codes_and_shape() {
    // Exit 0: valid stream, one JSON object on stdout.
    let path = scratch("json-ok.jsonl");
    std::fs::write(&path, valid_stream()).unwrap();
    let out = run(&["summarize", "--validate", "--json", path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert_eq!(text.lines().count(), 1, "one JSON line per file: {text}");
    assert!(!text.contains("schema OK"), "json mode is machine-only");
    let v: serde::Value = serde_json::from_str(text.trim()).expect("summary is JSON");
    assert_eq!(
        v.get("file"),
        Some(&serde::Value::String(path.to_str().unwrap().to_owned()))
    );
    assert_eq!(v.get("lines"), Some(&serde::Value::U64(8)));
    assert_eq!(v.get("sim_runs"), Some(&serde::Value::U64(1)));
    assert_eq!(v.get("fix_steps"), Some(&serde::Value::U64(1)));
    assert!(v.get("by_type").is_some());
    assert!(v.get("by_request").is_some());
    std::fs::remove_file(&path).ok();

    // Exit 1: stream-level schema violation under --validate.
    let bad = scratch("json-bad.jsonl");
    let mut text = Event::SimRunStart {
        nodes: 1,
        edges: 0,
        max_degree: 0,
        seed: 0,
    }
    .to_jsonl();
    text.push('\n');
    text.push_str(
        &Event::RoundStart {
            round: 2,
            running: 1,
        }
        .to_jsonl(),
    );
    text.push('\n');
    std::fs::write(&bad, &text).unwrap();
    let out = run(&["summarize", "--validate", "--json", bad.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 1, "stderr: {}", stderr(&out));
    std::fs::remove_file(&bad).ok();

    // Exit 2: unreadable input.
    let out = run(&["summarize", "--json", "/nonexistent/trace.jsonl"]);
    assert_eq!(exit_code(&out), 2);

    // Exit 3: truncated final line — but the complete prefix is still
    // summarized, as JSON.
    let torn = scratch("json-torn.jsonl");
    let mut text = valid_stream();
    text.push_str("{\"type\":\"sim_run_start\",\"nod");
    std::fs::write(&torn, &text).unwrap();
    let out = run(&["summarize", "--json", torn.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 3, "stderr: {}", stderr(&out));
    let v: serde::Value = serde_json::from_str(stdout(&out).trim()).expect("summary is JSON");
    assert_eq!(v.get("lines"), Some(&serde::Value::U64(8)));
    std::fs::remove_file(&torn).ok();
}

#[test]
fn summarize_by_request_groups_tagged_streams() {
    let path = scratch("tagged.jsonl");
    let mut text = tagged_stream("\"q0\"");
    text.push_str(&tagged_stream("17"));
    std::fs::write(&path, &text).unwrap();
    let out = run(&[
        "summarize",
        "--validate",
        "--by-request",
        path.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("by request:"), "{text}");
    assert!(text.contains("\"q0\""), "{text}");
    assert!(
        text.contains("1 fix run(s), 1 step(s), 1 sim run(s)"),
        "{text}"
    );
    // And the JSON form carries the same grouping.
    let out = run(&["summarize", "--json", path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0);
    let v: serde::Value = serde_json::from_str(stdout(&out).trim()).unwrap();
    match v.get("by_request") {
        Some(serde::Value::Object(reqs)) => {
            assert_eq!(reqs.len(), 2, "two distinct correlation ids");
        }
        other => panic!("by_request is not an object: {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn tail_follows_appends_and_exits_clean() {
    let path = scratch("tail.jsonl");
    let full = valid_stream();
    let lines: Vec<&str> = full.lines().collect();
    let (head, tail) = lines.split_at(4);
    std::fs::write(&path, format!("{}\n", head.join("\n"))).unwrap();

    let child = Command::new(BIN)
        .args([
            "tail",
            "--interval-ms",
            "20",
            "--idle-exit-ms",
            "500",
            path.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn obs-report tail");
    // Let it fold the first chunk, then append the rest mid-flight.
    std::thread::sleep(std::time::Duration::from_millis(150));
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    writeln!(f, "{}", tail.join("\n")).unwrap();
    drop(f);
    let out = child.wait_with_output().expect("tail exit");
    assert_eq!(out.status.code(), Some(0), "idle timeout is a clean exit");
    let text = String::from_utf8_lossy(&out.stdout);
    // Two reprints (one per chunk), final state covers all 8 lines.
    assert!(text.contains("== tail"), "{text}");
    assert!(text.matches("== tail").count() >= 2, "{text}");
    assert!(text.contains("(8 lines)"), "{text}");
    assert!(text.contains("simulator: 1 run(s)"), "{text}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn tail_with_pending_partial_line_exits_three() {
    let path = scratch("tail-torn.jsonl");
    let mut text = valid_stream();
    text.push_str("{\"type\":\"fix_run_start\",\"var");
    std::fs::write(&path, &text).unwrap();
    let out = run(&[
        "tail",
        "--interval-ms",
        "20",
        "--idle-exit-ms",
        "200",
        path.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 3, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("unfinished"), "{}", stderr(&out));
    std::fs::remove_file(&path).ok();
}

#[test]
fn tail_usage_errors_exit_two() {
    assert_eq!(exit_code(&run(&["tail"])), 2);
    let a = scratch("tail-a.jsonl");
    let b = scratch("tail-b.jsonl");
    std::fs::write(&a, valid_stream()).unwrap();
    std::fs::write(&b, valid_stream()).unwrap();
    assert_eq!(
        exit_code(&run(&["tail", a.to_str().unwrap(), b.to_str().unwrap()])),
        2,
        "tail takes exactly one file"
    );
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn diff_identical_exits_zero_divergent_exits_one() {
    let a_path = scratch("a.jsonl");
    let b_path = scratch("b.jsonl");
    std::fs::write(&a_path, valid_stream()).unwrap();
    std::fs::write(&b_path, valid_stream()).unwrap();
    let out = run(&["diff", a_path.to_str().unwrap(), b_path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("identical"), "{}", stdout(&out));

    // Mutate one field of one event in b.
    let mutated = valid_stream().replace("\"delivered\":2", "\"delivered\":3");
    assert_ne!(mutated, valid_stream());
    std::fs::write(&b_path, mutated).unwrap();
    let out = run(&[
        "diff",
        "--context",
        "1",
        a_path.to_str().unwrap(),
        b_path.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 1, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("streams diverge at event index 3"), "{text}");
    assert!(text.contains("delivered"), "{text}");
    std::fs::remove_file(&a_path).ok();
    std::fs::remove_file(&b_path).ok();
}

#[test]
fn diff_ignores_checkpoint_sidecars() {
    let a_path = scratch("plain.jsonl");
    let b_path = scratch("checkpointed.jsonl");
    std::fs::write(&a_path, valid_stream()).unwrap();
    std::fs::write(&b_path, checkpointed_stream(1)).unwrap();
    let out = run(&["diff", a_path.to_str().unwrap(), b_path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    std::fs::remove_file(&a_path).ok();
    std::fs::remove_file(&b_path).ok();
}

#[test]
fn validate_stats_prints_awk_friendly_shape() {
    let text = checkpointed_stream(1);
    let path = scratch("stats.jsonl");
    std::fs::write(&path, &text).unwrap();
    let out = run(&["validate", "--stats", path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    let line = stdout(&out);
    for key in [
        "events=8",
        &format!("bytes={}", text.len()),
        "rounds=1",
        "steps=1",
        "sim_runs=1",
        "fix_runs=1",
        "checkpoints=1",
        "last_checkpoint_round=1",
        "torn=0",
    ] {
        assert!(line.contains(key), "missing {key} in: {line}");
    }
    std::fs::remove_file(&path).ok();

    // A plain stream reports no checkpoint as -1.
    let plain = scratch("stats-plain.jsonl");
    std::fs::write(&plain, valid_stream()).unwrap();
    let out = run(&["validate", "--stats", plain.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).contains("last_checkpoint_round=-1"),
        "{}",
        stdout(&out)
    );
    std::fs::remove_file(&plain).ok();
}

#[test]
fn validate_rejects_contradicted_checkpoint() {
    // Same-length mutation inside the checkpointed window: schema-valid,
    // only the fold digest can catch it.
    let text = checkpointed_stream(2).replace("\"delivered\":2", "\"delivered\":3");
    let path = scratch("corrupt.jsonl");
    std::fs::write(&path, &text).unwrap();
    let out = run(&["validate", path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 1, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("corrupt stream"), "{}", stderr(&out));
    std::fs::remove_file(&path).ok();
}

#[test]
fn torn_sidecar_line_reports_byte_offset() {
    let text = checkpointed_stream(1);
    let cut_line_start = text.rfind("#checkpoint").unwrap();
    let torn = &text[..cut_line_start + 15];
    let path = scratch("torn-sidecar.jsonl");
    std::fs::write(&path, torn).unwrap();
    for args in [
        vec!["validate", path.to_str().unwrap()],
        vec!["summarize", path.to_str().unwrap()],
    ] {
        let out = run(&args);
        assert_eq!(exit_code(&out), 3, "stderr: {}", stderr(&out));
        assert!(
            stderr(&out).contains(&format!("byte offset {cut_line_start}")),
            "args {args:?}: {}",
            stderr(&out)
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn torn_meta_line_reports_byte_offset_zero() {
    let meta = lll_obs::Provenance::capture().with_seed(3).to_jsonl();
    let path = scratch("torn-meta.jsonl");
    std::fs::write(&path, &meta[..meta.len() / 2]).unwrap();
    let out = run(&["validate", path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 3, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("byte offset 0"), "{}", stderr(&out));
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_check_verifies_a_triple() {
    let full_text = checkpointed_stream(1);
    let prefix_path = scratch("rc-prefix.jsonl");
    let full_path = scratch("rc-full.jsonl");
    // The interrupted copy: killed mid-way through the final event line,
    // after the last sidecar.
    std::fs::write(&prefix_path, &full_text[..full_text.len() - 10]).unwrap();
    std::fs::write(&full_path, &full_text).unwrap();
    let out = run(&[
        "resume-check",
        prefix_path.to_str().unwrap(),
        full_path.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("resume-check OK"), "{}", stdout(&out));

    // A continuation from a different run diverges before the boundary.
    let other = full_text.replace("\"delivered\":2", "\"delivered\":3");
    std::fs::write(&full_path, &other).unwrap();
    let out = run(&[
        "resume-check",
        prefix_path.to_str().unwrap(),
        full_path.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 1, "stderr: {}", stderr(&out));

    // A prefix with no checkpoint has nothing to resume from.
    std::fs::write(&prefix_path, valid_stream()).unwrap();
    std::fs::write(&full_path, &full_text).unwrap();
    let out = run(&[
        "resume-check",
        prefix_path.to_str().unwrap(),
        full_path.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 1, "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("nothing to resume from"),
        "{}",
        stderr(&out)
    );

    // Usage: exactly two files.
    assert_eq!(exit_code(&run(&["resume-check", "one.jsonl"])), 2);
    std::fs::remove_file(&prefix_path).ok();
    std::fs::remove_file(&full_path).ok();
}
