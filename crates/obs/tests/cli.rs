//! End-to-end tests of the `obs-report` binary: the exit-code contract
//! (0 ok / 1 schema violation or divergence / 2 I/O error / 3 truncated
//! stream), bounded-memory streaming of real files, and the `series` and
//! `diff` subcommands.

#![forbid(unsafe_code)]

use lll_obs::Event;
use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicUsize, Ordering};

const BIN: &str = env!("CARGO_BIN_EXE_obs-report");

static NEXT_FILE: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch path for this test process.
fn scratch(name: &str) -> PathBuf {
    let n = NEXT_FILE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("obs-report-test-{}-{n}-{name}", std::process::id()))
}

fn run(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn obs-report")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A small, schema-valid stream: one simulator run plus one fixer run.
fn valid_stream() -> String {
    let mut text = String::new();
    for e in [
        Event::SimRunStart {
            nodes: 2,
            edges: 1,
            max_degree: 1,
            seed: 7,
        },
        Event::RoundStart {
            round: 1,
            running: 2,
        },
        Event::NodeHalt { round: 1, node: 0 },
        Event::RoundEnd {
            round: 1,
            delivered: 2,
            bytes: 8,
            halted: 1,
            running: 1,
        },
        Event::SimRunEnd {
            rounds: 1,
            messages: 2,
        },
        Event::FixRunStart {
            variables: 1,
            events: 1,
            max_rank: 2,
        },
        Event::FixStep {
            step: 0,
            variable: 0,
            value: 1,
            rank: 1,
            touched: vec![0],
            inc: vec![1.0],
            phi_product: vec![0.5],
            headroom: vec![1.5],
        },
        Event::FixRunEnd {
            steps: 1,
            violated: 0,
        },
    ] {
        text.push_str(&e.to_jsonl());
        text.push('\n');
    }
    text
}

#[test]
fn valid_stream_exits_zero() {
    let path = scratch("valid.jsonl");
    std::fs::write(&path, valid_stream()).unwrap();
    let p = path.to_str().unwrap();
    for args in [vec!["--validate", p], vec!["summarize", "--validate", p]] {
        let out = run(&args);
        assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
        let text = stdout(&out);
        assert!(text.contains("schema OK"), "{text}");
        assert!(text.contains("simulator: 1 run(s)"), "{text}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn schema_violation_exits_one() {
    // round 2 does not follow round 0: a stream-level violation.
    let mut text = Event::SimRunStart {
        nodes: 1,
        edges: 0,
        max_degree: 0,
        seed: 0,
    }
    .to_jsonl();
    text.push('\n');
    text.push_str(
        &Event::RoundStart {
            round: 2,
            running: 1,
        }
        .to_jsonl(),
    );
    text.push('\n');
    let path = scratch("violation.jsonl");
    std::fs::write(&path, &text).unwrap();
    let out = run(&["--validate", path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 1, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("does not follow"), "{}", stderr(&out));
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_file_exits_two() {
    let out = run(&["--validate", "/nonexistent/trace.jsonl"]);
    assert_eq!(exit_code(&out), 2, "stderr: {}", stderr(&out));
}

#[test]
fn usage_error_exits_two() {
    assert_eq!(exit_code(&run(&[])), 2);
    assert_eq!(exit_code(&run(&["diff", "only-one-file"])), 2);
    assert_eq!(exit_code(&run(&["series", "no-out-flag.jsonl"])), 2);
}

#[test]
fn truncated_final_line_warns_and_exits_three() {
    // A valid stream whose writer died mid-line: final line has no
    // newline and is not valid JSON.
    let mut text = valid_stream();
    text.push_str("{\"type\":\"sim_run_start\",\"nodes\":4,\"ed");
    let path = scratch("truncated.jsonl");
    std::fs::write(&path, &text).unwrap();
    let out = run(&[path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 3, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("truncated"), "{}", stderr(&out));
    // Everything before the torn line was still summarized.
    assert!(
        stdout(&out).contains("simulator: 1 run(s)"),
        "{}",
        stdout(&out)
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn complete_final_line_without_newline_is_fine() {
    // No trailing newline but the line parses: a normally-closed stream
    // from a writer that skips the final newline. Not truncation.
    let text = valid_stream();
    let path = scratch("no-trailing-newline.jsonl");
    std::fs::write(&path, text.trim_end()).unwrap();
    let out = run(&["--validate", path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    std::fs::remove_file(&path).ok();
}

#[test]
fn series_writes_stamped_csvs() {
    let path = scratch("trace.jsonl");
    std::fs::write(&path, valid_stream()).unwrap();
    let out_dir = scratch("series-out");
    let out = run(&[
        "series",
        "--out",
        out_dir.to_str().unwrap(),
        path.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    let stem = path.file_stem().unwrap().to_str().unwrap();
    let rounds = std::fs::read_to_string(out_dir.join(format!("{stem}_rounds.csv"))).unwrap();
    assert!(rounds.starts_with("# provenance:"), "{rounds}");
    assert!(rounds.contains("run,round,delivered,bytes,halted,running"));
    assert!(rounds.contains("0,1,2,8,1,1"), "{rounds}");
    let steps = std::fs::read_to_string(out_dir.join(format!("{stem}_steps.csv"))).unwrap();
    assert!(steps.contains("phi_product_min"), "{steps}");
    assert!(out_dir.join(format!("{stem}_halts.csv")).exists());
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn diff_identical_exits_zero_divergent_exits_one() {
    let a_path = scratch("a.jsonl");
    let b_path = scratch("b.jsonl");
    std::fs::write(&a_path, valid_stream()).unwrap();
    std::fs::write(&b_path, valid_stream()).unwrap();
    let out = run(&["diff", a_path.to_str().unwrap(), b_path.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("identical"), "{}", stdout(&out));

    // Mutate one field of one event in b.
    let mutated = valid_stream().replace("\"delivered\":2", "\"delivered\":3");
    assert_ne!(mutated, valid_stream());
    std::fs::write(&b_path, mutated).unwrap();
    let out = run(&[
        "diff",
        "--context",
        "1",
        a_path.to_str().unwrap(),
        b_path.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 1, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("streams diverge at event index 3"), "{text}");
    assert!(text.contains("delivered"), "{text}");
    std::fs::remove_file(&a_path).ok();
    std::fs::remove_file(&b_path).ok();
}
