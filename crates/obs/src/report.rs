//! Folding a JSONL stream into a human-readable summary.

use serde::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate view of one JSONL stream.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Summary {
    /// Total lines folded (including any meta line).
    pub lines: usize,
    /// Per-`type` event counts, sorted by tag.
    pub by_type: BTreeMap<String, usize>,
    /// Simulator runs completed.
    pub sim_runs: usize,
    /// Billed rounds summed over completed simulator runs.
    pub rounds: usize,
    /// Messages summed over completed simulator runs.
    pub messages: usize,
    /// Byte bill summed over all rounds.
    pub bytes: usize,
    /// Node halts observed.
    pub node_halts: usize,
    /// Fixer runs completed.
    pub fix_runs: usize,
    /// Fixing steps observed.
    pub fix_steps: usize,
    /// Audit verdicts.
    pub audit_passes: usize,
    /// Audit violations.
    pub audit_violations: usize,
    /// Minimum `P*` headroom observed, if any `fix_step` carried one.
    pub min_headroom: Option<f64>,
    /// Rows per experiment id, in first-seen order.
    pub experiments: Vec<(String, usize)>,
    /// Provenance facts from the meta line, if present.
    pub provenance: Vec<(String, String)>,
    /// Per-request aggregates, keyed by the JSON text of the `req`
    /// correlation tag (schema v2). Empty for untagged (v1) streams.
    pub by_request: BTreeMap<String, RequestStats>,
}

/// Aggregates for one `req` correlation id within a stream.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RequestStats {
    /// Lines carrying this tag.
    pub events: usize,
    /// Fixer runs completed under this tag.
    pub fix_runs: usize,
    /// Fixing steps under this tag.
    pub fix_steps: usize,
    /// Simulator runs completed under this tag.
    pub sim_runs: usize,
    /// Billed rounds summed over this tag's completed simulator runs.
    pub rounds: usize,
}

fn uint(v: Option<&Value>) -> usize {
    match v {
        Some(Value::U64(n)) => *n as usize,
        _ => 0,
    }
}

impl Summary {
    /// Folds a full in-memory stream. Lines must individually be valid
    /// JSON objects; run the stream through
    /// [`crate::schema::validate_stream`] first when structural
    /// guarantees matter. Large files should be streamed through
    /// [`Summary::fold_line`] instead (as `obs-report` does) — this
    /// convenience merely iterates it.
    pub fn from_stream(text: &str) -> Result<Summary, String> {
        let mut s = Summary::default();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            s.fold_line(line)
                .map_err(|e| format!("line {}: {e}", i + 1))?;
        }
        Ok(s)
    }

    /// Folds one line into the summary — the bounded-memory entry point:
    /// each line is parsed, aggregated and dropped, so memory stays
    /// proportional to the summary, not the stream.
    ///
    /// # Errors
    ///
    /// A description of the malformed line (no line-number prefix; the
    /// caller knows the position).
    pub fn fold_line(&mut self, line: &str) -> Result<(), String> {
        let s = self;
        if line.starts_with('#') {
            // Sidecar comment (e.g. a `#checkpoint ` line): not an
            // event, not counted.
            return Ok(());
        }
        let v: Value = serde_json::from_str(line).map_err(|e| format!("not valid JSON: {e}"))?;
        let ty = match v.get("type") {
            Some(Value::String(t)) => t.clone(),
            _ => return Err("missing \"type\" field".to_string()),
        };
        s.lines += 1;
        *s.by_type.entry(ty.clone()).or_insert(0) += 1;
        if let Some(req) = v.get("req") {
            let r = s.by_request.entry(req.to_string()).or_default();
            r.events += 1;
            match ty.as_str() {
                "fix_run_end" => r.fix_runs += 1,
                "fix_step" => r.fix_steps += 1,
                "sim_run_end" => {
                    r.sim_runs += 1;
                    r.rounds += uint(v.get("rounds"));
                }
                _ => {}
            }
        }
        match ty.as_str() {
            "meta" => {
                if let Value::Object(fields) = &v {
                    for (k, val) in fields {
                        if k != "type" {
                            s.provenance.push((k.clone(), val.to_string()));
                        }
                    }
                }
            }
            "round_end" => {
                s.bytes += uint(v.get("bytes"));
            }
            "node_halt" => s.node_halts += 1,
            "sim_run_end" => {
                s.sim_runs += 1;
                s.rounds += uint(v.get("rounds"));
                s.messages += uint(v.get("messages"));
            }
            "fix_step" => {
                s.fix_steps += 1;
                if let Some(Value::Array(hs)) = v.get("headroom") {
                    for h in hs {
                        let h = match h {
                            Value::F64(x) => Some(*x),
                            Value::U64(x) => Some(*x as f64),
                            Value::I64(x) => Some(*x as f64),
                            _ => None,
                        };
                        if let Some(h) = h {
                            s.min_headroom = Some(s.min_headroom.map_or(h, |m: f64| m.min(h)));
                        }
                    }
                }
            }
            "audit_pass" => s.audit_passes += 1,
            "audit_violation" => s.audit_violations += 1,
            "fix_run_end" => s.fix_runs += 1,
            "experiment_end" => {
                if let (Some(Value::String(id)), rows) = (v.get("id"), uint(v.get("rows"))) {
                    s.experiments.push((id.clone(), rows));
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// The summary as a machine-readable JSON object (one line via
    /// [`serde_json::to_string`]) — the `summarize --json` payload.
    /// Field order is fixed; `by_request` is keyed by the tag's JSON
    /// text and sorted.
    pub fn to_json(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            ("lines".to_owned(), Value::U64(self.lines as u64)),
            ("sim_runs".to_owned(), Value::U64(self.sim_runs as u64)),
            ("rounds".to_owned(), Value::U64(self.rounds as u64)),
            ("messages".to_owned(), Value::U64(self.messages as u64)),
            ("bytes".to_owned(), Value::U64(self.bytes as u64)),
            ("node_halts".to_owned(), Value::U64(self.node_halts as u64)),
            ("fix_runs".to_owned(), Value::U64(self.fix_runs as u64)),
            ("fix_steps".to_owned(), Value::U64(self.fix_steps as u64)),
            (
                "audit_passes".to_owned(),
                Value::U64(self.audit_passes as u64),
            ),
            (
                "audit_violations".to_owned(),
                Value::U64(self.audit_violations as u64),
            ),
            (
                "min_headroom".to_owned(),
                self.min_headroom.map_or(Value::Null, Value::F64),
            ),
            (
                "by_type".to_owned(),
                Value::Object(
                    self.by_type
                        .iter()
                        .map(|(ty, n)| (ty.clone(), Value::U64(*n as u64)))
                        .collect(),
                ),
            ),
            (
                "experiments".to_owned(),
                Value::Object(
                    self.experiments
                        .iter()
                        .map(|(id, rows)| (id.clone(), Value::U64(*rows as u64)))
                        .collect(),
                ),
            ),
        ];
        fields.push((
            "by_request".to_owned(),
            Value::Object(
                self.by_request
                    .iter()
                    .map(|(req, r)| {
                        (
                            req.clone(),
                            Value::Object(vec![
                                ("events".to_owned(), Value::U64(r.events as u64)),
                                ("fix_runs".to_owned(), Value::U64(r.fix_runs as u64)),
                                ("fix_steps".to_owned(), Value::U64(r.fix_steps as u64)),
                                ("sim_runs".to_owned(), Value::U64(r.sim_runs as u64)),
                                ("rounds".to_owned(), Value::U64(r.rounds as u64)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ));
        Value::Object(fields)
    }

    /// Writes the `--by-request` section: one line per correlation tag,
    /// sorted by tag text. No output for untagged streams.
    pub fn write_by_request(&self, f: &mut impl fmt::Write) -> fmt::Result {
        if self.by_request.is_empty() {
            return Ok(());
        }
        writeln!(f, "  by request:")?;
        for (req, r) in &self.by_request {
            writeln!(
                f,
                "    {req:<18} {} event(s), {} fix run(s), {} step(s), {} sim run(s), {} round(s)",
                r.events, r.fix_runs, r.fix_steps, r.sim_runs, r.rounds
            )?;
        }
        Ok(())
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "observability summary ({} lines)", self.lines)?;
        if !self.provenance.is_empty() {
            write!(f, "  provenance:")?;
            for (k, v) in &self.provenance {
                write!(f, " {k}={v}")?;
            }
            writeln!(f)?;
        }
        if self.sim_runs > 0 {
            writeln!(
                f,
                "  simulator: {} run(s), {} billed round(s), {} message(s), {} byte(s), {} halt(s)",
                self.sim_runs, self.rounds, self.messages, self.bytes, self.node_halts
            )?;
        }
        if self.fix_runs > 0 || self.fix_steps > 0 {
            write!(
                f,
                "  fixer: {} run(s), {} step(s), audits {} pass / {} fail",
                self.fix_runs, self.fix_steps, self.audit_passes, self.audit_violations
            )?;
            if let Some(h) = self.min_headroom {
                write!(f, ", min headroom {h:.6}")?;
            }
            writeln!(f)?;
        }
        for (id, rows) in &self.experiments {
            writeln!(f, "  experiment {id}: {rows} row(s)")?;
        }
        writeln!(f, "  events by type:")?;
        for (ty, n) in &self.by_type {
            writeln!(f, "    {ty:<18} {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    #[test]
    fn folds_counts_and_minima() {
        let text = [
            Event::SimRunStart {
                nodes: 2,
                edges: 1,
                max_degree: 1,
                seed: 0,
            }
            .to_jsonl(),
            Event::RoundStart {
                round: 1,
                running: 2,
            }
            .to_jsonl(),
            Event::RoundEnd {
                round: 1,
                delivered: 2,
                bytes: 8,
                halted: 0,
                running: 2,
            }
            .to_jsonl(),
            Event::SimRunEnd {
                rounds: 1,
                messages: 2,
            }
            .to_jsonl(),
            Event::FixStep {
                step: 0,
                variable: 1,
                value: 0,
                rank: 2,
                touched: vec![0, 1],
                inc: vec![1.0, 1.0],
                phi_product: vec![0.5, 0.5],
                headroom: vec![1.5, 0.25],
            }
            .to_jsonl(),
        ]
        .join("\n");
        let s = Summary::from_stream(&text).unwrap();
        assert_eq!(s.lines, 5);
        assert_eq!(s.sim_runs, 1);
        assert_eq!(s.rounds, 1);
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 8);
        assert_eq!(s.fix_steps, 1);
        assert_eq!(s.min_headroom, Some(0.25));
        assert_eq!(s.by_type.get("round_end"), Some(&1));
        let rendered = s.to_string();
        assert!(rendered.contains("simulator: 1 run(s)"));
    }

    #[test]
    fn groups_tagged_lines_by_request() {
        let text = [
            Event::FixRunStart {
                variables: 2,
                events: 1,
                max_rank: 2,
            }
            .to_jsonl_tagged(Some("\"a\"")),
            Event::FixStep {
                step: 0,
                variable: 0,
                value: 1,
                rank: 2,
                touched: vec![0],
                inc: vec![1.0],
                phi_product: vec![0.5],
                headroom: vec![1.0],
            }
            .to_jsonl_tagged(Some("\"a\"")),
            Event::FixRunEnd {
                steps: 1,
                violated: 0,
            }
            .to_jsonl_tagged(Some("\"a\"")),
            Event::FixRunEnd {
                steps: 0,
                violated: 0,
            }
            .to_jsonl_tagged(Some("7")),
        ]
        .join("\n");
        let s = Summary::from_stream(&text).unwrap();
        assert_eq!(s.by_request.len(), 2);
        let a = &s.by_request["\"a\""];
        assert_eq!((a.events, a.fix_runs, a.fix_steps), (3, 1, 1));
        assert_eq!(s.by_request["7"].fix_runs, 1);
        let mut out = String::new();
        s.write_by_request(&mut out).unwrap();
        assert!(out.contains("by request:"));
        assert!(out.contains("\"a\""));
        let json = serde_json::to_string(&s.to_json()).unwrap();
        assert!(json.contains("\"by_request\""));
        assert!(json.contains("\"fix_steps\":1"));
    }
}
