//! `lll-obs` — deterministic flight recorder + metrics layer.
//!
//! A zero-overhead-when-disabled event layer shared by the LOCAL simulator
//! (`lll-local`), the exact fixers (`lll-core`), and the bench harness
//! (`lll-bench`). Instrumented code is generic over [`Recorder`] and guards
//! every emission with `if R::ENABLED { .. }`; the default [`NullRecorder`]
//! has `ENABLED = false`, so the uninstrumented build is the status quo.
//!
//! Determinism contract (see DESIGN.md §3.7): events on the hot path carry
//! logical indices (round, step, node id) only — never wall-clock time — and
//! the parallel engine buffers per-shard events and merges them in static
//! shard order, so a recorded stream is byte-identical between `run` and
//! `run_parallel` at every thread count. The only thread-dependent record is
//! the optional `meta` provenance line, which is explicitly excluded from
//! the byte-identity guarantee.
//!
//! Live telemetry (DESIGN.md §3.11) lives in [`metrics`]: a
//! [`MetricsRegistry`] of sharded counters/gauges/histograms with
//! Prometheus text-format exposition — like [`timing`], a strictly
//! side-band channel that never feeds the deterministic stream.
//!
//! The read/diagnose side (DESIGN.md §3.8) lives in four modules:
//! [`hist`] — log-bucketed fixed-point streaming histograms; [`timing`] —
//! the side-band wall-clock channel (a [`TimingSink`] mirror of the
//! recorder design, so untimed builds still compile to the status quo and
//! the deterministic event stream never sees a clock); [`replay`] —
//! bounded-memory folding of JSONL into per-round/per-node/per-step
//! series; and [`diff`] — first-divergence triage for the differential
//! batteries. The `obs-report` binary surfaces all of them.
//!
//! Checkpoint/resume (DESIGN.md §3.12) promotes the stream from a tee to
//! the system of record: [`checkpoint`] defines the `#checkpoint` sidecar
//! format and fold digest, a checkpointing [`JsonlRecorder`] emits
//! sidecars every N progress events, and [`replay::RunState`] folds a
//! stream prefix back into resumable run state in bounded memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod provenance;
mod recorder;

pub mod checkpoint;
pub mod diff;
pub mod hist;
pub mod metrics;
pub mod replay;
pub mod report;
pub mod schema;
pub mod timing;

pub use checkpoint::{Checkpoint, StreamDigest, CHECKPOINT_PREFIX};
pub use event::{Event, SCHEMA_VERSION};
pub use hist::Histogram;
pub use metrics::{Counter, Gauge, MetricHist, MetricsRegistry};
pub use provenance::Provenance;
pub use recorder::{
    BufRecorder, CounterRecorder, JsonlRecorder, NullRecorder, Recorder, SkipPrefixRecorder,
};
pub use timing::{NullTiming, TimingRecorder, TimingScope, TimingSink};
