//! Divergence triage: bisect two event streams to their first divergent
//! event and explain the difference at field granularity.
//!
//! The determinism contract says two recorded streams of the same workload
//! must be byte-identical after their (explicitly excluded) `meta` lines.
//! When a differential battery sees them differ, a raw byte mismatch is
//! useless for debugging; [`first_divergence`] turns it into an actionable
//! localization — the 0-based event index, both raw lines, the event kind
//! and any node/round/step coordinates, a field-by-field value delta, and
//! up to ±k context lines around the divergence. The batteries call this
//! on failure, and `obs-report diff <a> <b>` exposes it on the command
//! line (exit 0 = identical, 1 = divergent).
//!
//! Comparison is a single forward pass holding only a bounded context ring
//! — memory is O(k), independent of stream length. A leading `meta` line
//! on either side is skipped (that is exactly the byte-identity contract);
//! blank lines are ignored.

use serde::Value;
use std::collections::VecDeque;
use std::fmt;

/// One field whose value differs between the two streams' events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDelta {
    /// Field name.
    pub field: String,
    /// Rendered value in stream A (`"<missing>"` if absent).
    pub a: String,
    /// Rendered value in stream B (`"<missing>"` if absent).
    pub b: String,
}

/// The first point at which two streams disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// 0-based event index of the divergence (meta and blank lines
    /// excluded on both sides).
    pub index: usize,
    /// The raw divergent line of stream A (`None` if A ended first).
    pub a: Option<String>,
    /// The raw divergent line of stream B (`None` if B ended first).
    pub b: Option<String>,
    /// Event kind (`type` tag) on each side, where parseable.
    pub kind_a: Option<String>,
    /// Event kind on side B.
    pub kind_b: Option<String>,
    /// Node coordinate of the divergent event, if either side carries one.
    pub node: Option<u64>,
    /// Round coordinate, if either side carries one.
    pub round: Option<u64>,
    /// Step coordinate, if either side carries one.
    pub step: Option<u64>,
    /// Fields whose values differ (empty when a side is missing or a
    /// line is not a JSON object).
    pub fields: Vec<FieldDelta>,
    /// Up to `k` shared events immediately before the divergence, as
    /// `(event index, raw line)`.
    pub before: Vec<(usize, String)>,
    /// Up to `k` events of stream A after the divergence.
    pub after_a: Vec<String>,
    /// Up to `k` events of stream B after the divergence.
    pub after_b: Vec<String>,
}

/// Renders a JSON value for the delta table: strings unquoted, arrays
/// element-by-element (the vendored `Value` Display collapses them to
/// `<array>`, which would hide element-level differences), floats with
/// round-trip formatting so `1.0` and `1` stay distinguishable.
fn render(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::F64(x) => format!("{x:?}"),
        Value::Array(xs) => {
            let mut s = String::from("[");
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&render(x));
            }
            s.push(']');
            s
        }
        other => other.to_string(),
    }
}

fn field_u64(v: Option<&Value>, name: &str) -> Option<u64> {
    match v.and_then(|v| v.get(name)) {
        Some(Value::U64(n)) => Some(*n),
        _ => None,
    }
}

/// Field-by-field delta between two JSON object lines: every key (in
/// A-then-B first-seen order) whose rendered values differ.
fn field_deltas(a: Option<&Value>, b: Option<&Value>) -> Vec<FieldDelta> {
    let (Some(Value::Object(fa)), Some(Value::Object(fb))) = (a, b) else {
        return Vec::new();
    };
    let mut deltas = Vec::new();
    let mut keys: Vec<&str> = fa.iter().map(|(k, _)| k.as_str()).collect();
    for (k, _) in fb {
        if !keys.contains(&k.as_str()) {
            keys.push(k);
        }
    }
    let missing = || "<missing>".to_string();
    for k in keys {
        let va = a.and_then(|v| v.get(k));
        let vb = b.and_then(|v| v.get(k));
        let ra = va.map_or_else(missing, render);
        let rb = vb.map_or_else(missing, render);
        if ra != rb {
            deltas.push(FieldDelta {
                field: k.to_string(),
                a: ra,
                b: rb,
            });
        }
    }
    deltas
}

/// Event lines of a stream: blank lines and `#`-prefixed sidecar lines
/// (checkpoints) skipped everywhere, a `meta` line skipped in first
/// position only (per the byte-identity contract — sidecars, like meta,
/// are explicitly outside it, so a checkpointed stream diffs clean
/// against an uncheckpointed one).
fn events<I: Iterator<Item = String>>(lines: I) -> impl Iterator<Item = String> {
    lines
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .enumerate()
        .filter(|(i, l)| !(*i == 0 && l.contains("\"type\":\"meta\"")))
        .map(|(_, l)| l)
}

/// Finds the first divergent event between two streams of lines, or
/// `None` if they are identical event-for-event. Holds only the ±k
/// context in memory.
pub fn first_divergence<A, B>(a: A, b: B, k: usize) -> Option<Divergence>
where
    A: Iterator<Item = String>,
    B: Iterator<Item = String>,
{
    let mut a = events(a);
    let mut b = events(b);
    let mut before: VecDeque<(usize, String)> = VecDeque::with_capacity(k + 1);
    let mut index = 0usize;
    loop {
        let (la, lb) = (a.next(), b.next());
        match (la, lb) {
            (None, None) => return None,
            (la, lb) if la == lb => {
                if k > 0 {
                    if before.len() == k {
                        before.pop_front();
                    }
                    before.push_back((index, la.expect("both Some when equal")));
                }
                index += 1;
            }
            (la, lb) => {
                let va = la.as_deref().and_then(|l| serde_json::from_str(l).ok());
                let vb = lb.as_deref().and_then(|l| serde_json::from_str(l).ok());
                let kind = |v: &Option<Value>| match v.as_ref().and_then(|v| v.get("type")) {
                    Some(Value::String(t)) => Some(t.clone()),
                    _ => None,
                };
                let coord = |name: &str| {
                    field_u64(va.as_ref(), name).or_else(|| field_u64(vb.as_ref(), name))
                };
                return Some(Divergence {
                    index,
                    node: coord("node"),
                    round: coord("round"),
                    step: coord("step"),
                    kind_a: kind(&va),
                    kind_b: kind(&vb),
                    fields: field_deltas(va.as_ref(), vb.as_ref()),
                    a: la,
                    b: lb,
                    before: before.into_iter().collect(),
                    after_a: a.take(k).collect(),
                    after_b: b.take(k).collect(),
                });
            }
        }
    }
}

/// [`first_divergence`] over two in-memory streams — what the
/// differential batteries call on failure.
pub fn diff_streams(a: &str, b: &str, k: usize) -> Option<Divergence> {
    first_divergence(
        a.lines().map(str::to_string),
        b.lines().map(str::to_string),
        k,
    )
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "streams diverge at event index {}", self.index)?;
        let kind = match (&self.kind_a, &self.kind_b) {
            (Some(a), Some(b)) if a == b => a.clone(),
            (a, b) => format!(
                "{} vs {}",
                a.as_deref().unwrap_or("?"),
                b.as_deref().unwrap_or("?")
            ),
        };
        write!(f, "  kind: {kind}")?;
        if let Some(n) = self.node {
            write!(f, "  node: {n}")?;
        }
        if let Some(r) = self.round {
            write!(f, "  round: {r}")?;
        }
        if let Some(s) = self.step {
            write!(f, "  step: {s}")?;
        }
        writeln!(f)?;
        for d in &self.fields {
            writeln!(f, "  field {:<12} a: {}  |  b: {}", d.field, d.a, d.b)?;
        }
        for (i, line) in &self.before {
            writeln!(f, "   [{i}]   {line}")?;
        }
        match &self.a {
            Some(l) => writeln!(f, "  a[{}]> {l}", self.index)?,
            None => writeln!(f, "  a[{}]> <stream ended>", self.index)?,
        }
        match &self.b {
            Some(l) => writeln!(f, "  b[{}]> {l}", self.index)?,
            None => writeln!(f, "  b[{}]> <stream ended>", self.index)?,
        }
        for (off, line) in self.after_a.iter().enumerate() {
            writeln!(f, "   a[{}]  {line}", self.index + 1 + off)?;
        }
        for (off, line) in self.after_b.iter().enumerate() {
            writeln!(f, "   b[{}]  {line}", self.index + 1 + off)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn stream(events: &[Event]) -> String {
        let mut s = String::new();
        for e in events {
            s.push_str(&e.to_jsonl());
            s.push('\n');
        }
        s
    }

    fn sample() -> Vec<Event> {
        (1..=4u64)
            .flat_map(|round| {
                [
                    Event::RoundStart {
                        round: round as usize,
                        running: 8,
                    },
                    Event::RoundEnd {
                        round: round as usize,
                        delivered: 16,
                        bytes: 64,
                        halted: 0,
                        running: 8,
                    },
                ]
            })
            .collect()
    }

    #[test]
    fn identical_streams_have_no_divergence() {
        let a = stream(&sample());
        assert!(diff_streams(&a, &a, 3).is_none());
    }

    #[test]
    fn checkpoint_sidecars_are_excluded_from_comparison() {
        let body = stream(&sample());
        let mut with_ck = String::new();
        for (i, line) in body.lines().enumerate() {
            with_ck.push_str(line);
            with_ck.push('\n');
            if i % 3 == 2 {
                with_ck.push_str(
                    "#checkpoint {\"round\":1,\"step\":0,\"events\":3,\"offset\":0,\
                     \"digest\":\"0000000000000000\"}\n",
                );
            }
        }
        assert!(diff_streams(&body, &with_ck, 2).is_none());
    }

    #[test]
    fn meta_lines_are_excluded_from_comparison() {
        let body = stream(&sample());
        let with_meta = format!(
            "{}\n{body}",
            crate::Provenance::capture().with_threads(8).to_jsonl()
        );
        assert!(diff_streams(&body, &with_meta, 2).is_none());
    }

    #[test]
    fn localizes_a_single_field_mutation() {
        let evs = sample();
        let mut mutated = evs.clone();
        // Event index 3 is round 2's round_end; bump `delivered` only.
        mutated[3] = Event::RoundEnd {
            round: 2,
            delivered: 17,
            bytes: 64,
            halted: 0,
            running: 8,
        };
        let d = diff_streams(&stream(&evs), &stream(&mutated), 2).expect("diverges");
        assert_eq!(d.index, 3);
        assert_eq!(d.kind_a.as_deref(), Some("round_end"));
        assert_eq!(d.kind_b.as_deref(), Some("round_end"));
        assert_eq!(d.round, Some(2));
        assert_eq!(d.fields.len(), 1, "exactly one field delta: {:?}", d.fields);
        assert_eq!(d.fields[0].field, "delivered");
        assert_eq!(d.fields[0].a, "16");
        assert_eq!(d.fields[0].b, "17");
        assert_eq!(d.before.len(), 2);
        assert_eq!(d.before[0].0, 1);
        assert_eq!(d.after_a.len(), 2);
        let rendered = d.to_string();
        assert!(rendered.contains("event index 3"), "{rendered}");
        assert!(rendered.contains("delivered"), "{rendered}");
    }

    #[test]
    fn truncation_is_reported_as_stream_end() {
        let evs = sample();
        let short: Vec<Event> = evs[..5].to_vec();
        let d = diff_streams(&stream(&evs), &stream(&short), 1).expect("diverges");
        assert_eq!(d.index, 5);
        assert!(d.b.is_none());
        assert!(d.a.is_some());
        assert!(d.to_string().contains("<stream ended>"));
    }
}
