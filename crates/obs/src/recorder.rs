//! The [`Recorder`] trait and its three implementations.
//!
//! Instrumented code is generic over `R: Recorder` and guards every emission
//! with `if R::ENABLED { ... }`. `ENABLED` is an associated constant, so for
//! [`NullRecorder`] (the default at every public entry point) the branch and
//! the event construction are statically eliminated — the monomorphized code
//! is the uninstrumented code.

use crate::checkpoint::{Checkpoint, StreamDigest};
use crate::event::Event;
use crate::provenance::Provenance;
use std::io::{self, Write};

/// A sink for [`Event`]s.
pub trait Recorder {
    /// Whether this recorder observes events at all. Instrumented code must
    /// guard event construction with `if R::ENABLED`, so a `false` here makes
    /// recording free.
    const ENABLED: bool = true;

    /// Consume one event.
    fn record(&mut self, event: &Event);
}

/// Recording disabled: all instrumentation compiles away.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: &Event) {}
}

/// In-memory aggregation: counts and totals, no per-event storage except the
/// per-round delivery trajectory.
#[derive(Debug, Default, Clone)]
pub struct CounterRecorder {
    /// Total events observed.
    pub events: usize,
    /// Simulator runs observed (`sim_run_start` count).
    pub sim_runs: usize,
    /// Billed rounds summed over completed simulator runs.
    pub rounds: usize,
    /// Messages summed over completed simulator runs.
    pub messages: usize,
    /// Byte bill summed over all `round_end` events.
    pub bytes: usize,
    /// Node halts observed.
    pub node_halts: usize,
    /// Per-round delivery counts, truncated to billed rounds at each
    /// `sim_run_end` (the terminal decide-only round delivers nothing and is
    /// not billed).
    pub deliveries_per_round: Vec<usize>,
    /// Fixing steps observed.
    pub fix_steps: usize,
    /// Fixer runs observed.
    pub fix_runs: usize,
    /// Audit passes observed.
    pub audit_passes: usize,
    /// Audit violations observed.
    pub audit_violations: usize,
    /// Minimum `P*` headroom seen across all `fix_step` events
    /// (`f64::INFINITY` until the first step touches an event).
    pub min_headroom: f64,
    /// Experiments observed.
    pub experiments: usize,
    /// Experiment rows observed.
    pub experiment_rows: usize,
    /// Index into `deliveries_per_round` where the current sim run started.
    run_start: usize,
}

impl CounterRecorder {
    /// A fresh counter.
    pub fn new() -> Self {
        CounterRecorder {
            min_headroom: f64::INFINITY,
            ..CounterRecorder::default()
        }
    }

    /// Per-round deliveries of everything recorded so far.
    pub fn deliveries_per_round(&self) -> &[usize] {
        &self.deliveries_per_round
    }
}

impl Recorder for CounterRecorder {
    fn record(&mut self, event: &Event) {
        self.events += 1;
        match event {
            Event::SimRunStart { .. } => {
                self.sim_runs += 1;
                self.run_start = self.deliveries_per_round.len();
            }
            Event::RoundStart { .. } => {}
            Event::NodeHalt { .. } => self.node_halts += 1,
            Event::RoundEnd {
                delivered, bytes, ..
            } => {
                self.bytes += bytes;
                self.deliveries_per_round.push(*delivered);
            }
            Event::SimRunEnd { rounds, messages } => {
                self.rounds += rounds;
                self.messages += messages;
                // Drop the unbilled terminal decide-only round, if any.
                self.deliveries_per_round.truncate(self.run_start + rounds);
            }
            Event::FixRunStart { .. } => self.fix_runs += 1,
            Event::FixStep { headroom, .. } => {
                self.fix_steps += 1;
                for h in headroom {
                    if *h < self.min_headroom {
                        self.min_headroom = *h;
                    }
                }
            }
            Event::AuditPass { .. } => self.audit_passes += 1,
            Event::AuditViolation { .. } => self.audit_violations += 1,
            Event::FixRunEnd { .. } => {}
            Event::ExperimentStart { .. } => self.experiments += 1,
            Event::ExperimentRow { .. } => self.experiment_rows += 1,
            Event::ExperimentEnd { .. } => {}
        }
    }
}

/// Buffers events in memory for deferred, ordered replay into another
/// recorder.
///
/// This is the merged-stream identity primitive of the parallel fixing
/// sweep: each worker records its shard's events into a private
/// `BufRecorder`, and the coordinating thread replays the buffers in
/// static shard order after the join. Because shards cover contiguous
/// ranges of the (deterministic) work order and each buffer is filled in
/// that order, the replayed concatenation is byte-identical to the
/// sequential emission — the downstream recorder never observes a
/// thread boundary.
#[derive(Debug, Default, Clone)]
pub struct BufRecorder {
    events: Vec<Event>,
}

impl BufRecorder {
    /// An empty buffer.
    pub fn new() -> Self {
        BufRecorder::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The buffered events, in recording order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Replays every buffered event into `rec`, in recording order, and
    /// clears the buffer.
    pub fn replay_into<R: Recorder>(&mut self, rec: &mut R) {
        if R::ENABLED {
            for event in &self.events {
                rec.record(event);
            }
        }
        self.events.clear();
    }
}

impl Recorder for BufRecorder {
    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// Checkpointing state carried by a [`JsonlRecorder`] with sidecar
/// emission enabled.
///
/// The counters mirror exactly what a [`RunState`](crate::replay::RunState)
/// fold of the recorder's own output would hold, so an emitted
/// [`Checkpoint`] is verifiable offline (`obs-report resume-check`) and a
/// resumed recorder seeded from one continues the sidecar cadence
/// byte-for-byte.
#[derive(Debug)]
struct CheckpointState {
    /// Emit a sidecar once `progress` reaches this many trigger events
    /// (`round_end` + `fix_step`).
    interval: u64,
    /// Trigger events since the last sidecar.
    progress: u64,
    /// `round_end` events written.
    round: u64,
    /// `fix_step` events written.
    step: u64,
    /// Event lines written (meta and sidecar lines excluded).
    events: u64,
    /// Bytes written, including meta and sidecar lines — the file offset
    /// the next line starts at.
    bytes: u64,
    /// Rolling digest over event lines.
    digest: StreamDigest,
}

/// Streams events as schema-versioned JSONL to any [`Write`] sink.
///
/// The optional provenance/meta line (written by [`JsonlRecorder::with_provenance`])
/// carries thread-count and host facts and is therefore *excluded* from the
/// cross-engine byte-identity contract; the event stream after it is
/// engine-invariant. Write errors are sticky: the first one is kept and all
/// later records become no-ops — check [`JsonlRecorder::take_error`] or
/// [`JsonlRecorder::finish`].
///
/// With [`JsonlRecorder::checkpoint_every`], the recorder additionally
/// emits a `#checkpoint ` sidecar line after every N progress events
/// (`round_end` + `fix_step`): the fold digest, logical coordinates, and
/// the sidecar's own byte offset (see [`Checkpoint`]). Sidecars are
/// schema-v2-additive — every reader skips `#`-prefixed lines — and the
/// event lines between them are unchanged, so a checkpointed stream with
/// sidecars stripped is byte-identical to an uncheckpointed one.
#[derive(Debug)]
pub struct JsonlRecorder<W: Write> {
    writer: W,
    lines: usize,
    error: Option<io::Error>,
    /// Request-correlation tag (pre-encoded JSON scalar text) spliced
    /// into every event line; `None` keeps the v1 byte layout.
    req: Option<String>,
    /// Bytes of the meta line written by `with_provenance` (0 if none) —
    /// the stream-head byte offset checkpoint counters start from.
    meta_bytes: u64,
    /// Sidecar emission state; `None` keeps the recorder a pure tee.
    ckpt: Option<CheckpointState>,
    /// The last sidecar written, for callers that persist resume points.
    last_ckpt: Option<Checkpoint>,
}

impl<W: Write> JsonlRecorder<W> {
    /// A recorder with no meta line — the whole output is the deterministic
    /// event stream.
    pub fn new(writer: W) -> Self {
        JsonlRecorder {
            writer,
            lines: 0,
            error: None,
            req: None,
            meta_bytes: 0,
            ckpt: None,
            last_ckpt: None,
        }
    }

    /// A recorder that tags every event line with a `req` correlation
    /// id (schema v2). `req` must be the JSON text of a scalar — serve
    /// request ids (null/string/integer) are by construction. Because
    /// the tag is a pure function of the request, a tagged stream stays
    /// byte-identical cold vs. warm and at every worker count.
    pub fn with_request(writer: W, req: impl Into<String>) -> Self {
        let mut rec = JsonlRecorder::new(writer);
        rec.req = Some(req.into());
        rec
    }

    /// A recorder whose first line is a `"type":"meta"` provenance record.
    pub fn with_provenance(mut writer: W, provenance: &Provenance) -> io::Result<Self> {
        let meta = provenance.to_jsonl();
        writeln!(writer, "{meta}")?;
        let mut rec = JsonlRecorder::new(writer);
        rec.lines = 1;
        rec.meta_bytes = meta.len() as u64 + 1;
        Ok(rec)
    }

    /// Enables `#checkpoint ` sidecar emission: one sidecar after every
    /// `interval` progress events (`round_end` + `fix_step`). Must be
    /// called before any event is recorded — counters start at the
    /// stream head (the meta line, if any, counts toward byte offsets
    /// but not toward the digest or event count).
    ///
    /// # Panics
    ///
    /// If `interval` is zero or events were already recorded.
    pub fn checkpoint_every(mut self, interval: u64) -> Self {
        assert!(interval > 0, "checkpoint interval must be positive");
        assert!(
            self.lines == 0 || (self.lines == 1 && self.meta_bytes > 0),
            "checkpoint_every must be called before any event is recorded"
        );
        self.ckpt = Some(CheckpointState {
            interval,
            progress: 0,
            round: 0,
            step: 0,
            events: 0,
            bytes: self.meta_bytes,
            digest: StreamDigest::new(),
        });
        self
    }

    /// A recorder that *resumes* an interrupted checkpointed stream:
    /// `writer` must be positioned at [`Checkpoint::resume_offset`] of
    /// `from` (the file truncated just past that sidecar line), and the
    /// counters are re-seeded from the sidecar so every subsequent event
    /// and sidecar line is byte-identical to what an uninterrupted
    /// recorder would have written.
    pub fn resumed(writer: W, interval: u64, from: &Checkpoint) -> Self {
        assert!(interval > 0, "checkpoint interval must be positive");
        let mut rec = JsonlRecorder::new(writer);
        rec.ckpt = Some(CheckpointState {
            interval,
            progress: 0,
            round: from.round,
            step: from.step,
            events: from.events,
            bytes: from.resume_offset(),
            digest: StreamDigest::from_value(from.digest),
        });
        rec
    }

    /// The last `#checkpoint ` sidecar written, if any.
    pub fn last_checkpoint(&self) -> Option<Checkpoint> {
        self.last_ckpt
    }

    /// Lines written so far (including the meta line, if any).
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Takes the first write error, if one occurred.
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Flushes and returns the underlying writer, surfacing any sticky error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

/// Drops every event until `rounds` [`Event::RoundEnd`]s have passed,
/// then forwards the rest to the wrapped recorder verbatim.
///
/// This is the simulator's resume seam: a LOCAL simulation is cheap to
/// re-execute deterministically, so `Simulator::resume_recorded` (in
/// `lll-local`) re-runs the protocol from round 1 and uses this wrapper
/// to suppress
/// the rounds the durable prefix already contains — the inner recorder
/// (typically a [`JsonlRecorder::resumed`]) only ever sees the
/// continuation, byte-identical to an uninterrupted run's tail.
///
/// The `sim_run_start` bracket counts as part of round 1's prefix: it
/// is suppressed whenever `rounds > 0` (a checkpoint inside a sim run
/// always has the bracket in its prefix).
#[derive(Debug)]
pub struct SkipPrefixRecorder<'a, R: Recorder> {
    inner: &'a mut R,
    rounds: u64,
    seen: u64,
}

impl<'a, R: Recorder> SkipPrefixRecorder<'a, R> {
    /// Wraps `inner`, swallowing everything up to and including the
    /// `rounds`-th `round_end` event.
    pub fn new(inner: &'a mut R, rounds: u64) -> Self {
        SkipPrefixRecorder {
            inner,
            rounds,
            seen: 0,
        }
    }

    /// `round_end` events swallowed or forwarded so far.
    pub fn rounds_seen(&self) -> u64 {
        self.seen
    }
}

impl<R: Recorder> Recorder for SkipPrefixRecorder<'_, R> {
    const ENABLED: bool = R::ENABLED;

    fn record(&mut self, event: &Event) {
        if self.seen >= self.rounds {
            self.inner.record(event);
            return;
        }
        if let Event::RoundEnd { .. } = event {
            self.seen += 1;
        }
    }
}

impl<W: Write> Recorder for JsonlRecorder<W> {
    fn record(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let line = event.to_jsonl_tagged(self.req.as_deref());
        if let Err(e) = writeln!(self.writer, "{line}") {
            self.error = Some(e);
            return;
        }
        self.lines += 1;
        let Some(ck) = &mut self.ckpt else {
            return;
        };
        ck.events += 1;
        ck.bytes += line.len() as u64 + 1;
        ck.digest.update_line(&line);
        match event {
            Event::RoundEnd { .. } => {
                ck.round += 1;
                ck.progress += 1;
            }
            Event::FixStep { .. } => {
                ck.step += 1;
                ck.progress += 1;
            }
            _ => {}
        }
        if ck.progress < ck.interval {
            return;
        }
        let sidecar = Checkpoint {
            round: ck.round,
            step: ck.step,
            events: ck.events,
            offset: ck.bytes,
            digest: ck.digest.value(),
        };
        let sidecar_line = sidecar.to_line();
        if let Err(e) = writeln!(self.writer, "{sidecar_line}") {
            self.error = Some(e);
            return;
        }
        self.lines += 1;
        ck.bytes += sidecar_line.len() as u64 + 1;
        ck.progress = 0;
        self.last_ckpt = Some(sidecar);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled() {
        const {
            assert!(!NullRecorder::ENABLED);
            assert!(CounterRecorder::ENABLED);
            assert!(JsonlRecorder::<Vec<u8>>::ENABLED);
        }
    }

    #[test]
    fn counter_truncates_unbilled_terminal_round() {
        let mut c = CounterRecorder::new();
        c.record(&Event::SimRunStart {
            nodes: 2,
            edges: 1,
            max_degree: 1,
            seed: 0,
        });
        for round in 1..=3 {
            c.record(&Event::RoundStart { round, running: 2 });
            c.record(&Event::RoundEnd {
                round,
                delivered: if round < 3 { 2 } else { 0 },
                bytes: if round < 3 { 8 } else { 0 },
                halted: 0,
                running: 2,
            });
        }
        // Terminal round delivered nothing: billed rounds = 2.
        c.record(&Event::SimRunEnd {
            rounds: 2,
            messages: 4,
        });
        assert_eq!(c.deliveries_per_round(), &[2, 2]);
        assert_eq!(c.rounds, 2);
        assert_eq!(c.messages, 4);
        assert_eq!(c.bytes, 16);
    }

    #[test]
    fn counter_tracks_min_headroom() {
        let mut c = CounterRecorder::new();
        assert_eq!(c.min_headroom, f64::INFINITY);
        c.record(&Event::FixStep {
            step: 0,
            variable: 0,
            value: 0,
            rank: 2,
            touched: vec![0, 1],
            inc: vec![1.0, 1.0],
            phi_product: vec![0.5, 0.5],
            headroom: vec![0.75, 1.25],
        });
        assert_eq!(c.min_headroom, 0.75);
        assert_eq!(c.fix_steps, 1);
    }

    #[test]
    fn buf_recorder_replays_in_order_and_drains() {
        let mut buf = BufRecorder::new();
        buf.record(&Event::RoundStart {
            round: 1,
            running: 2,
        });
        buf.record(&Event::NodeHalt { round: 1, node: 0 });
        assert_eq!(buf.len(), 2);
        let mut jsonl = JsonlRecorder::new(Vec::new());
        buf.replay_into(&mut jsonl);
        assert!(buf.is_empty());
        let direct = {
            let mut r = JsonlRecorder::new(Vec::new());
            r.record(&Event::RoundStart {
                round: 1,
                running: 2,
            });
            r.record(&Event::NodeHalt { round: 1, node: 0 });
            r.finish().unwrap()
        };
        assert_eq!(jsonl.finish().unwrap(), direct);
    }

    #[test]
    fn jsonl_recorder_tags_every_line_with_req() {
        let mut r = JsonlRecorder::with_request(Vec::new(), "\"q0\"");
        r.record(&Event::FixRunEnd {
            steps: 1,
            violated: 0,
        });
        let text = String::from_utf8(r.finish().unwrap()).unwrap();
        assert_eq!(
            text,
            "{\"type\":\"fix_run_end\",\"req\":\"q0\",\"steps\":1,\"violated\":0}\n"
        );
    }

    fn round_end(round: usize) -> Event {
        Event::RoundEnd {
            round,
            delivered: 2,
            bytes: 8,
            halted: 0,
            running: 2,
        }
    }

    #[test]
    fn checkpointing_recorder_emits_verifiable_sidecars() {
        let mut r = JsonlRecorder::new(Vec::new()).checkpoint_every(2);
        for round in 1..=5 {
            r.record(&round_end(round));
        }
        let last = r.last_checkpoint().expect("two sidecars were due");
        assert_eq!((last.round, last.step, last.events), (4, 0, 4));
        let text = String::from_utf8(r.finish().unwrap()).unwrap();
        let sidecars: Vec<&str> = text.lines().filter(|l| l.starts_with('#')).collect();
        // 5 triggers at interval 2 → sidecars after rounds 2 and 4.
        assert_eq!(sidecars.len(), 2);
        let ck = Checkpoint::parse(sidecars[1]).unwrap();
        assert_eq!(ck, last);
        // The recorded offset is where the sidecar line actually starts.
        let at = text
            .lines()
            .take_while(|l| !l.starts_with('#') || Checkpoint::parse(l).unwrap() != ck)
            .map(|l| l.len() + 1)
            .sum::<usize>() as u64;
        assert_eq!(ck.offset, at);
        // The digest matches a fold over the event lines of the prefix.
        let mut d = StreamDigest::new();
        for l in text.lines().take(5).filter(|l| !l.starts_with('#')) {
            d.update_line(l);
        }
        assert_eq!(d.value(), ck.digest);
        // Stripping sidecars recovers the uncheckpointed stream.
        let mut plain = JsonlRecorder::new(Vec::new());
        for round in 1..=5 {
            plain.record(&round_end(round));
        }
        let plain = String::from_utf8(plain.finish().unwrap()).unwrap();
        let stripped: String = text
            .lines()
            .filter(|l| !l.starts_with('#'))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(stripped, plain);
    }

    #[test]
    fn resumed_recorder_continues_byte_for_byte() {
        let mut full = JsonlRecorder::new(Vec::new()).checkpoint_every(2);
        for round in 1..=7 {
            full.record(&round_end(round));
        }
        let full = full.finish().unwrap();

        // Interrupted copy: killed after round 5, resumed from the
        // sidecar emitted after round 4.
        let mut head = JsonlRecorder::new(Vec::new()).checkpoint_every(2);
        for round in 1..=5 {
            head.record(&round_end(round));
        }
        let ck = head.last_checkpoint().unwrap();
        let mut bytes = head.finish().unwrap();
        bytes.truncate(ck.resume_offset() as usize);
        let mut tail = JsonlRecorder::resumed(Vec::new(), 2, &ck);
        for round in 5..=7 {
            tail.record(&round_end(round));
        }
        bytes.extend_from_slice(&tail.finish().unwrap());
        assert_eq!(bytes, full);
    }

    #[test]
    fn jsonl_recorder_streams_lines() {
        let mut r = JsonlRecorder::new(Vec::new());
        r.record(&Event::RoundStart {
            round: 1,
            running: 4,
        });
        r.record(&Event::SimRunEnd {
            rounds: 1,
            messages: 0,
        });
        assert_eq!(r.lines(), 2);
        let buf = r.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("{\"type\":\"round_start\""));
    }
}
