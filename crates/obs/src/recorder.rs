//! The [`Recorder`] trait and its three implementations.
//!
//! Instrumented code is generic over `R: Recorder` and guards every emission
//! with `if R::ENABLED { ... }`. `ENABLED` is an associated constant, so for
//! [`NullRecorder`] (the default at every public entry point) the branch and
//! the event construction are statically eliminated — the monomorphized code
//! is the uninstrumented code.

use crate::event::Event;
use crate::provenance::Provenance;
use std::io::{self, Write};

/// A sink for [`Event`]s.
pub trait Recorder {
    /// Whether this recorder observes events at all. Instrumented code must
    /// guard event construction with `if R::ENABLED`, so a `false` here makes
    /// recording free.
    const ENABLED: bool = true;

    /// Consume one event.
    fn record(&mut self, event: &Event);
}

/// Recording disabled: all instrumentation compiles away.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: &Event) {}
}

/// In-memory aggregation: counts and totals, no per-event storage except the
/// per-round delivery trajectory.
#[derive(Debug, Default, Clone)]
pub struct CounterRecorder {
    /// Total events observed.
    pub events: usize,
    /// Simulator runs observed (`sim_run_start` count).
    pub sim_runs: usize,
    /// Billed rounds summed over completed simulator runs.
    pub rounds: usize,
    /// Messages summed over completed simulator runs.
    pub messages: usize,
    /// Byte bill summed over all `round_end` events.
    pub bytes: usize,
    /// Node halts observed.
    pub node_halts: usize,
    /// Per-round delivery counts, truncated to billed rounds at each
    /// `sim_run_end` (the terminal decide-only round delivers nothing and is
    /// not billed).
    pub deliveries_per_round: Vec<usize>,
    /// Fixing steps observed.
    pub fix_steps: usize,
    /// Fixer runs observed.
    pub fix_runs: usize,
    /// Audit passes observed.
    pub audit_passes: usize,
    /// Audit violations observed.
    pub audit_violations: usize,
    /// Minimum `P*` headroom seen across all `fix_step` events
    /// (`f64::INFINITY` until the first step touches an event).
    pub min_headroom: f64,
    /// Experiments observed.
    pub experiments: usize,
    /// Experiment rows observed.
    pub experiment_rows: usize,
    /// Index into `deliveries_per_round` where the current sim run started.
    run_start: usize,
}

impl CounterRecorder {
    /// A fresh counter.
    pub fn new() -> Self {
        CounterRecorder {
            min_headroom: f64::INFINITY,
            ..CounterRecorder::default()
        }
    }

    /// Per-round deliveries of everything recorded so far.
    pub fn deliveries_per_round(&self) -> &[usize] {
        &self.deliveries_per_round
    }
}

impl Recorder for CounterRecorder {
    fn record(&mut self, event: &Event) {
        self.events += 1;
        match event {
            Event::SimRunStart { .. } => {
                self.sim_runs += 1;
                self.run_start = self.deliveries_per_round.len();
            }
            Event::RoundStart { .. } => {}
            Event::NodeHalt { .. } => self.node_halts += 1,
            Event::RoundEnd {
                delivered, bytes, ..
            } => {
                self.bytes += bytes;
                self.deliveries_per_round.push(*delivered);
            }
            Event::SimRunEnd { rounds, messages } => {
                self.rounds += rounds;
                self.messages += messages;
                // Drop the unbilled terminal decide-only round, if any.
                self.deliveries_per_round.truncate(self.run_start + rounds);
            }
            Event::FixRunStart { .. } => self.fix_runs += 1,
            Event::FixStep { headroom, .. } => {
                self.fix_steps += 1;
                for h in headroom {
                    if *h < self.min_headroom {
                        self.min_headroom = *h;
                    }
                }
            }
            Event::AuditPass { .. } => self.audit_passes += 1,
            Event::AuditViolation { .. } => self.audit_violations += 1,
            Event::FixRunEnd { .. } => {}
            Event::ExperimentStart { .. } => self.experiments += 1,
            Event::ExperimentRow { .. } => self.experiment_rows += 1,
            Event::ExperimentEnd { .. } => {}
        }
    }
}

/// Buffers events in memory for deferred, ordered replay into another
/// recorder.
///
/// This is the merged-stream identity primitive of the parallel fixing
/// sweep: each worker records its shard's events into a private
/// `BufRecorder`, and the coordinating thread replays the buffers in
/// static shard order after the join. Because shards cover contiguous
/// ranges of the (deterministic) work order and each buffer is filled in
/// that order, the replayed concatenation is byte-identical to the
/// sequential emission — the downstream recorder never observes a
/// thread boundary.
#[derive(Debug, Default, Clone)]
pub struct BufRecorder {
    events: Vec<Event>,
}

impl BufRecorder {
    /// An empty buffer.
    pub fn new() -> Self {
        BufRecorder::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The buffered events, in recording order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Replays every buffered event into `rec`, in recording order, and
    /// clears the buffer.
    pub fn replay_into<R: Recorder>(&mut self, rec: &mut R) {
        if R::ENABLED {
            for event in &self.events {
                rec.record(event);
            }
        }
        self.events.clear();
    }
}

impl Recorder for BufRecorder {
    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// Streams events as schema-versioned JSONL to any [`Write`] sink.
///
/// The optional provenance/meta line (written by [`JsonlRecorder::with_provenance`])
/// carries thread-count and host facts and is therefore *excluded* from the
/// cross-engine byte-identity contract; the event stream after it is
/// engine-invariant. Write errors are sticky: the first one is kept and all
/// later records become no-ops — check [`JsonlRecorder::take_error`] or
/// [`JsonlRecorder::finish`].
#[derive(Debug)]
pub struct JsonlRecorder<W: Write> {
    writer: W,
    lines: usize,
    error: Option<io::Error>,
    /// Request-correlation tag (pre-encoded JSON scalar text) spliced
    /// into every event line; `None` keeps the v1 byte layout.
    req: Option<String>,
}

impl<W: Write> JsonlRecorder<W> {
    /// A recorder with no meta line — the whole output is the deterministic
    /// event stream.
    pub fn new(writer: W) -> Self {
        JsonlRecorder {
            writer,
            lines: 0,
            error: None,
            req: None,
        }
    }

    /// A recorder that tags every event line with a `req` correlation
    /// id (schema v2). `req` must be the JSON text of a scalar — serve
    /// request ids (null/string/integer) are by construction. Because
    /// the tag is a pure function of the request, a tagged stream stays
    /// byte-identical cold vs. warm and at every worker count.
    pub fn with_request(writer: W, req: impl Into<String>) -> Self {
        JsonlRecorder {
            writer,
            lines: 0,
            error: None,
            req: Some(req.into()),
        }
    }

    /// A recorder whose first line is a `"type":"meta"` provenance record.
    pub fn with_provenance(mut writer: W, provenance: &Provenance) -> io::Result<Self> {
        writeln!(writer, "{}", provenance.to_jsonl())?;
        Ok(JsonlRecorder {
            writer,
            lines: 1,
            error: None,
            req: None,
        })
    }

    /// Lines written so far (including the meta line, if any).
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Takes the first write error, if one occurred.
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Flushes and returns the underlying writer, surfacing any sticky error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> Recorder for JsonlRecorder<W> {
    fn record(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(
            self.writer,
            "{}",
            event.to_jsonl_tagged(self.req.as_deref())
        ) {
            self.error = Some(e);
        } else {
            self.lines += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled() {
        const {
            assert!(!NullRecorder::ENABLED);
            assert!(CounterRecorder::ENABLED);
            assert!(JsonlRecorder::<Vec<u8>>::ENABLED);
        }
    }

    #[test]
    fn counter_truncates_unbilled_terminal_round() {
        let mut c = CounterRecorder::new();
        c.record(&Event::SimRunStart {
            nodes: 2,
            edges: 1,
            max_degree: 1,
            seed: 0,
        });
        for round in 1..=3 {
            c.record(&Event::RoundStart { round, running: 2 });
            c.record(&Event::RoundEnd {
                round,
                delivered: if round < 3 { 2 } else { 0 },
                bytes: if round < 3 { 8 } else { 0 },
                halted: 0,
                running: 2,
            });
        }
        // Terminal round delivered nothing: billed rounds = 2.
        c.record(&Event::SimRunEnd {
            rounds: 2,
            messages: 4,
        });
        assert_eq!(c.deliveries_per_round(), &[2, 2]);
        assert_eq!(c.rounds, 2);
        assert_eq!(c.messages, 4);
        assert_eq!(c.bytes, 16);
    }

    #[test]
    fn counter_tracks_min_headroom() {
        let mut c = CounterRecorder::new();
        assert_eq!(c.min_headroom, f64::INFINITY);
        c.record(&Event::FixStep {
            step: 0,
            variable: 0,
            value: 0,
            rank: 2,
            touched: vec![0, 1],
            inc: vec![1.0, 1.0],
            phi_product: vec![0.5, 0.5],
            headroom: vec![0.75, 1.25],
        });
        assert_eq!(c.min_headroom, 0.75);
        assert_eq!(c.fix_steps, 1);
    }

    #[test]
    fn buf_recorder_replays_in_order_and_drains() {
        let mut buf = BufRecorder::new();
        buf.record(&Event::RoundStart {
            round: 1,
            running: 2,
        });
        buf.record(&Event::NodeHalt { round: 1, node: 0 });
        assert_eq!(buf.len(), 2);
        let mut jsonl = JsonlRecorder::new(Vec::new());
        buf.replay_into(&mut jsonl);
        assert!(buf.is_empty());
        let direct = {
            let mut r = JsonlRecorder::new(Vec::new());
            r.record(&Event::RoundStart {
                round: 1,
                running: 2,
            });
            r.record(&Event::NodeHalt { round: 1, node: 0 });
            r.finish().unwrap()
        };
        assert_eq!(jsonl.finish().unwrap(), direct);
    }

    #[test]
    fn jsonl_recorder_tags_every_line_with_req() {
        let mut r = JsonlRecorder::with_request(Vec::new(), "\"q0\"");
        r.record(&Event::FixRunEnd {
            steps: 1,
            violated: 0,
        });
        let text = String::from_utf8(r.finish().unwrap()).unwrap();
        assert_eq!(
            text,
            "{\"type\":\"fix_run_end\",\"req\":\"q0\",\"steps\":1,\"violated\":0}\n"
        );
    }

    #[test]
    fn jsonl_recorder_streams_lines() {
        let mut r = JsonlRecorder::new(Vec::new());
        r.record(&Event::RoundStart {
            round: 1,
            running: 4,
        });
        r.record(&Event::SimRunEnd {
            rounds: 1,
            messages: 0,
        });
        assert_eq!(r.lines(), 2);
        let buf = r.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("{\"type\":\"round_start\""));
    }
}
