//! `obs-report` — validate, summarize, export, and diff recorded JSONL
//! streams.
//!
//! ```text
//! obs-report [--validate] <file.jsonl>...            summary (legacy form)
//! obs-report summarize [--validate] [--json] [--by-request] <file.jsonl>...
//! obs-report validate [--stats] <file.jsonl>...      schema + fold check
//! obs-report series --out <dir> <file.jsonl>...      per-round/halt/step CSVs
//! obs-report diff [--context K] <a.jsonl> <b.jsonl>  first-divergence triage
//! obs-report resume-check <prefix.jsonl> <full.jsonl>  verify a resume triple
//! obs-report tail [--interval-ms N] [--idle-exit-ms N] <file.jsonl>
//! ```
//!
//! `summarize --json` prints one machine-readable JSON object per input
//! file instead of the human summary; `--by-request` appends the
//! per-`req` correlation-tag section (schema v2 streams). `tail`
//! follows a growing file, folding complete lines incrementally and
//! reprinting the live summary; `--idle-exit-ms N` makes it exit once
//! the file has been quiet for `N` ms (useful in scripts and tests).
//!
//! Every mode streams its inputs line-by-line through a [`BufRead`] loop in
//! bounded memory — a multi-gigabyte trace is folded without ever being
//! resident. A final line cut short by a crashed producer (no trailing
//! newline, not parseable) is reported as *truncated*, with a warning
//! naming the byte offset where the durable prefix ends, after everything
//! before it has been processed normally — including cuts that land
//! inside the provenance meta line or a `#checkpoint ` sidecar line.
//!
//! `validate` runs the stream through the schema validator *and* the
//! checkpoint-aware [`RunState`] fold (which verifies every sidecar's
//! counters and digest against the events before it); `--stats` prints
//! one awk-friendly `key=value` line per file. `resume-check` verifies a
//! (prefix, checkpoint, continuation) triple offline: the interrupted
//! file's durable prefix must reach a checkpoint, and the continued
//! stream must extend that prefix byte-for-byte through it (DESIGN.md
//! §3.12).
//!
//! # Exit codes (the contract CI relies on)
//!
//! | code | meaning                                                    |
//! |------|------------------------------------------------------------|
//! | 0    | success (for `diff`: streams identical after `meta`)       |
//! | 1    | schema violation / malformed line (for `diff`: divergence) |
//! | 2    | I/O error (unreadable file, usage error)                   |
//! | 3    | truncated final line (crashed producer; rest was processed)|
//!
//! When several inputs fail differently, the first failure's code wins.
//! The codes are pinned by `crates/obs/tests/cli.rs`.

use lll_obs::diff::first_divergence;
use lll_obs::replay::{Replay, RunState};
use lll_obs::report::Summary;
use lll_obs::schema::StreamValidator;
use lll_obs::Provenance;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Success.
const EXIT_OK: u8 = 0;
/// Schema violation, malformed line, or (for `diff`) a divergence.
const EXIT_SCHEMA: u8 = 1;
/// I/O or usage error.
const EXIT_IO: u8 = 2;
/// Truncated final line: the producer crashed mid-write.
const EXIT_TRUNCATED: u8 = 3;

const USAGE: &str = "usage: obs-report [--validate] <file.jsonl>...
       obs-report summarize [--validate] [--json] [--by-request] <file.jsonl>...
       obs-report validate [--stats] <file.jsonl>...
       obs-report series --out <dir> <file.jsonl>...
       obs-report diff [--context K] <a.jsonl> <b.jsonl>
       obs-report resume-check <prefix.jsonl> <full.jsonl>
       obs-report tail [--interval-ms N] [--idle-exit-ms N] <file.jsonl>
exit codes: 0 ok; 1 schema violation (diff: divergent); 2 I/O error; 3 truncated stream";

/// First-failure-wins exit code accumulator.
struct Exit(u8);

impl Exit {
    fn set(&mut self, code: u8) {
        if self.0 == EXIT_OK {
            self.0 = code;
        }
    }
}

/// Streams `path` line-by-line into `fold`. Returns the exit code for
/// this file: `fold` errors map to [`EXIT_SCHEMA`], read errors to
/// [`EXIT_IO`], and an unterminated final line that is not valid JSON
/// (including a cut inside the meta line or a `#checkpoint ` sidecar,
/// neither of which parses when torn) to [`EXIT_TRUNCATED`] — with a
/// warning naming the byte offset where the durable prefix ends; earlier
/// lines are still folded.
fn stream_file(path: &str, mut fold: impl FnMut(usize, &str) -> Result<(), String>) -> u8 {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("obs-report: {path}: {e}");
            return EXIT_IO;
        }
    };
    let mut reader = BufReader::new(file);
    let mut line = String::new();
    let mut lineno = 0usize;
    let mut offset = 0u64;
    loop {
        line.clear();
        let read = match reader.read_line(&mut line) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("obs-report: {path}: read error: {e}");
                return EXIT_IO;
            }
        };
        if read == 0 {
            return EXIT_OK;
        }
        lineno += 1;
        let start = offset;
        offset += read as u64;
        let terminated = line.ends_with('\n');
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        // An unterminated sidecar line is always torn (a sidecar is only
        // durable with its newline); an unterminated JSON line is torn
        // when it no longer parses.
        let torn = !terminated
            && (trimmed.starts_with('#') || serde_json::from_str::<serde::Value>(trimmed).is_err());
        if torn {
            eprintln!(
                "obs-report: {path}: warning: line {lineno} is truncated at byte offset \
                 {start} (crashed producer?); {} complete line(s) / {start} byte(s) were \
                 processed",
                lineno - 1
            );
            return EXIT_TRUNCATED;
        }
        if let Err(e) = fold(lineno, trimmed) {
            eprintln!("obs-report: {path}: line {lineno}: {e}");
            return EXIT_SCHEMA;
        }
    }
}

/// Output shaping for the summarize mode.
#[derive(Clone, Copy, Default)]
struct SummarizeOpts {
    validate: bool,
    /// Machine-readable output: one JSON object per input file.
    json: bool,
    /// Append the per-request (`req` correlation tag) section.
    by_request: bool,
}

/// The summarize mode (also the legacy no-subcommand form): streaming
/// validation (optional) + streaming summary per input file.
fn run_summarize(opts: SummarizeOpts, paths: &[String]) -> u8 {
    let mut exit = Exit(EXIT_OK);
    for path in paths {
        let mut validator = opts.validate.then(StreamValidator::new);
        let mut summary = Summary::default();
        let code = stream_file(path, |_, line| {
            if let Some(v) = validator.as_mut() {
                v.check(line)?;
            }
            summary.fold_line(line)
        });
        let mut code = code;
        if code == EXIT_OK {
            if let Some(v) = validator.take() {
                match v.finish() {
                    Ok(lines) => {
                        if !opts.json {
                            println!("{path}: schema OK ({lines} lines)");
                        }
                    }
                    Err(e) => {
                        eprintln!("obs-report: {path}: schema violation: {e}");
                        code = EXIT_SCHEMA;
                    }
                }
            }
        }
        if code == EXIT_OK || code == EXIT_TRUNCATED {
            if opts.json {
                let mut obj = match summary.to_json() {
                    serde::Value::Object(fields) => fields,
                    _ => unreachable!("Summary::to_json returns an object"),
                };
                obj.insert(0, ("file".to_owned(), serde::Value::String(path.clone())));
                match serde_json::to_string(&serde::Value::Object(obj)) {
                    Ok(line) => println!("{line}"),
                    Err(e) => {
                        eprintln!("obs-report: {path}: cannot encode summary: {e}");
                        code = EXIT_IO;
                    }
                }
            } else {
                println!("== {path} ==");
                print!("{summary}");
                if opts.by_request {
                    let mut section = String::new();
                    summary
                        .write_by_request(&mut section)
                        .expect("String sink never fails");
                    print!("{section}");
                }
            }
        }
        exit.set(code);
    }
    exit.0
}

/// The tail mode: follow a growing JSONL file, folding complete lines
/// incrementally and reprinting the summary whenever new data arrives.
/// A final line without its newline is held back until the producer
/// finishes it. With `--idle-exit-ms N`, exits once the file has been
/// quiet for `N` ms — code 0 normally, 3 if an unfinished partial line
/// is still pending (crashed producer).
fn run_tail(path: &str, interval_ms: u64, idle_exit_ms: Option<u64>, by_request: bool) -> u8 {
    use std::io::{Read, Seek, SeekFrom};
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("obs-report: {path}: {e}");
            return EXIT_IO;
        }
    };
    let mut summary = Summary::default();
    let mut offset = 0u64;
    let mut partial = String::new();
    let mut idle = std::time::Duration::ZERO;
    let interval = std::time::Duration::from_millis(interval_ms.max(1));
    loop {
        if let Err(e) = file.seek(SeekFrom::Start(offset)) {
            eprintln!("obs-report: {path}: seek: {e}");
            return EXIT_IO;
        }
        let mut chunk = String::new();
        match file.read_to_string(&mut chunk) {
            Ok(_) => {}
            Err(e) => {
                eprintln!("obs-report: {path}: read error: {e}");
                return EXIT_IO;
            }
        }
        offset += chunk.len() as u64;
        let mut folded = 0usize;
        if !chunk.is_empty() {
            partial.push_str(&chunk);
            while let Some(nl) = partial.find('\n') {
                let line: String = partial.drain(..=nl).collect();
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                if let Err(e) = summary.fold_line(line) {
                    eprintln!("obs-report: {path}: {e}");
                    return EXIT_SCHEMA;
                }
                folded += 1;
            }
        }
        if folded > 0 {
            idle = std::time::Duration::ZERO;
            println!("== tail {path} ({} lines) ==", summary.lines);
            print!("{summary}");
            if by_request {
                let mut section = String::new();
                summary
                    .write_by_request(&mut section)
                    .expect("String sink never fails");
                print!("{section}");
            }
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        } else {
            idle += interval;
            if let Some(limit) = idle_exit_ms {
                if idle >= std::time::Duration::from_millis(limit) {
                    if partial.trim().is_empty() {
                        return EXIT_OK;
                    }
                    eprintln!(
                        "obs-report: {path}: warning: unfinished final line after idle \
                         timeout (crashed producer?)"
                    );
                    return EXIT_TRUNCATED;
                }
            }
        }
        std::thread::sleep(interval);
    }
}

/// The series mode: fold each input with [`Replay`] and write the three
/// provenance-stamped CSV series next to `--out`.
fn run_series(out_dir: &Path, paths: &[String]) -> u8 {
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("obs-report: {}: {e}", out_dir.display());
        return EXIT_IO;
    }
    let prov = Provenance::capture().csv_comment();
    let mut exit = Exit(EXIT_OK);
    for path in paths {
        let mut replay = Replay::new();
        let code = stream_file(path, |_, line| replay.fold_line(line));
        exit.set(code);
        if code != EXIT_OK && code != EXIT_TRUNCATED {
            continue;
        }
        let stem = Path::new(path).file_stem().map_or_else(
            || "stream".to_string(),
            |s| s.to_string_lossy().into_owned(),
        );
        for (suffix, body) in [
            ("rounds", replay.rounds_csv(&prov)),
            ("halts", replay.halts_csv(&prov)),
            ("steps", replay.steps_csv(&prov)),
        ] {
            let target = out_dir.join(format!("{stem}_{suffix}.csv"));
            if let Err(e) = std::fs::write(&target, body) {
                eprintln!("obs-report: {}: {e}", target.display());
                exit.set(EXIT_IO);
                continue;
            }
            println!("(wrote {})", target.display());
        }
    }
    exit.0
}

/// The diff mode: bisect two streams to their first divergent event.
fn run_diff(context: usize, a_path: &str, b_path: &str) -> u8 {
    let open = |p: &str| -> Result<BufReader<File>, u8> {
        File::open(p).map(BufReader::new).map_err(|e| {
            eprintln!("obs-report: {p}: {e}");
            EXIT_IO
        })
    };
    let a = match open(a_path) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let b = match open(b_path) {
        Ok(r) => r,
        Err(code) => return code,
    };
    // map_while(Result::ok) treats a mid-stream read error as stream end;
    // that still yields a correct "diverges at index i" for the triage
    // use case, and open errors (the common I/O failure) were classified
    // above.
    let div = first_divergence(
        a.lines().map_while(Result::ok),
        b.lines().map_while(Result::ok),
        context,
    );
    match div {
        None => {
            println!("{a_path} and {b_path}: identical event streams");
            EXIT_OK
        }
        Some(d) => {
            println!("== diff {a_path} {b_path} ==");
            print!("{d}");
            EXIT_SCHEMA
        }
    }
}

/// Folds `path` through the checkpoint-aware [`RunState`] fold,
/// byte-precisely (lines are passed unshortened, so the fold's byte
/// offsets are file offsets). Returns the state, the torn-tail offset
/// if the final line is unterminated (RunState policy: a torn tail is
/// never folded), and the exit code.
fn fold_run_state(path: &str) -> (RunState, Option<u64>, u8) {
    let mut state = RunState::new();
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("obs-report: {path}: {e}");
            return (state, None, EXIT_IO);
        }
    };
    let mut reader = BufReader::new(file);
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        let read = match reader.read_line(&mut line) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("obs-report: {path}: read error: {e}");
                return (state, None, EXIT_IO);
            }
        };
        if read == 0 {
            return (state, None, EXIT_OK);
        }
        lineno += 1;
        match line.strip_suffix('\n') {
            Some(content) => {
                if let Err(e) = state.fold_line(content) {
                    eprintln!("obs-report: {path}: line {lineno}: {e}");
                    return (state, None, EXIT_SCHEMA);
                }
            }
            None => {
                let torn_at = state.bytes();
                eprintln!(
                    "obs-report: {path}: warning: line {lineno} is truncated at byte offset \
                     {torn_at} (crashed producer?); the durable prefix is {torn_at} byte(s) / \
                     {} event(s)",
                    state.events()
                );
                return (state, Some(torn_at), EXIT_TRUNCATED);
            }
        }
    }
}

/// The validate mode: schema validation plus the checkpoint-aware
/// `RunState` fold (which verifies every `#checkpoint ` sidecar against
/// the events before it). With `--stats`, prints one awk-friendly
/// `key=value` line per file; `last_checkpoint_round` is `-1` when the
/// stream carries no checkpoint.
fn run_validate(stats: bool, paths: &[String]) -> u8 {
    let mut exit = Exit(EXIT_OK);
    for path in paths {
        let mut validator = StreamValidator::new();
        let mut schema_ok = true;
        let code = stream_file(path, |_, line| {
            if schema_ok {
                if let Err(e) = validator.check(line) {
                    schema_ok = false;
                    return Err(e);
                }
            }
            Ok(())
        });
        let mut code = code;
        if code == EXIT_OK {
            if let Err(e) = validator.finish() {
                eprintln!("obs-report: {path}: schema violation: {e}");
                code = EXIT_SCHEMA;
            }
        }
        if code == EXIT_OK || code == EXIT_TRUNCATED {
            // Second pass: the resumable-state fold, with byte-precise
            // offsets and sidecar counter/digest verification.
            let (state, torn, fold_code) = fold_run_state(path);
            if fold_code != EXIT_OK && fold_code != EXIT_TRUNCATED {
                code = fold_code;
            } else if fold_code == EXIT_TRUNCATED && code == EXIT_OK {
                code = EXIT_TRUNCATED;
            }
            if code == EXIT_OK || code == EXIT_TRUNCATED {
                if stats {
                    let last_ck_round = state
                        .last_checkpoint()
                        .map_or(-1i64, |rp| rp.checkpoint.round as i64);
                    println!(
                        "{path}: events={} bytes={} rounds={} steps={} sim_runs={} \
                         fix_runs={} audits={} checkpoints={} last_checkpoint_round={} \
                         digest={:016x} torn={}",
                        state.events(),
                        state.bytes(),
                        state.rounds(),
                        state.steps().len(),
                        state.sim_runs(),
                        state.fix_runs(),
                        state.audits(),
                        u64::from(state.last_checkpoint().is_some()),
                        last_ck_round,
                        state.digest(),
                        u64::from(torn.is_some()),
                    );
                } else {
                    println!(
                        "{path}: schema OK ({} event(s), {} byte(s))",
                        state.events(),
                        state.bytes()
                    );
                }
            }
        }
        exit.set(code);
    }
    exit.0
}

/// Byte-compares the first `limit` bytes of two files in bounded
/// memory. Returns the offset of the first mismatch, if any.
fn compare_prefix(a_path: &str, b_path: &str, limit: u64) -> Result<Option<u64>, String> {
    use std::io::Read;
    let open = |p: &str| {
        File::open(p)
            .map(BufReader::new)
            .map_err(|e| format!("{p}: {e}"))
    };
    let mut a = open(a_path)?.take(limit);
    let mut b = open(b_path)?.take(limit);
    let mut buf_a = vec![0u8; 64 * 1024];
    let mut buf_b = vec![0u8; 64 * 1024];
    let mut offset = 0u64;
    loop {
        let na = a.read(&mut buf_a).map_err(|e| format!("{a_path}: {e}"))?;
        // Fill b's buffer to the same length as a's chunk.
        let mut nb = 0usize;
        while nb < na {
            let n = b
                .read(&mut buf_b[nb..na])
                .map_err(|e| format!("{b_path}: {e}"))?;
            if n == 0 {
                break;
            }
            nb += n;
        }
        if na == 0 && nb == 0 {
            if offset < limit {
                return Err(format!(
                    "both files end at byte {offset}, before the checkpoint boundary {limit}"
                ));
            }
            return Ok(None);
        }
        for i in 0..na.min(nb) {
            if buf_a[i] != buf_b[i] {
                return Ok(Some(offset + i as u64));
            }
        }
        if na != nb {
            return Ok(Some(offset + na.min(nb) as u64));
        }
        offset += na as u64;
    }
}

/// The resume-check mode: verifies a (prefix, checkpoint, continuation)
/// triple offline. `prefix` is the interrupted run's stream (its torn
/// tail, if any, is ignored past the last checkpoint); `full` is the
/// continued (or reference) stream from the same recorder lineage.
///
/// Checks: the prefix's durable part reaches a `#checkpoint ` sidecar
/// whose counters and digest the fold verified; the full stream is
/// complete (no torn tail) and folds clean — re-verifying that same
/// sidecar against its own events; and the two files are byte-identical
/// through the checkpoint boundary, so the continuation really extends
/// the checkpointed prefix rather than some other run.
fn run_resume_check(prefix_path: &str, full_path: &str) -> u8 {
    let (prefix_state, _torn, prefix_code) = fold_run_state(prefix_path);
    if prefix_code != EXIT_OK && prefix_code != EXIT_TRUNCATED {
        return prefix_code;
    }
    let Some(rp) = prefix_state.last_checkpoint().copied() else {
        eprintln!(
            "obs-report: {prefix_path}: no #checkpoint sidecar in the durable prefix \
             ({} byte(s)); nothing to resume from",
            prefix_state.bytes()
        );
        return EXIT_SCHEMA;
    };
    let (full_state, full_torn, full_code) = fold_run_state(full_path);
    if full_code != EXIT_OK {
        if full_torn.is_some() {
            eprintln!("obs-report: {full_path}: continued stream is itself truncated");
        }
        return full_code;
    }
    let boundary = rp.checkpoint.resume_offset();
    if full_state.bytes() < boundary {
        eprintln!(
            "obs-report: {full_path}: continued stream ends at byte {} — before the \
             checkpoint boundary {boundary}",
            full_state.bytes()
        );
        return EXIT_SCHEMA;
    }
    match compare_prefix(prefix_path, full_path, boundary) {
        Ok(None) => {}
        Ok(Some(at)) => {
            eprintln!(
                "obs-report: resume-check: {prefix_path} and {full_path} diverge at byte \
                 {at}, before the checkpoint boundary {boundary} — the continuation does \
                 not extend the checkpointed prefix"
            );
            return EXIT_SCHEMA;
        }
        Err(e) => {
            eprintln!("obs-report: resume-check: {e}");
            return EXIT_IO;
        }
    }
    println!(
        "resume-check OK: checkpoint at {} verified; continuation adds {} event(s) / {} \
         byte(s) beyond it ({} step(s), {} round(s) total)",
        rp.checkpoint,
        full_state.events() - rp.checkpoint.events,
        full_state.bytes() - boundary,
        full_state.steps().len(),
        full_state.rounds(),
    );
    EXIT_OK
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let code = match args.first().map(String::as_str) {
        Some("summarize") => {
            let rest = &args[1..];
            let opts = SummarizeOpts {
                validate: rest.iter().any(|a| a == "--validate"),
                json: rest.iter().any(|a| a == "--json"),
                by_request: rest.iter().any(|a| a == "--by-request"),
            };
            let paths: Vec<String> = rest
                .iter()
                .filter(|a| !matches!(a.as_str(), "--validate" | "--json" | "--by-request"))
                .cloned()
                .collect();
            if paths.is_empty() {
                eprintln!("obs-report: no input files\n{USAGE}");
                EXIT_IO
            } else {
                run_summarize(opts, &paths)
            }
        }
        Some("tail") => {
            let mut interval_ms = 200u64;
            let mut idle_exit_ms = None;
            let mut by_request = false;
            let mut paths = Vec::new();
            let mut it = args[1..].iter();
            let mut usage_error = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--interval-ms" => match it.next().and_then(|n| n.parse().ok()) {
                        Some(n) => interval_ms = n,
                        None => usage_error = true,
                    },
                    "--idle-exit-ms" => match it.next().and_then(|n| n.parse().ok()) {
                        Some(n) => idle_exit_ms = Some(n),
                        None => usage_error = true,
                    },
                    "--by-request" => by_request = true,
                    _ => paths.push(a.clone()),
                }
            }
            if usage_error || paths.len() != 1 {
                eprintln!("obs-report: tail needs exactly one file\n{USAGE}");
                EXIT_IO
            } else {
                run_tail(&paths[0], interval_ms, idle_exit_ms, by_request)
            }
        }
        Some("series") => {
            let mut out: Option<PathBuf> = None;
            let mut paths = Vec::new();
            let mut it = args[1..].iter();
            let mut usage_error = false;
            while let Some(a) = it.next() {
                if a == "--out" {
                    match it.next() {
                        Some(dir) => out = Some(PathBuf::from(dir)),
                        None => usage_error = true,
                    }
                } else {
                    paths.push(a.clone());
                }
            }
            match (out, usage_error, paths.is_empty()) {
                (Some(dir), false, false) => run_series(&dir, &paths),
                _ => {
                    eprintln!("obs-report: series needs --out <dir> and input files\n{USAGE}");
                    EXIT_IO
                }
            }
        }
        Some("validate") => {
            let rest = &args[1..];
            let stats = rest.iter().any(|a| a == "--stats");
            let paths: Vec<String> = rest
                .iter()
                .filter(|a| a.as_str() != "--stats")
                .cloned()
                .collect();
            if paths.is_empty() {
                eprintln!("obs-report: no input files\n{USAGE}");
                EXIT_IO
            } else {
                run_validate(stats, &paths)
            }
        }
        Some("resume-check") => {
            let paths: Vec<String> = args[1..].to_vec();
            if paths.len() != 2 {
                eprintln!("obs-report: resume-check needs exactly two files\n{USAGE}");
                EXIT_IO
            } else {
                run_resume_check(&paths[0], &paths[1])
            }
        }
        Some("diff") => {
            let mut context = 3usize;
            let mut paths = Vec::new();
            let mut it = args[1..].iter();
            let mut usage_error = false;
            while let Some(a) = it.next() {
                if a == "--context" {
                    match it.next().and_then(|k| k.parse().ok()) {
                        Some(k) => context = k,
                        None => usage_error = true,
                    }
                } else {
                    paths.push(a.clone());
                }
            }
            if usage_error || paths.len() != 2 {
                eprintln!("obs-report: diff needs exactly two files\n{USAGE}");
                EXIT_IO
            } else {
                run_diff(context, &paths[0], &paths[1])
            }
        }
        Some(_) => {
            // Legacy form: flags and paths, no subcommand.
            let validate = args.iter().any(|a| a == "--validate");
            let paths: Vec<String> = args
                .iter()
                .filter(|a| *a != "--validate")
                .cloned()
                .collect();
            if paths.is_empty() {
                eprintln!("obs-report: no input files\n{USAGE}");
                EXIT_IO
            } else {
                run_summarize(
                    SummarizeOpts {
                        validate,
                        ..SummarizeOpts::default()
                    },
                    &paths,
                )
            }
        }
        None => {
            eprintln!("obs-report: no input files\n{USAGE}");
            EXIT_IO
        }
    };
    ExitCode::from(code)
}
