//! `obs-report` — fold recorded JSONL streams into a summary table.
//!
//! Usage: `obs-report [--validate] <file.jsonl>...`
//!
//! With `--validate`, every line is checked against the event schema (field
//! presence/kinds plus monotone round/step indices) and the process exits
//! nonzero on the first violation — this is what CI runs on traced workloads.

use lll_obs::report::Summary;
use lll_obs::schema::validate_stream;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut validate = false;
    let mut paths = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--validate" => validate = true,
            "--help" | "-h" => {
                println!("usage: obs-report [--validate] <file.jsonl>...");
                return ExitCode::SUCCESS;
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.is_empty() {
        eprintln!("obs-report: no input files (usage: obs-report [--validate] <file.jsonl>...)");
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs-report: {path}: {e}");
                failed = true;
                continue;
            }
        };
        if validate {
            match validate_stream(&text) {
                Ok(lines) => println!("{path}: schema OK ({lines} lines)"),
                Err(e) => {
                    eprintln!("obs-report: {path}: schema violation: {e}");
                    failed = true;
                    continue;
                }
            }
        }
        match Summary::from_stream(&text) {
            Ok(summary) => {
                println!("== {path} ==");
                print!("{summary}");
            }
            Err(e) => {
                eprintln!("obs-report: {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
