//! Typed event vocabulary for the flight recorder.
//!
//! Events are plain data. Every event on the deterministic path carries
//! logical indices (round, step, node id) and never wall-clock time, so a
//! recorded stream is a pure function of the run's inputs. The JSONL
//! encoding is hand-rolled with a fixed field order per variant, which is
//! what makes byte-identity across engines a meaningful guarantee.

/// Version of the JSONL event schema. Bump on any change to field names,
/// field order, or variant tags; see DESIGN.md §3.7 for the versioning rules.
///
/// v2 (additive over v1): any event line may carry an optional `req`
/// field — a scalar correlation id, spliced directly after `type` —
/// attributing the event to the serve request that caused it. Untagged
/// lines are byte-identical to v1, and readers accept both versions
/// (DESIGN.md §3.11).
pub const SCHEMA_VERSION: u32 = 2;

/// A single recorded event from one of the three instrumented layers.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    // ---- simulator layer ----
    /// Emitted once before `init` messages are exchanged.
    SimRunStart {
        /// Number of nodes in the communication graph.
        nodes: usize,
        /// Number of edges in the communication graph.
        edges: usize,
        /// Maximum degree of the communication graph.
        max_degree: usize,
        /// Simulator seed (per-node RNGs are derived from this).
        seed: u64,
    },
    /// Emitted at the top of each round, before delivery.
    RoundStart {
        /// 1-based round index (matches the round bill).
        round: usize,
        /// Nodes still running (not yet halted) when the round begins.
        running: usize,
    },
    /// A node halted (produced its output) during `round`. Emitted in
    /// ascending node order within the round on both engines.
    NodeHalt {
        /// 1-based round index the halt happened in.
        round: usize,
        /// Node that halted.
        node: usize,
    },
    /// Emitted at the end of each round, after all nodes have stepped.
    RoundEnd {
        /// 1-based round index.
        round: usize,
        /// Messages delivered at the start of this round (message bill share).
        delivered: usize,
        /// Byte bill for this round: `delivered * size_of::<Message>()`.
        bytes: usize,
        /// Nodes that halted during this round.
        halted: usize,
        /// Nodes still running after this round.
        running: usize,
    },
    /// Emitted once after the run completes successfully.
    SimRunEnd {
        /// Billed rounds (terminal decide-only round excluded, as in `RunOutcome`).
        rounds: usize,
        /// Total messages delivered across the run.
        messages: usize,
    },

    // ---- fixer layer ----
    /// Emitted once when a fixing run starts.
    FixRunStart {
        /// Number of variables in the instance.
        variables: usize,
        /// Number of bad events in the instance.
        events: usize,
        /// Maximum event rank (2 for `Fixer2`, 3 for `Fixer3`).
        max_rank: usize,
    },
    /// One variable-fixing step. `touched` lists the events the fixed
    /// variable affects; `inc` and `phi_product` are indexed like `touched`,
    /// while `headroom` has one entry per dependency edge among the touched
    /// event pairs (0 entries at rank 1, 1 at rank 2, 3 at rank 3).
    FixStep {
        /// 0-based step index within the run.
        step: usize,
        /// Variable that was fixed.
        variable: usize,
        /// Value it was fixed to.
        value: usize,
        /// Rank of the update rule applied (1, 2 or 3).
        rank: usize,
        /// Event ids the fixed variable affects (its φ-update footprint).
        touched: Vec<usize>,
        /// Conditional-probability growth `Inc(e, x=value)` per touched event,
        /// evaluated against the pre-fix partial assignment.
        inc: Vec<f64>,
        /// φ-product mass `Π_{e∋v} φ_e^v` per touched event after the update.
        phi_product: Vec<f64>,
        /// `P*` headroom `2 − φ_e^u − φ_e^v` after the update, one entry per
        /// dependency edge among the touched event pairs (pair-sum slack;
        /// negative means the invariant broke).
        headroom: Vec<f64>,
    },
    /// Incremental or full audit accepted the state after `step`.
    AuditPass {
        /// Step the audit ran after.
        step: usize,
        /// Variable fixed at that step.
        variable: usize,
    },
    /// Audit rejected the state after `step`.
    AuditViolation {
        /// Step the audit ran after.
        step: usize,
        /// Variable fixed at that step.
        variable: usize,
        /// Events whose pair-sum bound `φ_e^u + φ_e^v ≤ 2` failed.
        pair_violations: Vec<usize>,
        /// Events whose conditional-probability bound failed.
        prob_violations: Vec<usize>,
    },
    /// Emitted once when a fixing run completes.
    FixRunEnd {
        /// Total fixing steps performed.
        steps: usize,
        /// Bad events violated under the final assignment (0 on success).
        violated: usize,
    },

    // ---- bench layer ----
    /// An experiment in the tables harness began.
    ExperimentStart {
        /// Experiment id (e.g. `"E15"`).
        id: String,
    },
    /// The experiment emitted one result row.
    ExperimentRow {
        /// Experiment id.
        id: String,
        /// 0-based row index.
        index: usize,
    },
    /// The experiment finished with `rows` rows.
    ExperimentEnd {
        /// Experiment id.
        id: String,
        /// Rows emitted.
        rows: usize,
    },
}

impl Event {
    /// The `type` tag this event serializes under.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SimRunStart { .. } => "sim_run_start",
            Event::RoundStart { .. } => "round_start",
            Event::NodeHalt { .. } => "node_halt",
            Event::RoundEnd { .. } => "round_end",
            Event::SimRunEnd { .. } => "sim_run_end",
            Event::FixRunStart { .. } => "fix_run_start",
            Event::FixStep { .. } => "fix_step",
            Event::AuditPass { .. } => "audit_pass",
            Event::AuditViolation { .. } => "audit_violation",
            Event::FixRunEnd { .. } => "fix_run_end",
            Event::ExperimentStart { .. } => "experiment_start",
            Event::ExperimentRow { .. } => "experiment_row",
            Event::ExperimentEnd { .. } => "experiment_end",
        }
    }

    /// [`Event::to_jsonl`] with an optional request-correlation tag:
    /// `req` (already-encoded JSON scalar text, e.g. `"q7"` or `12`) is
    /// spliced in directly after the `type` field, so a tagged line is
    /// the untagged line plus one field — and `to_jsonl_tagged(None)`
    /// is byte-identical to [`Event::to_jsonl`]. The tag must be a
    /// scalar's JSON text; serve request ids (null/string/integer)
    /// satisfy this by construction.
    pub fn to_jsonl_tagged(&self, req: Option<&str>) -> String {
        let mut s = self.to_jsonl();
        if let Some(req) = req {
            // Position just past `{"type":"<kind>"`.
            let at = "{\"type\":\"".len() + self.kind().len() + 1;
            s.insert_str(at, &format!(",\"req\":{req}"));
        }
        s
    }

    /// Serialize to one JSONL line (no trailing newline). Field order is
    /// fixed per variant — part of the schema, covered by byte-identity tests.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(64);
        s.push_str("{\"type\":\"");
        s.push_str(self.kind());
        s.push('"');
        match self {
            Event::SimRunStart {
                nodes,
                edges,
                max_degree,
                seed,
            } => {
                push_usize(&mut s, "nodes", *nodes);
                push_usize(&mut s, "edges", *edges);
                push_usize(&mut s, "max_degree", *max_degree);
                push_u64(&mut s, "seed", *seed);
            }
            Event::RoundStart { round, running } => {
                push_usize(&mut s, "round", *round);
                push_usize(&mut s, "running", *running);
            }
            Event::NodeHalt { round, node } => {
                push_usize(&mut s, "round", *round);
                push_usize(&mut s, "node", *node);
            }
            Event::RoundEnd {
                round,
                delivered,
                bytes,
                halted,
                running,
            } => {
                push_usize(&mut s, "round", *round);
                push_usize(&mut s, "delivered", *delivered);
                push_usize(&mut s, "bytes", *bytes);
                push_usize(&mut s, "halted", *halted);
                push_usize(&mut s, "running", *running);
            }
            Event::SimRunEnd { rounds, messages } => {
                push_usize(&mut s, "rounds", *rounds);
                push_usize(&mut s, "messages", *messages);
            }
            Event::FixRunStart {
                variables,
                events,
                max_rank,
            } => {
                push_usize(&mut s, "variables", *variables);
                push_usize(&mut s, "events", *events);
                push_usize(&mut s, "max_rank", *max_rank);
            }
            Event::FixStep {
                step,
                variable,
                value,
                rank,
                touched,
                inc,
                phi_product,
                headroom,
            } => {
                push_usize(&mut s, "step", *step);
                push_usize(&mut s, "variable", *variable);
                push_usize(&mut s, "value", *value);
                push_usize(&mut s, "rank", *rank);
                push_usize_array(&mut s, "touched", touched);
                push_f64_array(&mut s, "inc", inc);
                push_f64_array(&mut s, "phi_product", phi_product);
                push_f64_array(&mut s, "headroom", headroom);
            }
            Event::AuditPass { step, variable } => {
                push_usize(&mut s, "step", *step);
                push_usize(&mut s, "variable", *variable);
            }
            Event::AuditViolation {
                step,
                variable,
                pair_violations,
                prob_violations,
            } => {
                push_usize(&mut s, "step", *step);
                push_usize(&mut s, "variable", *variable);
                push_usize_array(&mut s, "pair_violations", pair_violations);
                push_usize_array(&mut s, "prob_violations", prob_violations);
            }
            Event::FixRunEnd { steps, violated } => {
                push_usize(&mut s, "steps", *steps);
                push_usize(&mut s, "violated", *violated);
            }
            Event::ExperimentStart { id } => {
                push_str(&mut s, "id", id);
            }
            Event::ExperimentRow { id, index } => {
                push_str(&mut s, "id", id);
                push_usize(&mut s, "index", *index);
            }
            Event::ExperimentEnd { id, rows } => {
                push_str(&mut s, "id", id);
                push_usize(&mut s, "rows", *rows);
            }
        }
        s.push('}');
        s
    }
}

fn push_key(s: &mut String, key: &str) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":");
}

fn push_usize(s: &mut String, key: &str, v: usize) {
    push_key(s, key);
    s.push_str(itoa(v as u64).as_str());
}

fn push_u64(s: &mut String, key: &str, v: u64) {
    push_key(s, key);
    s.push_str(itoa(v).as_str());
}

fn itoa(v: u64) -> String {
    // std's Display for u64 is already allocation-light; keep it simple.
    format!("{v}")
}

/// Shortest round-trip float encoding; non-finite values (which only arise
/// from broken invariants) encode as `null` so the line stays valid JSON.
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v:?}");
        // `{:?}` never prints an exponent without a fraction, and always
        // prints a `.0` for integral values, so the output is valid JSON.
        s
    } else {
        "null".to_string()
    }
}

fn push_f64_array(s: &mut String, key: &str, vs: &[f64]) {
    push_key(s, key);
    s.push('[');
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&fmt_f64(*v));
    }
    s.push(']');
}

fn push_usize_array(s: &mut String, key: &str, vs: &[usize]) {
    push_key(s, key);
    s.push('[');
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(itoa(*v as u64).as_str());
    }
    s.push(']');
}

pub(crate) fn push_str(s: &mut String, key: &str, v: &str) {
    push_key(s, key);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                s.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_field_order_is_fixed() {
        let e = Event::RoundEnd {
            round: 3,
            delivered: 10,
            bytes: 40,
            halted: 1,
            running: 7,
        };
        assert_eq!(
            e.to_jsonl(),
            "{\"type\":\"round_end\",\"round\":3,\"delivered\":10,\"bytes\":40,\"halted\":1,\"running\":7}"
        );
    }

    #[test]
    fn floats_round_trip_and_nonfinite_is_null() {
        assert_eq!(fmt_f64(1.0), "1.0");
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn tagged_lines_splice_req_after_type() {
        let e = Event::NodeHalt { round: 1, node: 2 };
        assert_eq!(e.to_jsonl_tagged(None), e.to_jsonl());
        assert_eq!(
            e.to_jsonl_tagged(Some("\"q7\"")),
            "{\"type\":\"node_halt\",\"req\":\"q7\",\"round\":1,\"node\":2}"
        );
        assert_eq!(
            e.to_jsonl_tagged(Some("12")),
            "{\"type\":\"node_halt\",\"req\":12,\"round\":1,\"node\":2}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let e = Event::ExperimentStart {
            id: "a\"b\\c\nd".to_string(),
        };
        assert_eq!(
            e.to_jsonl(),
            "{\"type\":\"experiment_start\",\"id\":\"a\\\"b\\\\c\\nd\"}"
        );
    }

    #[test]
    fn every_variant_parses_as_json() {
        let samples = vec![
            Event::SimRunStart {
                nodes: 4,
                edges: 4,
                max_degree: 2,
                seed: 7,
            },
            Event::RoundStart {
                round: 1,
                running: 4,
            },
            Event::NodeHalt { round: 1, node: 2 },
            Event::RoundEnd {
                round: 1,
                delivered: 8,
                bytes: 32,
                halted: 0,
                running: 4,
            },
            Event::SimRunEnd {
                rounds: 5,
                messages: 40,
            },
            Event::FixRunStart {
                variables: 10,
                events: 5,
                max_rank: 2,
            },
            Event::FixStep {
                step: 0,
                variable: 3,
                value: 1,
                rank: 2,
                touched: vec![0, 2],
                inc: vec![1.5, 0.5],
                phi_product: vec![0.25, 0.75],
                headroom: vec![1.0, 0.5],
            },
            Event::AuditPass {
                step: 0,
                variable: 3,
            },
            Event::AuditViolation {
                step: 1,
                variable: 4,
                pair_violations: vec![2],
                prob_violations: vec![],
            },
            Event::FixRunEnd {
                steps: 10,
                violated: 0,
            },
            Event::ExperimentStart {
                id: "E15".to_string(),
            },
            Event::ExperimentRow {
                id: "E15".to_string(),
                index: 0,
            },
            Event::ExperimentEnd {
                id: "E15".to_string(),
                rows: 3,
            },
        ];
        for e in samples {
            let line = e.to_jsonl();
            let v: Result<serde::Value, serde_json::Error> = serde_json::from_str(&line);
            let v = v.unwrap_or_else(|err| panic!("{line}: {err:?}"));
            match v.get("type") {
                Some(serde::Value::String(t)) => assert_eq!(t, e.kind(), "{line}"),
                other => panic!("{line}: bad type field {other:?}"),
            }
        }
    }
}
