//! Checkpoint sidecars: the JSONL stream *is* the checkpoint format.
//!
//! The determinism contract (DESIGN.md §3.7) makes a recorded stream a
//! pure function of the run's inputs — so a prefix of the stream *is* a
//! serialization of the run's state at that point, and a run killed
//! mid-flight can resume from its last complete prefix instead of
//! restarting from round 0. This module defines the durable pieces of
//! that story:
//!
//! * [`Checkpoint`] — the `#checkpoint ` sidecar record a
//!   [`JsonlRecorder`](crate::JsonlRecorder) emits every N progress
//!   events: the fold digest, logical coordinates (round, step), the
//!   event count, and the byte offset of the sidecar line itself.
//! * [`StreamDigest`] — the rolling FNV-1a 64 digest over event-line
//!   bytes (meta and sidecar lines excluded) that ties a checkpoint to
//!   the exact prefix it summarizes.
//!
//! Sidecar lines start with `#`, which no JSON object can, so every
//! reader (validator, summarizer, differ, replay fold) skips them
//! structurally; the event stream with sidecars stripped is
//! byte-identical to one recorded without checkpointing (schema
//! v2-additive). The state *fold* that consumes a prefix and
//! reconstructs resumable run state lives in
//! [`replay::RunState`](crate::replay::RunState); the offline verifier
//! is `obs-report resume-check`.

use std::fmt;

/// Prefix of a checkpoint sidecar line (including the trailing space).
pub const CHECKPOINT_PREFIX: &str = "#checkpoint ";

/// Prefix shared by every sidecar comment line. A line starting with
/// `#` is never an event: readers skip unknown sidecars and parse known
/// ones (`#checkpoint `).
pub const SIDECAR_PREFIX: char = '#';

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A rolling FNV-1a 64-bit digest over the event-line bytes of a
/// stream (each line *including* its terminating newline; meta and
/// sidecar lines excluded). Both the emitting recorder and the reading
/// fold maintain one, so a checkpoint's digest pins the exact event
/// prefix it summarizes — independent of provenance and of whether
/// checkpointing was on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamDigest(u64);

impl StreamDigest {
    /// The digest of the empty stream.
    pub fn new() -> StreamDigest {
        StreamDigest(FNV_OFFSET)
    }

    /// A digest resumed from a previously-reported value.
    pub fn from_value(v: u64) -> StreamDigest {
        StreamDigest(v)
    }

    /// Folds bytes into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Folds one event line (without its newline); the newline is
    /// digested unconditionally so a complete final line missing its
    /// `\n` on disk digests the same as a terminated one.
    pub fn update_line(&mut self, line: &str) {
        self.update(line.as_bytes());
        self.update(b"\n");
    }

    /// The current digest value.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// The digest as the 16-hex-digit form used in checkpoint lines.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

impl Default for StreamDigest {
    fn default() -> StreamDigest {
        StreamDigest::new()
    }
}

/// One `#checkpoint ` sidecar record.
///
/// Emitted by a checkpointing [`JsonlRecorder`](crate::JsonlRecorder)
/// after every N progress events (`round_end` + `fix_step`), and parsed
/// back by [`Checkpoint::parse`]. `to_line` and `parse` round-trip
/// byte-exactly — resume relies on that to compute where the sidecar
/// line ends in the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checkpoint {
    /// `round_end` events folded so far (across all simulator runs).
    pub round: u64,
    /// `fix_step` events folded so far (across all fixer runs).
    pub step: u64,
    /// Event lines folded so far (meta and sidecar lines excluded).
    pub events: u64,
    /// Byte offset of this sidecar line's first byte in the recorder's
    /// own output (meta bytes included — it is a file offset).
    pub offset: u64,
    /// [`StreamDigest`] value over the event prefix, as emitted.
    pub digest: u64,
}

impl Checkpoint {
    /// Renders the sidecar line (no trailing newline). Fixed field
    /// order — part of the schema, like [`Event::to_jsonl`](crate::Event::to_jsonl).
    pub fn to_line(&self) -> String {
        format!(
            "{CHECKPOINT_PREFIX}{{\"round\":{},\"step\":{},\"events\":{},\"offset\":{},\"digest\":\"{:016x}\"}}",
            self.round, self.step, self.events, self.offset, self.digest
        )
    }

    /// The file offset one past this sidecar line's trailing newline —
    /// where a resumed recorder continues writing, and where the resume
    /// driver truncates a longer (possibly torn) file.
    pub fn resume_offset(&self) -> u64 {
        self.offset + self.to_line().len() as u64 + 1
    }

    /// Parses a `#checkpoint ` sidecar line (newline already stripped).
    ///
    /// # Errors
    ///
    /// A description of the malformed line: wrong prefix, invalid JSON
    /// payload, or missing/mistyped fields.
    pub fn parse(line: &str) -> Result<Checkpoint, String> {
        let payload = line
            .strip_prefix(CHECKPOINT_PREFIX)
            .ok_or_else(|| format!("not a checkpoint line: {line:?}"))?;
        let v: serde::Value = serde_json::from_str(payload)
            .map_err(|e| format!("checkpoint payload is not valid JSON: {e}"))?;
        let uint = |name: &str| match v.get(name) {
            Some(serde::Value::U64(n)) => Ok(*n),
            other => Err(format!(
                "checkpoint field {name:?} must be an unsigned integer, got {other:?}"
            )),
        };
        let round = uint("round")?;
        let step = uint("step")?;
        let events = uint("events")?;
        let offset = uint("offset")?;
        let digest = match v.get("digest") {
            Some(serde::Value::String(s)) if s.len() == 16 => {
                u64::from_str_radix(s, 16).map_err(|e| format!("checkpoint digest is not hex: {e}"))
            }
            other => Err(format!(
                "checkpoint field \"digest\" must be a 16-hex-digit string, got {other:?}"
            )),
        }?;
        Ok(Checkpoint {
            round,
            step,
            events,
            offset,
            digest,
        })
    }
}

impl fmt::Display for Checkpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "round {} / step {} / {} events / offset {} / digest {:016x}",
            self.round, self.step, self.events, self.offset, self.digest
        )
    }
}

/// Whether a raw line is a sidecar comment (checkpoint or other).
pub fn is_sidecar(line: &str) -> bool {
    line.starts_with(SIDECAR_PREFIX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive_and_newline_normalized() {
        let mut a = StreamDigest::new();
        a.update_line("{\"type\":\"round_start\",\"round\":1,\"running\":2}");
        a.update_line("{\"type\":\"round_end\",\"round\":1}");
        let mut b = StreamDigest::new();
        b.update_line("{\"type\":\"round_end\",\"round\":1}");
        b.update_line("{\"type\":\"round_start\",\"round\":1,\"running\":2}");
        assert_ne!(a.value(), b.value());

        let mut c = StreamDigest::new();
        c.update(b"{\"type\":\"round_start\",\"round\":1,\"running\":2}\n");
        c.update(b"{\"type\":\"round_end\",\"round\":1}\n");
        assert_eq!(a.value(), c.value());
        assert_eq!(a.hex().len(), 16);
    }

    #[test]
    fn checkpoint_line_round_trips_byte_exactly() {
        let ck = Checkpoint {
            round: 12,
            step: 340,
            events: 1077,
            offset: 65_536,
            digest: 0x0123_4567_89ab_cdef,
        };
        let line = ck.to_line();
        assert!(line.starts_with("#checkpoint {\"round\":12,"));
        assert!(line.contains("\"digest\":\"0123456789abcdef\""));
        assert_eq!(Checkpoint::parse(&line).unwrap(), ck);
        assert_eq!(ck.resume_offset(), 65_536 + line.len() as u64 + 1);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Checkpoint::parse("{\"round\":1}").is_err());
        assert!(Checkpoint::parse("#checkpoint {oops").is_err());
        assert!(Checkpoint::parse("#checkpoint {\"round\":1}")
            .unwrap_err()
            .contains("step"));
        assert!(Checkpoint::parse(
            "#checkpoint {\"round\":1,\"step\":0,\"events\":1,\"offset\":0,\"digest\":\"xyz\"}"
        )
        .unwrap_err()
        .contains("digest"));
    }

    #[test]
    fn sidecar_detection() {
        assert!(is_sidecar("#checkpoint {}"));
        assert!(is_sidecar("# a comment"));
        assert!(!is_sidecar("{\"type\":\"meta\"}"));
    }
}
