//! A live-telemetry metrics registry: named counters, gauges, and
//! [`Histogram`]-backed latency summaries with Prometheus text-format
//! exposition.
//!
//! The registry is the *mutable* counterpart of the flight recorder:
//! where the recorder captures the deterministic event stream, the
//! registry aggregates nondeterministic operational state (request
//! counts, latencies, memory footprints) for a scrape endpoint. Like
//! the timing channel it is strictly side-band — nothing here may feed
//! back into the deterministic path (DESIGN.md §3.11).
//!
//! Hot-path writes never contend on a shared lock: counters and
//! histograms are sharded into per-worker cells (a thread picks its
//! cell once, via a thread-local slot id) and merged only on read.
//! Histograms additionally maintain a small ring of rolling windows so
//! a scrape can report *recent* p50/p99 next to the cumulative
//! quantiles; the exporter advances the ring by calling
//! [`MetricsRegistry::rotate_windows`] on its own clock.

use crate::hist::Histogram;
use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Cells per sharded metric. A power of two so the slot mapping is a
/// mask; 16 covers every worker-pool width the daemon clamps to.
const SHARDS: usize = 16;

/// Rolling-window ring length: quantiles labelled "window" cover the
/// last `WINDOW_SLOTS` rotations (the exporter rotates every few
/// seconds, so this is on the order of the last half minute).
const WINDOW_SLOTS: usize = 4;

static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// This thread's stable shard index. Assigned once per thread from a
/// global counter, so a fixed worker pool spreads across cells and a
/// cell is never written by two threads at once in the common case
/// (correctness never depends on that — cells are atomics or mutexes).
fn shard_slot() -> usize {
    SLOT.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT_SLOT.fetch_add(1, Ordering::Relaxed);
            s.set(v);
        }
        v & (SHARDS - 1)
    })
}

/// One cache line per cell so neighbouring shards do not false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

struct CounterCore {
    name: &'static str,
    labels: String,
    help: &'static str,
    cells: [PaddedU64; SHARDS],
}

/// A monotone counter handle. Cloning shares the underlying cells.
#[derive(Clone)]
pub struct Counter(Arc<CounterCore>);

impl Counter {
    /// Adds `n`. One relaxed atomic add on this thread's cell.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.cells[shard_slot()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Merge-on-read total across all cells.
    pub fn value(&self) -> u64 {
        self.0
            .cells
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Mirrors an externally-tracked monotone total into this counter
    /// (cell 0 is overwritten; the other cells must stay untouched).
    /// For counters whose source of truth lives outside the registry —
    /// e.g. the topology cache's own hit/miss atomics — and is synced
    /// at scrape time.
    pub fn sync_total(&self, total: u64) {
        self.0.cells[0].0.store(total, Ordering::Relaxed);
    }
}

struct GaugeCore {
    name: &'static str,
    labels: String,
    help: &'static str,
    value: AtomicI64,
}

/// A gauge handle: a settable signed value. Cloning shares the value.
#[derive(Clone)]
pub struct Gauge(Arc<GaugeCore>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.value.store(v, Ordering::Relaxed);
    }

    /// Adds (possibly negatively) to the gauge.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.0.value.load(Ordering::Relaxed)
    }
}

/// Per-shard state: the cumulative histogram plus the rolling ring.
struct HistShard {
    cumulative: Histogram,
    windows: [Histogram; WINDOW_SLOTS],
}

impl HistShard {
    const fn new() -> HistShard {
        HistShard {
            cumulative: Histogram::new(),
            windows: [const { Histogram::new() }; WINDOW_SLOTS],
        }
    }
}

struct HistCore {
    name: &'static str,
    help: &'static str,
    /// Heap-allocated: a shard is ~`(1 + WINDOW_SLOTS)` histograms, so
    /// the full cell array is around a megabyte — far too large to
    /// construct by value on the stack.
    shards: Vec<Mutex<HistShard>>,
    /// Current window slot (monotone; slot index is `epoch % WINDOW_SLOTS`).
    epoch: AtomicU64,
}

/// A sharded histogram handle (summary metric). Cloning shares cells.
#[derive(Clone)]
pub struct MetricHist(Arc<HistCore>);

impl MetricHist {
    /// Records one sample into this thread's shard: one short,
    /// uncontended lock (each worker has its own cell) and two array
    /// stores (cumulative + current window).
    #[inline]
    pub fn record(&self, value: u64) {
        let slot = (self.0.epoch.load(Ordering::Relaxed) as usize) % WINDOW_SLOTS;
        let mut shard = self.0.shards[shard_slot()].lock().expect("metric shard");
        shard.cumulative.record(value);
        shard.windows[slot].record(value);
    }

    /// Merge-on-read cumulative histogram.
    pub fn merged(&self) -> Histogram {
        let mut out = Histogram::new();
        for shard in &self.0.shards {
            out.merge(&shard.lock().expect("metric shard").cumulative);
        }
        out
    }

    /// Merge-on-read rolling-window histogram (all ring slots — the
    /// last `WINDOW_SLOTS` rotations, including the current partial
    /// window).
    pub fn window(&self) -> Histogram {
        let mut out = Histogram::new();
        for shard in &self.0.shards {
            let shard = shard.lock().expect("metric shard");
            for w in &shard.windows {
                out.merge(w);
            }
        }
        out
    }

    fn rotate(&self) {
        let next = self.0.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let slot = (next as usize) % WINDOW_SLOTS;
        for shard in &self.0.shards {
            shard.lock().expect("metric shard").windows[slot] = Histogram::new();
        }
    }
}

enum Metric {
    Counter(Arc<CounterCore>),
    Gauge(Arc<GaugeCore>),
    Hist(Arc<HistCore>),
}

impl Metric {
    fn name(&self) -> &'static str {
        match self {
            Metric::Counter(c) => c.name,
            Metric::Gauge(g) => g.name,
            Metric::Hist(h) => h.name,
        }
    }
}

/// A registry of named metrics, rendered in registration order.
///
/// Registration takes a lock; the returned handles never touch it
/// again — hot-path writes go straight to the sharded cells.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<Vec<Metric>>,
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    format!("{{{}}}", body.join(","))
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers a counter with no labels.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers a counter carrying a fixed label set. Several counters
    /// may share a `name` with different labels; `# HELP`/`# TYPE` are
    /// emitted once per name.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Counter {
        let core = Arc::new(CounterCore {
            name,
            labels: render_labels(labels),
            help,
            cells: Default::default(),
        });
        self.metrics
            .lock()
            .expect("registry lock")
            .push(Metric::Counter(Arc::clone(&core)));
        Counter(core)
    }

    /// Registers a gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        let core = Arc::new(GaugeCore {
            name,
            labels: String::new(),
            help,
            value: AtomicI64::new(0),
        });
        self.metrics
            .lock()
            .expect("registry lock")
            .push(Metric::Gauge(Arc::clone(&core)));
        Gauge(core)
    }

    /// Registers a histogram, exported as a Prometheus summary plus
    /// `<name>_window_p50`/`_p99` rolling-window gauges.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> MetricHist {
        let core = Arc::new(HistCore {
            name,
            help,
            shards: (0..SHARDS).map(|_| Mutex::new(HistShard::new())).collect(),
            epoch: AtomicU64::new(0),
        });
        self.metrics
            .lock()
            .expect("registry lock")
            .push(Metric::Hist(Arc::clone(&core)));
        MetricHist(core)
    }

    /// Advances every histogram's rolling-window ring by one slot. The
    /// exporter calls this on its own clock (every few seconds), so
    /// window quantiles cover roughly the last
    /// `WINDOW_SLOTS × rotation period`.
    pub fn rotate_windows(&self) {
        for metric in self.metrics.lock().expect("registry lock").iter() {
            if let Metric::Hist(h) = metric {
                MetricHist(Arc::clone(h)).rotate();
            }
        }
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP`/`# TYPE` headers once per metric name,
    /// then one sample line per handle. Histograms render as summaries
    /// (`{quantile="…"}`, `_sum`, `_count`) plus rolling-window
    /// `_window_p50`/`_window_p99` gauges.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let metrics = self.metrics.lock().expect("registry lock");
        let mut last_name = "";
        for metric in metrics.iter() {
            let name = metric.name();
            if name != last_name {
                let (ty, help) = match metric {
                    Metric::Counter(c) => ("counter", c.help),
                    Metric::Gauge(g) => ("gauge", g.help),
                    Metric::Hist(h) => ("summary", h.help),
                };
                out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {ty}\n"));
                last_name = name;
            }
            match metric {
                Metric::Counter(c) => {
                    let total: u64 = c.cells.iter().map(|x| x.0.load(Ordering::Relaxed)).sum();
                    out.push_str(&format!("{name}{} {total}\n", c.labels));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!(
                        "{name}{} {}\n",
                        g.labels,
                        g.value.load(Ordering::Relaxed)
                    ));
                }
                Metric::Hist(h) => {
                    let handle = MetricHist(Arc::clone(h));
                    let merged = handle.merged();
                    let window = handle.window();
                    for (q, v) in [
                        (0.5, merged.p50()),
                        (0.9, merged.p90()),
                        (0.99, merged.p99()),
                    ] {
                        out.push_str(&format!(
                            "{name}{{quantile=\"{q}\"}} {}\n",
                            if merged.is_empty() { 0 } else { v }
                        ));
                    }
                    out.push_str(&format!(
                        "{name}_sum {}\n",
                        u64::try_from(merged.sum()).unwrap_or(u64::MAX)
                    ));
                    out.push_str(&format!("{name}_count {}\n", merged.count()));
                    out.push_str(&format!(
                        "# TYPE {name}_window_p50 gauge\n{name}_window_p50 {}\n",
                        window.p50()
                    ));
                    out.push_str(&format!(
                        "# TYPE {name}_window_p99 gauge\n{name}_window_p99 {}\n",
                        window.p99()
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("lll_test_total", "test counter");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
        assert!(reg.render().contains("lll_test_total 8000\n"));
    }

    #[test]
    fn labelled_counters_share_one_header() {
        let reg = MetricsRegistry::new();
        let a = reg.counter_with("lll_errors_total", "errors", &[("kind", "parse")]);
        let b = reg.counter_with("lll_errors_total", "errors", &[("kind", "io")]);
        a.add(3);
        b.add(2);
        let text = reg.render();
        assert_eq!(text.matches("# TYPE lll_errors_total counter").count(), 1);
        assert!(text.contains("lll_errors_total{kind=\"parse\"} 3\n"));
        assert!(text.contains("lll_errors_total{kind=\"io\"} 2\n"));
    }

    #[test]
    fn gauges_set_and_add() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("lll_queue_depth", "queue depth");
        g.set(7);
        g.add(-3);
        assert_eq!(g.value(), 4);
        assert!(reg.render().contains("lll_queue_depth 4\n"));
    }

    #[test]
    fn sync_total_mirrors_external_counters() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("lll_cache_hits_total", "hits");
        c.sync_total(41);
        c.sync_total(42);
        assert_eq!(c.value(), 42);
    }

    #[test]
    fn histogram_quantiles_and_summary_lines() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lll_latency_micros", "request latency");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let merged = h.merged();
        assert_eq!(merged.count(), 1000);
        assert!((500..=517).contains(&merged.p50()));
        let text = reg.render();
        assert!(text.contains("# TYPE lll_latency_micros summary"));
        assert!(text.contains("lll_latency_micros{quantile=\"0.5\"}"));
        assert!(text.contains("lll_latency_micros_count 1000\n"));
        assert!(text.contains("lll_latency_micros_window_p50"));
    }

    #[test]
    fn window_rotation_forgets_old_samples() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lll_w", "window test");
        h.record(1_000_000);
        // After a full ring of rotations the old sample has been
        // cleared from every window slot; the cumulative view keeps it.
        for _ in 0..WINDOW_SLOTS {
            reg.rotate_windows();
        }
        h.record(10);
        assert_eq!(h.window().count(), 1);
        assert_eq!(h.window().max(), 10);
        assert_eq!(h.merged().count(), 2);
        assert_eq!(h.merged().max(), 1_000_000);
    }

    #[test]
    fn render_lines_are_well_formed() {
        let reg = MetricsRegistry::new();
        reg.counter("lll_a_total", "a").inc();
        reg.gauge("lll_b", "b").set(-5);
        reg.histogram("lll_c_micros", "c").record(3);
        for line in reg.render().lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "{line}"
                );
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(!name.is_empty());
            assert!(value.parse::<i64>().is_ok(), "{line}");
        }
    }
}
