//! The side-band timing channel: monotonic-clock profiling that never
//! touches the deterministic event stream.
//!
//! Wall-clock data is inherently nondeterministic, so it must not appear in
//! the byte-identity-contracted JSONL event stream (DESIGN.md §3.7). This
//! module therefore mirrors the [`Recorder`](crate::Recorder) design on a
//! *separate* channel: instrumented code is generic over [`TimingSink`] and
//! guards every measurement with `if T::ENABLED { .. }`; the default
//! [`NullTiming`] has `ENABLED = false`, so untimed builds monomorphize to
//! exactly the pre-instrumentation code — not even `Instant::now()` is
//! called. An enabled sink receives `(scope, nanoseconds)` spans and the
//! stock [`TimingRecorder`] folds them straight into per-scope
//! [`Histogram`]s (one array store per span — no allocation on the hot
//! path), which serialize to their own `"type":"timing"` JSONL file, never
//! interleaved with event lines.

use crate::hist::Histogram;
use std::io::{self, Write};
use std::time::Instant;

/// What a timed span covers. The indices double as histogram slots in
/// [`TimingRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingScope {
    /// One whole `Simulator::run` / `run_parallel` invocation.
    SimRun = 0,
    /// One communication round (delivery + all node steps).
    SimRound = 1,
    /// One worker's pass over one shard in `local::parallel` — the
    /// per-shard occupancy of a phase.
    ShardWork = 2,
    /// One whole fixer run (`Fixer2`/`Fixer3`).
    FixRun = 3,
    /// One fixing step (`fix_variable`).
    FixStep = 4,
    /// One color class's sweep inside a scheduled driver (all cells of
    /// the class, across every shard).
    FixClass = 5,
}

impl TimingScope {
    /// Every scope, in slot order.
    pub const ALL: [TimingScope; 6] = [
        TimingScope::SimRun,
        TimingScope::SimRound,
        TimingScope::ShardWork,
        TimingScope::FixRun,
        TimingScope::FixStep,
        TimingScope::FixClass,
    ];

    /// The scope's stable snake_case tag, as serialized in timing JSONL.
    pub fn name(self) -> &'static str {
        match self {
            TimingScope::SimRun => "sim_run",
            TimingScope::SimRound => "sim_round",
            TimingScope::ShardWork => "shard_work",
            TimingScope::FixRun => "fix_run",
            TimingScope::FixStep => "fix_step",
            TimingScope::FixClass => "fix_class",
        }
    }
}

/// A sink for timing spans. Instrumented code must guard every
/// measurement with `if T::ENABLED`, so a `false` makes timing free.
pub trait TimingSink {
    /// Whether this sink observes spans at all.
    const ENABLED: bool = true;

    /// Consume one span: `nanos` of monotonic wall-clock under `scope`.
    fn record_span(&mut self, scope: TimingScope, nanos: u64);
}

/// Timing disabled: all instrumentation compiles away.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTiming;

impl TimingSink for NullTiming {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record_span(&mut self, _scope: TimingScope, _nanos: u64) {}
}

/// Starts a span: reads the monotonic clock only when `T` is enabled.
#[inline]
pub fn span_start<T: TimingSink>() -> Option<Instant> {
    if T::ENABLED {
        Some(Instant::now())
    } else {
        None
    }
}

/// Nanoseconds elapsed since [`span_start`] (0 for a disabled sink's
/// `None` — but call sites guard with `if T::ENABLED`, so a disabled
/// build never reaches this).
#[inline]
pub fn span_nanos(started: Option<Instant>) -> u64 {
    started.map_or(0, |t| {
        u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
    })
}

/// The stock sink: one streaming [`Histogram`] per [`TimingScope`].
#[derive(Debug, Default, Clone)]
pub struct TimingRecorder {
    hists: [Histogram; TimingScope::ALL.len()],
}

impl TimingRecorder {
    /// A fresh recorder with empty histograms.
    pub fn new() -> Self {
        TimingRecorder::default()
    }

    /// The histogram for one scope.
    pub fn scope(&self, scope: TimingScope) -> &Histogram {
        &self.hists[scope as usize]
    }

    /// Total spans recorded across all scopes.
    pub fn spans(&self) -> u64 {
        self.hists.iter().map(Histogram::count).sum()
    }

    /// Merges another recorder (e.g. from a different shard or run)
    /// into this one; exact and order-independent.
    pub fn merge(&mut self, other: &TimingRecorder) {
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }

    /// One `"type":"timing"` JSONL line per non-empty scope (each with a
    /// trailing newline). This is the side-band stream format: written to
    /// its own file, never into the deterministic event stream.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for scope in TimingScope::ALL {
            let h = self.scope(scope);
            if h.is_empty() {
                continue;
            }
            out.push_str(&format!(
                "{{\"type\":\"timing\",\"scope\":\"{}\",\"count\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{},\"total_ns\":{}}}\n",
                scope.name(),
                h.count(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.max(),
                // Keep the line parseable as u64 even for absurd totals.
                u64::try_from(h.sum()).unwrap_or(u64::MAX),
            ));
        }
        out
    }

    /// Writes [`TimingRecorder::to_jsonl`] to a sink.
    ///
    /// # Errors
    ///
    /// Propagates the writer's I/O error.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(self.to_jsonl().as_bytes())?;
        w.flush()
    }
}

impl TimingSink for TimingRecorder {
    #[inline]
    fn record_span(&mut self, scope: TimingScope, nanos: u64) {
        self.hists[scope as usize].record(nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_timing_is_disabled_and_records_nothing() {
        const {
            assert!(!NullTiming::ENABLED);
            assert!(TimingRecorder::ENABLED);
        }
        // A disabled sink never even reads the clock.
        assert!(span_start::<NullTiming>().is_none());
        assert!(span_start::<TimingRecorder>().is_some());
    }

    #[test]
    fn recorder_buckets_by_scope_and_merges() {
        let mut a = TimingRecorder::new();
        let mut b = TimingRecorder::new();
        for i in 1..=100u64 {
            a.record_span(TimingScope::SimRound, i * 1_000);
            b.record_span(TimingScope::ShardWork, i * 500);
        }
        assert_eq!(a.scope(TimingScope::SimRound).count(), 100);
        assert_eq!(a.scope(TimingScope::ShardWork).count(), 0);
        a.merge(&b);
        assert_eq!(a.spans(), 200);
        assert_eq!(a.scope(TimingScope::ShardWork).count(), 100);
    }

    #[test]
    fn jsonl_lines_are_schema_valid() {
        let mut t = TimingRecorder::new();
        t.record_span(TimingScope::SimRun, 1_234_567);
        t.record_span(TimingScope::FixStep, 42);
        let text = t.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            let ty = crate::schema::validate_line(line).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(ty, "timing");
        }
    }

    #[test]
    fn empty_recorder_serializes_to_nothing() {
        assert!(TimingRecorder::new().to_jsonl().is_empty());
    }
}
