//! Streaming analytics over recorded JSONL: fold a stream line-by-line,
//! in bounded memory, into queryable time series.
//!
//! [`Replay`] never buffers the input — each line is parsed, folded into
//! the accumulated series, and dropped, so memory is proportional to the
//! *summary* (one point per round, halt, or fixing step), never to the raw
//! event count or the file size. The three series mirror the paper's
//! quantities of interest: the per-round message/byte bill (Corollary 1.2
//! round accounting), per-node halt timelines, and the φ-product /
//! pair-headroom trajectory `2 − φ_e^u − φ_e^v` per fixing step (the `P*`
//! potential of Lemmas 3.5–3.7). Each series exports as a
//! provenance-stamped CSV via [`Replay::rounds_csv`] and friends — the
//! `obs-report series` subcommand is a thin wrapper around them.

use serde::Value;

/// One `round_end` event: the per-round bill of one simulator run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundPoint {
    /// Simulator run index within the stream (0-based).
    pub run: usize,
    /// Round number within the run (1-based, as recorded).
    pub round: u64,
    /// Messages delivered this round.
    pub delivered: u64,
    /// Bytes billed this round.
    pub bytes: u64,
    /// Nodes that halted this round.
    pub halted: u64,
    /// Nodes still running after the round.
    pub running: u64,
}

/// One `node_halt` event: when a node decided, per run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaltPoint {
    /// Simulator run index within the stream (0-based).
    pub run: usize,
    /// Round in which the node halted.
    pub round: u64,
    /// The halting node's index.
    pub node: u64,
}

/// One `fix_step` event, reduced to the potential-function view.
#[derive(Debug, Clone, PartialEq)]
pub struct StepPoint {
    /// Fixer run index within the stream (0-based).
    pub run: usize,
    /// Step index within the run (0-based, as recorded).
    pub step: u64,
    /// Variable fixed.
    pub variable: u64,
    /// Value chosen.
    pub value: u64,
    /// Rank (number of touched events).
    pub rank: u64,
    /// Smallest φ-product among the touched events (`NaN` if none).
    pub phi_min: f64,
    /// Largest φ-product among the touched events (`NaN` if none).
    pub phi_max: f64,
    /// Smallest pair headroom `2 − φ_e^u − φ_e^v` among the touched
    /// dependency edges (`NaN` if the step touches no edge).
    pub headroom_min: f64,
}

fn uint(v: Option<&Value>) -> u64 {
    match v {
        Some(Value::U64(n)) => *n,
        _ => 0,
    }
}

fn float(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(x) => Some(*x as f64),
        Value::I64(x) => Some(*x as f64),
        _ => None,
    }
}

fn fold_min_max(v: Option<&Value>) -> (f64, f64) {
    let mut min = f64::NAN;
    let mut max = f64::NAN;
    if let Some(Value::Array(xs)) = v {
        for x in xs.iter().filter_map(float) {
            min = if min.is_nan() { x } else { min.min(x) };
            max = if max.is_nan() { x } else { max.max(x) };
        }
    }
    (min, max)
}

/// CSV cell for a possibly-missing float.
fn csv_f64(x: f64) -> String {
    if x.is_nan() {
        String::new()
    } else {
        format!("{x:?}")
    }
}

/// A bounded-memory, line-at-a-time stream folder.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Replay {
    /// Lines folded (including any meta line).
    pub lines: usize,
    /// The raw meta line, if the stream opened with one.
    pub meta: Option<String>,
    /// Per-round series across all simulator runs, in stream order.
    pub rounds: Vec<RoundPoint>,
    /// Per-node halt timeline across all simulator runs, in stream order.
    pub halts: Vec<HaltPoint>,
    /// φ-product / headroom trajectory across all fixer runs.
    pub steps: Vec<StepPoint>,
    sim_runs_started: usize,
    fix_runs_started: usize,
}

impl Replay {
    /// An empty folder.
    pub fn new() -> Self {
        Replay::default()
    }

    /// Folds the next line of the stream. Blank lines are the caller's
    /// to skip; this expects one JSON object per call.
    ///
    /// # Errors
    ///
    /// A description of the malformed line (invalid JSON or missing
    /// `type` tag).
    pub fn fold_line(&mut self, line: &str) -> Result<(), String> {
        let v: Value = serde_json::from_str(line).map_err(|e| format!("not valid JSON: {e}"))?;
        let ty = match v.get("type") {
            Some(Value::String(t)) => t.clone(),
            _ => return Err("missing \"type\" field".to_string()),
        };
        self.lines += 1;
        match ty.as_str() {
            "meta" => self.meta = Some(line.to_string()),
            "sim_run_start" => self.sim_runs_started += 1,
            "round_end" => self.rounds.push(RoundPoint {
                run: self.sim_runs_started.saturating_sub(1),
                round: uint(v.get("round")),
                delivered: uint(v.get("delivered")),
                bytes: uint(v.get("bytes")),
                halted: uint(v.get("halted")),
                running: uint(v.get("running")),
            }),
            "node_halt" => self.halts.push(HaltPoint {
                run: self.sim_runs_started.saturating_sub(1),
                round: uint(v.get("round")),
                node: uint(v.get("node")),
            }),
            "fix_run_start" => self.fix_runs_started += 1,
            "fix_step" => {
                let (phi_min, phi_max) = fold_min_max(v.get("phi_product"));
                let (headroom_min, _) = fold_min_max(v.get("headroom"));
                self.steps.push(StepPoint {
                    run: self.fix_runs_started.saturating_sub(1),
                    step: uint(v.get("step")),
                    variable: uint(v.get("variable")),
                    value: uint(v.get("value")),
                    rank: uint(v.get("rank")),
                    phi_min,
                    phi_max,
                    headroom_min,
                });
            }
            _ => {}
        }
        Ok(())
    }

    /// Folds a whole in-memory stream (tests and small files; the CLI
    /// streams files through [`Replay::fold_line`] instead).
    ///
    /// # Errors
    ///
    /// As [`Replay::fold_line`], prefixed with the 1-based line number.
    pub fn from_stream(text: &str) -> Result<Replay, String> {
        let mut r = Replay::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            r.fold_line(line)
                .map_err(|e| format!("line {}: {e}", i + 1))?;
        }
        Ok(r)
    }

    /// The provenance stamp for exported CSVs: the source stream's own
    /// meta line when it has one (so the series carries the *producer's*
    /// context), plus the supplied fallback comment.
    fn stamp(&self, prov_comment: &str) -> String {
        let mut s = String::from(prov_comment);
        s.push('\n');
        if let Some(meta) = &self.meta {
            s.push_str("# source-meta: ");
            s.push_str(meta);
            s.push('\n');
        }
        s
    }

    /// The per-round message/byte series as a CSV document.
    pub fn rounds_csv(&self, prov_comment: &str) -> String {
        let mut out = self.stamp(prov_comment);
        out.push_str("run,round,delivered,bytes,halted,running\n");
        for p in &self.rounds {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                p.run, p.round, p.delivered, p.bytes, p.halted, p.running
            ));
        }
        out
    }

    /// The per-node halt timeline as a CSV document.
    pub fn halts_csv(&self, prov_comment: &str) -> String {
        let mut out = self.stamp(prov_comment);
        out.push_str("run,round,node\n");
        for p in &self.halts {
            out.push_str(&format!("{},{},{}\n", p.run, p.round, p.node));
        }
        out
    }

    /// The φ-product / pair-headroom trajectory as a CSV document
    /// (Figure-1-style potential data; empty cells where a step touched
    /// no event or no dependency edge).
    pub fn steps_csv(&self, prov_comment: &str) -> String {
        let mut out = self.stamp(prov_comment);
        out.push_str("run,step,variable,value,rank,phi_product_min,phi_product_max,headroom_min\n");
        for p in &self.steps {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                p.run,
                p.step,
                p.variable,
                p.value,
                p.rank,
                csv_f64(p.phi_min),
                csv_f64(p.phi_max),
                csv_f64(p.headroom_min),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::provenance::Provenance;

    fn sample_stream() -> String {
        let mut text = Provenance::capture().with_seed(9).to_jsonl();
        text.push('\n');
        for e in [
            Event::SimRunStart {
                nodes: 2,
                edges: 1,
                max_degree: 1,
                seed: 9,
            },
            Event::RoundStart {
                round: 1,
                running: 2,
            },
            Event::NodeHalt { round: 1, node: 1 },
            Event::RoundEnd {
                round: 1,
                delivered: 2,
                bytes: 8,
                halted: 1,
                running: 1,
            },
            Event::SimRunEnd {
                rounds: 1,
                messages: 2,
            },
            Event::FixRunStart {
                variables: 1,
                events: 2,
                max_rank: 2,
            },
            Event::FixStep {
                step: 0,
                variable: 0,
                value: 1,
                rank: 2,
                touched: vec![0, 1],
                inc: vec![1.0, 0.5],
                phi_product: vec![0.5, 0.75],
                headroom: vec![1.25, 0.75],
            },
            Event::FixRunEnd {
                steps: 1,
                violated: 0,
            },
        ] {
            text.push_str(&e.to_jsonl());
            text.push('\n');
        }
        text
    }

    #[test]
    fn folds_all_three_series() {
        let r = Replay::from_stream(&sample_stream()).unwrap();
        assert_eq!(r.lines, 9);
        assert!(r.meta.as_deref().unwrap().contains("\"seed\":9"));
        assert_eq!(r.rounds.len(), 1);
        assert_eq!(r.rounds[0].delivered, 2);
        assert_eq!(r.rounds[0].bytes, 8);
        assert_eq!(
            r.halts,
            vec![HaltPoint {
                run: 0,
                round: 1,
                node: 1
            }]
        );
        assert_eq!(r.steps.len(), 1);
        assert_eq!(r.steps[0].phi_min, 0.5);
        assert_eq!(r.steps[0].phi_max, 0.75);
        assert_eq!(r.steps[0].headroom_min, 0.75);
    }

    #[test]
    fn csv_exports_are_stamped_and_shaped() {
        let r = Replay::from_stream(&sample_stream()).unwrap();
        let prov = Provenance::capture().csv_comment();
        let rounds = r.rounds_csv(&prov);
        assert!(rounds.starts_with("# provenance:"));
        assert!(rounds.contains("# source-meta: {\"type\":\"meta\""));
        assert!(rounds.contains("run,round,delivered,bytes,halted,running"));
        assert!(rounds.contains("0,1,2,8,1,1"));
        let steps = r.steps_csv(&prov);
        assert!(steps.contains("0,0,0,1,2,0.5,0.75,0.75"));
        let halts = r.halts_csv(&prov);
        assert!(halts.ends_with("0,1,1\n"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Replay::from_stream("{oops").unwrap_err().contains("line 1"));
        assert!(Replay::from_stream("{\"x\":1}")
            .unwrap_err()
            .contains("type"));
    }
}
