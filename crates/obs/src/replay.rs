//! Streaming analytics over recorded JSONL: fold a stream line-by-line,
//! in bounded memory, into queryable time series.
//!
//! [`Replay`] never buffers the input — each line is parsed, folded into
//! the accumulated series, and dropped, so memory is proportional to the
//! *summary* (one point per round, halt, or fixing step), never to the raw
//! event count or the file size. The three series mirror the paper's
//! quantities of interest: the per-round message/byte bill (Corollary 1.2
//! round accounting), per-node halt timelines, and the φ-product /
//! pair-headroom trajectory `2 − φ_e^u − φ_e^v` per fixing step (the `P*`
//! potential of Lemmas 3.5–3.7). Each series exports as a
//! provenance-stamped CSV via [`Replay::rounds_csv`] and friends — the
//! `obs-report series` subcommand is a thin wrapper around them.
//!
//! The checkpoint/resume side (DESIGN.md §3.12) lives in [`RunState`]:
//! a second bounded-memory fold that reconstructs *resumable* run state
//! — the applied `(variable, value)` step sequence, round and audit
//! counters, the byte offset, and the rolling
//! [`StreamDigest`](crate::StreamDigest) — and verifies every
//! `#checkpoint ` sidecar it passes against its own counters. Both
//! folds skip `#`-prefixed sidecar lines, so checkpointed and plain
//! streams replay identically.

use crate::checkpoint::{is_sidecar, Checkpoint, StreamDigest};
use serde::Value;

/// One `round_end` event: the per-round bill of one simulator run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundPoint {
    /// Simulator run index within the stream (0-based).
    pub run: usize,
    /// Round number within the run (1-based, as recorded).
    pub round: u64,
    /// Messages delivered this round.
    pub delivered: u64,
    /// Bytes billed this round.
    pub bytes: u64,
    /// Nodes that halted this round.
    pub halted: u64,
    /// Nodes still running after the round.
    pub running: u64,
}

/// One `node_halt` event: when a node decided, per run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaltPoint {
    /// Simulator run index within the stream (0-based).
    pub run: usize,
    /// Round in which the node halted.
    pub round: u64,
    /// The halting node's index.
    pub node: u64,
}

/// One `fix_step` event, reduced to the potential-function view.
#[derive(Debug, Clone, PartialEq)]
pub struct StepPoint {
    /// Fixer run index within the stream (0-based).
    pub run: usize,
    /// Step index within the run (0-based, as recorded).
    pub step: u64,
    /// Variable fixed.
    pub variable: u64,
    /// Value chosen.
    pub value: u64,
    /// Rank (number of touched events).
    pub rank: u64,
    /// Smallest φ-product among the touched events (`NaN` if none).
    pub phi_min: f64,
    /// Largest φ-product among the touched events (`NaN` if none).
    pub phi_max: f64,
    /// Smallest pair headroom `2 − φ_e^u − φ_e^v` among the touched
    /// dependency edges (`NaN` if the step touches no edge).
    pub headroom_min: f64,
}

fn uint(v: Option<&Value>) -> u64 {
    match v {
        Some(Value::U64(n)) => *n,
        _ => 0,
    }
}

fn float(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(x) => Some(*x as f64),
        Value::I64(x) => Some(*x as f64),
        _ => None,
    }
}

fn fold_min_max(v: Option<&Value>) -> (f64, f64) {
    let mut min = f64::NAN;
    let mut max = f64::NAN;
    if let Some(Value::Array(xs)) = v {
        for x in xs.iter().filter_map(float) {
            min = if min.is_nan() { x } else { min.min(x) };
            max = if max.is_nan() { x } else { max.max(x) };
        }
    }
    (min, max)
}

/// CSV cell for a possibly-missing float.
fn csv_f64(x: f64) -> String {
    if x.is_nan() {
        String::new()
    } else {
        format!("{x:?}")
    }
}

/// A bounded-memory, line-at-a-time stream folder.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Replay {
    /// Lines folded (including any meta line).
    pub lines: usize,
    /// The raw meta line, if the stream opened with one.
    pub meta: Option<String>,
    /// Per-round series across all simulator runs, in stream order.
    pub rounds: Vec<RoundPoint>,
    /// Per-node halt timeline across all simulator runs, in stream order.
    pub halts: Vec<HaltPoint>,
    /// φ-product / headroom trajectory across all fixer runs.
    pub steps: Vec<StepPoint>,
    sim_runs_started: usize,
    fix_runs_started: usize,
}

impl Replay {
    /// An empty folder.
    pub fn new() -> Self {
        Replay::default()
    }

    /// Folds the next line of the stream. Blank lines are the caller's
    /// to skip; this expects one JSON object per call.
    ///
    /// # Errors
    ///
    /// A description of the malformed line (invalid JSON or missing
    /// `type` tag).
    pub fn fold_line(&mut self, line: &str) -> Result<(), String> {
        if is_sidecar(line) {
            // Checkpoint (and other) sidecar comments are not events.
            return Ok(());
        }
        let v: Value = serde_json::from_str(line).map_err(|e| format!("not valid JSON: {e}"))?;
        let ty = match v.get("type") {
            Some(Value::String(t)) => t.clone(),
            _ => return Err("missing \"type\" field".to_string()),
        };
        self.lines += 1;
        match ty.as_str() {
            "meta" => self.meta = Some(line.to_string()),
            "sim_run_start" => self.sim_runs_started += 1,
            "round_end" => self.rounds.push(RoundPoint {
                run: self.sim_runs_started.saturating_sub(1),
                round: uint(v.get("round")),
                delivered: uint(v.get("delivered")),
                bytes: uint(v.get("bytes")),
                halted: uint(v.get("halted")),
                running: uint(v.get("running")),
            }),
            "node_halt" => self.halts.push(HaltPoint {
                run: self.sim_runs_started.saturating_sub(1),
                round: uint(v.get("round")),
                node: uint(v.get("node")),
            }),
            "fix_run_start" => self.fix_runs_started += 1,
            "fix_step" => {
                let (phi_min, phi_max) = fold_min_max(v.get("phi_product"));
                let (headroom_min, _) = fold_min_max(v.get("headroom"));
                self.steps.push(StepPoint {
                    run: self.fix_runs_started.saturating_sub(1),
                    step: uint(v.get("step")),
                    variable: uint(v.get("variable")),
                    value: uint(v.get("value")),
                    rank: uint(v.get("rank")),
                    phi_min,
                    phi_max,
                    headroom_min,
                });
            }
            _ => {}
        }
        Ok(())
    }

    /// Folds a whole in-memory stream (tests and small files; the CLI
    /// streams files through [`Replay::fold_line`] instead).
    ///
    /// # Errors
    ///
    /// As [`Replay::fold_line`], prefixed with the 1-based line number.
    pub fn from_stream(text: &str) -> Result<Replay, String> {
        let mut r = Replay::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            r.fold_line(line)
                .map_err(|e| format!("line {}: {e}", i + 1))?;
        }
        Ok(r)
    }

    /// The provenance stamp for exported CSVs: the source stream's own
    /// meta line when it has one (so the series carries the *producer's*
    /// context), plus the supplied fallback comment.
    fn stamp(&self, prov_comment: &str) -> String {
        let mut s = String::from(prov_comment);
        s.push('\n');
        if let Some(meta) = &self.meta {
            s.push_str("# source-meta: ");
            s.push_str(meta);
            s.push('\n');
        }
        s
    }

    /// The per-round message/byte series as a CSV document.
    pub fn rounds_csv(&self, prov_comment: &str) -> String {
        let mut out = self.stamp(prov_comment);
        out.push_str("run,round,delivered,bytes,halted,running\n");
        for p in &self.rounds {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                p.run, p.round, p.delivered, p.bytes, p.halted, p.running
            ));
        }
        out
    }

    /// The per-node halt timeline as a CSV document.
    pub fn halts_csv(&self, prov_comment: &str) -> String {
        let mut out = self.stamp(prov_comment);
        out.push_str("run,round,node\n");
        for p in &self.halts {
            out.push_str(&format!("{},{},{}\n", p.run, p.round, p.node));
        }
        out
    }

    /// The φ-product / pair-headroom trajectory as a CSV document
    /// (Figure-1-style potential data; empty cells where a step touched
    /// no event or no dependency edge).
    pub fn steps_csv(&self, prov_comment: &str) -> String {
        let mut out = self.stamp(prov_comment);
        out.push_str("run,step,variable,value,rank,phi_product_min,phi_product_max,headroom_min\n");
        for p in &self.steps {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                p.run,
                p.step,
                p.variable,
                p.value,
                p.rank,
                csv_f64(p.phi_min),
                csv_f64(p.phi_max),
                csv_f64(p.headroom_min),
            ));
        }
        out
    }
}

/// The resumable facts of a [`RunState`] frozen at a verified
/// `#checkpoint ` sidecar — everything a resume driver needs beyond the
/// step prefix (`RunState::steps()[..checkpoint.step]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumePoint {
    /// The sidecar record itself, as verified against the fold.
    pub checkpoint: Checkpoint,
    /// Audit events (`audit_pass` + `audit_violation`) folded by then.
    pub audits: u64,
    /// Simulator runs started by then.
    pub sim_runs: u64,
    /// `round_end` events of the *current* simulator run by then.
    pub sim_rounds: u64,
    /// Whether the current simulator run had completed by then.
    pub sim_run_complete: bool,
    /// Fixer runs started by then.
    pub fix_runs: u64,
    /// Whether the current fixer run had completed by then.
    pub fix_run_complete: bool,
}

/// A bounded-memory fold that reconstructs *resumable* run state from a
/// prefix of a recorded stream.
///
/// Where [`Replay`] accumulates analytics series, `RunState` keeps only
/// what a resume needs: the applied `(variable, value)` step sequence
/// (the fixers are pure functions of it — DESIGN.md §3.12), round /
/// audit / event counters, the byte offset after the last durable line,
/// and the rolling digest. Memory is `O(steps)`, independent of round
/// count and event volume.
///
/// Every `#checkpoint ` sidecar encountered is verified against the
/// fold's own counters and digest — a mismatch means the stream is
/// corrupt, not merely torn, and folding fails loudly.
///
/// Torn tails are the caller's to detect (a final line without `\n`):
/// stop folding and treat [`RunState::bytes`] as the end of the durable
/// prefix. [`RunState::from_stream`] implements exactly that policy.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct RunState {
    steps: Vec<(u64, u64)>,
    lines: u64,
    events: u64,
    bytes: u64,
    round_ends: u64,
    sim_runs: u64,
    sim_rounds: u64,
    sim_run_complete: bool,
    fix_runs: u64,
    fix_run_complete: bool,
    audits: u64,
    digest: StreamDigest,
    meta: Option<String>,
    last: Option<ResumePoint>,
}

impl RunState {
    /// An empty fold.
    pub fn new() -> Self {
        RunState {
            digest: StreamDigest::new(),
            ..RunState::default()
        }
    }

    /// Folds the next *terminated* line of the stream (newline already
    /// stripped; blank lines are ignored). A torn final line must not be
    /// passed here — see the type-level docs.
    ///
    /// # Errors
    ///
    /// A description of the malformed line (invalid JSON, missing
    /// `type`, malformed `#checkpoint ` payload) or of a checkpoint
    /// whose counters contradict the fold (corrupt stream).
    pub fn fold_line(&mut self, line: &str) -> Result<(), String> {
        self.lines += 1;
        if line.trim().is_empty() {
            self.bytes += line.len() as u64 + 1;
            return Ok(());
        }
        if is_sidecar(line) {
            if line.starts_with(crate::checkpoint::CHECKPOINT_PREFIX) {
                let ck = Checkpoint::parse(line)?;
                self.verify_checkpoint(&ck)?;
                self.last = Some(ResumePoint {
                    checkpoint: ck,
                    audits: self.audits,
                    sim_runs: self.sim_runs,
                    sim_rounds: self.sim_rounds,
                    sim_run_complete: self.sim_run_complete,
                    fix_runs: self.fix_runs,
                    fix_run_complete: self.fix_run_complete,
                });
            }
            self.bytes += line.len() as u64 + 1;
            return Ok(());
        }
        let v: Value = serde_json::from_str(line).map_err(|e| format!("not valid JSON: {e}"))?;
        let ty = match v.get("type") {
            Some(Value::String(t)) => t.clone(),
            _ => return Err("missing \"type\" field".to_string()),
        };
        if ty == "meta" {
            self.meta = Some(line.to_string());
            self.bytes += line.len() as u64 + 1;
            return Ok(());
        }
        match ty.as_str() {
            "sim_run_start" => {
                self.sim_runs += 1;
                self.sim_rounds = 0;
                self.sim_run_complete = false;
            }
            "round_end" => {
                self.round_ends += 1;
                self.sim_rounds += 1;
            }
            "sim_run_end" => self.sim_run_complete = true,
            "fix_run_start" => {
                self.fix_runs += 1;
                self.fix_run_complete = false;
            }
            "fix_step" => self
                .steps
                .push((uint(v.get("variable")), uint(v.get("value")))),
            "audit_pass" | "audit_violation" => self.audits += 1,
            "fix_run_end" => self.fix_run_complete = true,
            _ => {}
        }
        self.events += 1;
        self.digest.update_line(line);
        self.bytes += line.len() as u64 + 1;
        Ok(())
    }

    fn verify_checkpoint(&self, ck: &Checkpoint) -> Result<(), String> {
        let expect = (
            self.round_ends,
            self.steps.len() as u64,
            self.events,
            self.bytes,
            self.digest.value(),
        );
        let got = (ck.round, ck.step, ck.events, ck.offset, ck.digest);
        if expect != got {
            return Err(format!(
                "checkpoint at line {} contradicts the fold: sidecar says \
                 (round,step,events,offset,digest)=({},{},{},{},{:016x}) \
                 but the fold reached ({},{},{},{},{:016x}) — corrupt stream",
                self.lines,
                got.0,
                got.1,
                got.2,
                got.3,
                got.4,
                expect.0,
                expect.1,
                expect.2,
                expect.3,
                expect.4
            ));
        }
        Ok(())
    }

    /// Folds a whole in-memory stream, tolerating a torn final line
    /// (no trailing `\n`): the tail is *not* folded and its start
    /// offset — the end of the durable prefix — is returned alongside
    /// the state.
    ///
    /// # Errors
    ///
    /// As [`RunState::fold_line`], prefixed with the 1-based line
    /// number.
    pub fn from_stream(text: &str) -> Result<(RunState, Option<u64>), String> {
        let mut state = RunState::new();
        for (idx, raw) in text.split_inclusive('\n').enumerate() {
            let line_no = idx + 1;
            match raw.strip_suffix('\n') {
                Some(line) => state
                    .fold_line(line)
                    .map_err(|e| format!("line {line_no}: {e}"))?,
                None => {
                    let torn_at = state.bytes;
                    return Ok((state, Some(torn_at)));
                }
            }
        }
        Ok((state, None))
    }

    /// The applied `(variable, value)` fixing steps, in stream order.
    pub fn steps(&self) -> &[(u64, u64)] {
        &self.steps
    }

    /// Event lines folded (meta and sidecar lines excluded).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Byte offset one past the last folded line — the length of the
    /// durable prefix.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// `round_end` events folded, across all simulator runs.
    pub fn rounds(&self) -> u64 {
        self.round_ends
    }

    /// `round_end` events of the current (latest) simulator run.
    pub fn sim_rounds(&self) -> u64 {
        self.sim_rounds
    }

    /// Simulator runs started.
    pub fn sim_runs(&self) -> u64 {
        self.sim_runs
    }

    /// Whether the latest simulator run has its `sim_run_end`.
    pub fn sim_run_complete(&self) -> bool {
        self.sim_run_complete
    }

    /// Fixer runs started.
    pub fn fix_runs(&self) -> u64 {
        self.fix_runs
    }

    /// Whether the latest fixer run has its `fix_run_end`.
    pub fn fix_run_complete(&self) -> bool {
        self.fix_run_complete
    }

    /// Audit events (`audit_pass` + `audit_violation`) folded.
    pub fn audits(&self) -> u64 {
        self.audits
    }

    /// The rolling digest over the folded event lines.
    pub fn digest(&self) -> u64 {
        self.digest.value()
    }

    /// The raw meta line, if the stream carried one.
    pub fn meta(&self) -> Option<&str> {
        self.meta.as_deref()
    }

    /// The last verified `#checkpoint ` sidecar and the resumable facts
    /// frozen at it.
    pub fn last_checkpoint(&self) -> Option<&ResumePoint> {
        self.last.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::provenance::Provenance;

    fn sample_stream() -> String {
        let mut text = Provenance::capture().with_seed(9).to_jsonl();
        text.push('\n');
        for e in [
            Event::SimRunStart {
                nodes: 2,
                edges: 1,
                max_degree: 1,
                seed: 9,
            },
            Event::RoundStart {
                round: 1,
                running: 2,
            },
            Event::NodeHalt { round: 1, node: 1 },
            Event::RoundEnd {
                round: 1,
                delivered: 2,
                bytes: 8,
                halted: 1,
                running: 1,
            },
            Event::SimRunEnd {
                rounds: 1,
                messages: 2,
            },
            Event::FixRunStart {
                variables: 1,
                events: 2,
                max_rank: 2,
            },
            Event::FixStep {
                step: 0,
                variable: 0,
                value: 1,
                rank: 2,
                touched: vec![0, 1],
                inc: vec![1.0, 0.5],
                phi_product: vec![0.5, 0.75],
                headroom: vec![1.25, 0.75],
            },
            Event::FixRunEnd {
                steps: 1,
                violated: 0,
            },
        ] {
            text.push_str(&e.to_jsonl());
            text.push('\n');
        }
        text
    }

    #[test]
    fn folds_all_three_series() {
        let r = Replay::from_stream(&sample_stream()).unwrap();
        assert_eq!(r.lines, 9);
        assert!(r.meta.as_deref().unwrap().contains("\"seed\":9"));
        assert_eq!(r.rounds.len(), 1);
        assert_eq!(r.rounds[0].delivered, 2);
        assert_eq!(r.rounds[0].bytes, 8);
        assert_eq!(
            r.halts,
            vec![HaltPoint {
                run: 0,
                round: 1,
                node: 1
            }]
        );
        assert_eq!(r.steps.len(), 1);
        assert_eq!(r.steps[0].phi_min, 0.5);
        assert_eq!(r.steps[0].phi_max, 0.75);
        assert_eq!(r.steps[0].headroom_min, 0.75);
    }

    #[test]
    fn csv_exports_are_stamped_and_shaped() {
        let r = Replay::from_stream(&sample_stream()).unwrap();
        let prov = Provenance::capture().csv_comment();
        let rounds = r.rounds_csv(&prov);
        assert!(rounds.starts_with("# provenance:"));
        assert!(rounds.contains("# source-meta: {\"type\":\"meta\""));
        assert!(rounds.contains("run,round,delivered,bytes,halted,running"));
        assert!(rounds.contains("0,1,2,8,1,1"));
        let steps = r.steps_csv(&prov);
        assert!(steps.contains("0,0,0,1,2,0.5,0.75,0.75"));
        let halts = r.halts_csv(&prov);
        assert!(halts.ends_with("0,1,1\n"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Replay::from_stream("{oops").unwrap_err().contains("line 1"));
        assert!(Replay::from_stream("{\"x\":1}")
            .unwrap_err()
            .contains("type"));
    }

    #[test]
    fn replay_skips_sidecar_lines() {
        let mut text = sample_stream();
        text.push_str("#checkpoint {\"round\":1,\"step\":1,\"events\":8,\"offset\":0,\"digest\":\"0000000000000000\"}\n");
        let with = Replay::from_stream(&text).unwrap();
        let without = Replay::from_stream(&sample_stream()).unwrap();
        assert_eq!(with, without);
    }

    /// A checkpointed recording of the sample events, for `RunState` tests.
    fn checkpointed_stream(interval: u64) -> String {
        use crate::recorder::{JsonlRecorder, Recorder};
        let mut rec = JsonlRecorder::new(Vec::new()).checkpoint_every(interval);
        for e in sample_events() {
            rec.record(&e);
        }
        String::from_utf8(rec.finish().unwrap()).unwrap()
    }

    fn sample_events() -> Vec<Event> {
        vec![
            Event::SimRunStart {
                nodes: 2,
                edges: 1,
                max_degree: 1,
                seed: 9,
            },
            Event::RoundEnd {
                round: 1,
                delivered: 2,
                bytes: 8,
                halted: 1,
                running: 1,
            },
            Event::RoundEnd {
                round: 2,
                delivered: 0,
                bytes: 0,
                halted: 1,
                running: 0,
            },
            Event::SimRunEnd {
                rounds: 1,
                messages: 2,
            },
            Event::FixRunStart {
                variables: 2,
                events: 2,
                max_rank: 2,
            },
            Event::FixStep {
                step: 0,
                variable: 3,
                value: 1,
                rank: 2,
                touched: vec![0, 1],
                inc: vec![1.0, 0.5],
                phi_product: vec![0.5, 0.75],
                headroom: vec![1.25, 0.75],
            },
            Event::AuditPass {
                step: 0,
                variable: 3,
            },
            Event::FixStep {
                step: 1,
                variable: 5,
                value: 0,
                rank: 1,
                touched: vec![1],
                inc: vec![1.0],
                phi_product: vec![0.5],
                headroom: vec![],
            },
            Event::FixRunEnd {
                steps: 2,
                violated: 0,
            },
        ]
    }

    #[test]
    fn run_state_folds_and_verifies_checkpoints() {
        let text = checkpointed_stream(2);
        let (state, torn) = RunState::from_stream(&text).unwrap();
        assert_eq!(torn, None);
        assert_eq!(state.events(), 9);
        assert_eq!(state.rounds(), 2);
        assert_eq!(state.steps(), &[(3, 1), (5, 0)]);
        assert_eq!(state.audits(), 1);
        assert_eq!(state.bytes(), text.len() as u64);
        assert!(state.sim_run_complete());
        assert!(state.fix_run_complete());
        let rp = state.last_checkpoint().expect("interval 2 fires");
        // Triggers: round_end ×2 (sidecar), fix_step ×2 (sidecar).
        assert_eq!(rp.checkpoint.round, 2);
        assert_eq!(rp.checkpoint.step, 2);
        assert_eq!(rp.audits, 1);
        assert_eq!(rp.sim_runs, 1);
        assert!(rp.sim_run_complete);
        assert_eq!(rp.fix_runs, 1);
        assert!(!rp.fix_run_complete);
    }

    #[test]
    fn run_state_rejects_contradicted_checkpoint() {
        let text = checkpointed_stream(2);
        // Corrupt one event line inside the first checkpointed window:
        // same length, different bytes, so only the digest can tell.
        let bad = text.replacen("\"delivered\":2", "\"delivered\":3", 1);
        let err = RunState::from_stream(&bad).unwrap_err();
        assert!(err.contains("corrupt stream"), "{err}");
    }

    #[test]
    fn run_state_reports_torn_tail_offset() {
        let text = checkpointed_stream(2);
        // Cut inside the final line.
        let cut = &text[..text.len() - 5];
        let (state, torn) = RunState::from_stream(cut).unwrap();
        let torn = torn.expect("tail is torn");
        assert_eq!(torn, state.bytes());
        assert!(text[torn as usize..].starts_with("{\"type\":\"fix_run_end\""));
        assert!(!state.fix_run_complete());
        assert_eq!(state.steps().len(), 2);
    }

    #[test]
    fn run_state_matches_recorder_counters_at_checkpoint() {
        // The durable prefix up to the sidecar re-folds to exactly the
        // sidecar's counters (the resume-check invariant).
        let text = checkpointed_stream(3);
        let (full, _) = RunState::from_stream(&text).unwrap();
        let rp = *full.last_checkpoint().unwrap();
        let prefix = &text[..rp.checkpoint.resume_offset() as usize];
        let (state, torn) = RunState::from_stream(prefix).unwrap();
        assert_eq!(torn, None);
        assert_eq!(state.events(), rp.checkpoint.events);
        assert_eq!(state.rounds(), rp.checkpoint.round);
        assert_eq!(state.steps().len() as u64, rp.checkpoint.step);
        assert_eq!(state.digest(), rp.checkpoint.digest);
        assert_eq!(state.bytes(), rp.checkpoint.resume_offset());
        assert_eq!(state.last_checkpoint(), Some(&rp));
    }
}
