//! Log-bucketed fixed-point streaming histograms for the timing channel.
//!
//! A [`Histogram`] summarizes a stream of `u64` samples (nanoseconds, in the
//! timing channel's case) in a fixed-size bucket array: values below
//! `2^SUB_BITS` get one exact bucket each, and every higher power-of-two
//! range `[2^h, 2^{h+1})` is split into `2^SUB_BITS` equal sub-buckets, so a
//! bucket's width never exceeds `1/2^SUB_BITS` of the values it holds and
//! every quantile estimate carries a guaranteed ≤ `2^-SUB_BITS` (≈ 3.1%)
//! relative error. Recording touches one array slot — no allocation, no
//! floating point — and merging is element-wise addition, which makes the
//! merge exact, commutative and associative (the property tests pin this),
//! so per-shard histograms can be combined in any order.

use std::fmt;

/// Sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 5;
/// Sub-buckets per power-of-two range.
const SUB: usize = 1 << SUB_BITS;
/// Total buckets: one exact bucket per value below `2^SUB_BITS`, then
/// `SUB` sub-buckets for each exponent `SUB_BITS..64`. Covers the whole
/// `u64` range — no sample is ever clamped or dropped.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Index of the bucket holding `v`. Monotone in `v`, so the `r`-th
/// smallest sample always lands in the first bucket whose cumulative
/// count reaches `r` — quantile walks are exact up to bucket width.
fn bucket_of(v: u64) -> usize {
    let h = 63 - (v | 1).leading_zeros();
    if h < SUB_BITS {
        v as usize
    } else {
        let shift = h - SUB_BITS;
        ((h - SUB_BITS + 1) as usize) * SUB + ((v >> shift) as usize - SUB)
    }
}

/// Largest value mapping to bucket `b` — the value a quantile walk
/// reports, so estimates never undershoot the exact order statistic.
fn bucket_high(b: usize) -> u64 {
    if b < SUB {
        b as u64
    } else {
        let h = (b / SUB) as u32 + SUB_BITS - 1;
        let shift = h - SUB_BITS;
        let top = (b % SUB) as u64 + SUB as u64;
        // `(top + 1) << shift` would overflow in the topmost bucket;
        // filling the low bits directly is equivalent and never does.
        (top << shift) | ((1u64 << shift) - 1)
    }
}

/// A mergeable streaming histogram over `u64` samples.
///
/// # Examples
///
/// ```
/// use lll_obs::hist::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.quantile(0.5);
/// assert!((500..=516).contains(&p50)); // ≤ 1/32 relative error
/// assert_eq!(h.max(), 1000);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample. One array store — no allocation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0 < q ≤ 1`): the upper bound of the bucket
    /// holding the sample of rank `ceil(q·count)`. Never below the exact
    /// order statistic and at most `1/32` above it, relative (0 when
    /// empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The top bucket's high end can exceed the exact max.
                return bucket_high(b).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Adds every sample of `other` into `self`. Element-wise addition:
    /// exact, commutative and associative, so per-shard histograms merge
    /// into the same result in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("p50", &self.p50())
            .field("p90", &self.p90())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let probes = [
            0u64,
            1,
            2,
            31,
            32,
            33,
            63,
            64,
            65,
            1000,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut prev = 0usize;
        for &v in &probes {
            let b = bucket_of(v);
            assert!(b < BUCKETS, "bucket {b} of {v} out of range");
            assert!(b >= prev, "bucket_of not monotone at {v}");
            assert!(bucket_high(b) >= v, "bucket_high({b}) < {v}");
            prev = b;
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB as u64 {
            h.record(v);
        }
        for v in 0..SUB as u64 {
            assert_eq!(h.counts[v as usize], 1);
            assert_eq!(bucket_high(v as usize), v);
        }
    }

    #[test]
    fn quantiles_track_exact_order_statistics() {
        let mut h = Histogram::new();
        let samples: Vec<u64> = (0..500).map(|i| (i * i) % 10_007 + 1).collect();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = h.quantile(q);
            assert!(est >= exact, "q={q}: {est} < exact {exact}");
            assert!(
                est as f64 <= exact as f64 * (1.0 + 1.0 / SUB as f64),
                "q={q}: {est} too far above exact {exact}"
            );
        }
        assert_eq!(h.max(), *sorted.last().unwrap());
        assert_eq!(h.min(), sorted[0]);
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut all = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..1000u64 {
            let x = v.wrapping_mul(0x9E37_79B9).rotate_left(7);
            all.record(x);
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
