//! Run provenance: who produced a stream, from what inputs, on what toolchain.
//!
//! Provenance is inherently host- and configuration-dependent (thread count,
//! git revision, rustc version), so it lives on a dedicated `"type":"meta"`
//! line that is *excluded* from the byte-identity determinism contract. The
//! event stream after the meta line must be identical across engines and
//! thread counts; the meta line is allowed to differ.

use crate::event::push_str;
use crate::event::SCHEMA_VERSION;
use std::process::Command;

/// Facts about a recorded run, stamped on JSONL meta lines and CSV headers.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// JSONL schema version the stream conforms to.
    pub schema: u32,
    /// Simulator / workload seed, when one drives the run.
    pub seed: Option<u64>,
    /// Worker threads configured for the parallel engine.
    pub threads: Option<usize>,
    /// Graph shape `(nodes, edges, max_degree)` of the main workload.
    pub graph: Option<(usize, usize, usize)>,
    /// Per-shard node counts of the parallel engine's static cuts.
    pub shards: Option<Vec<usize>>,
    /// `git rev-parse --short HEAD`, or `"unknown"`.
    pub git_rev: String,
    /// `rustc -V`, or `"unknown"`.
    pub rustc: String,
    /// Version of this crate (and the workspace).
    pub crate_version: String,
}

impl Provenance {
    /// Captures toolchain facts from the environment. Never fails: anything
    /// unavailable becomes `"unknown"`.
    pub fn capture() -> Self {
        Provenance {
            schema: SCHEMA_VERSION,
            seed: None,
            threads: None,
            graph: None,
            shards: None,
            git_rev: command_line("git", &["rev-parse", "--short", "HEAD"]),
            rustc: command_line("rustc", &["-V"]),
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
        }
    }

    /// Sets the workload seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Sets the configured thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the workload graph shape.
    pub fn with_graph(mut self, nodes: usize, edges: usize, max_degree: usize) -> Self {
        self.graph = Some((nodes, edges, max_degree));
        self
    }

    /// Sets the parallel engine's per-shard node counts.
    pub fn with_shards(mut self, shards: Vec<usize>) -> Self {
        self.shards = Some(shards);
        self
    }

    /// The `"type":"meta"` JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"type\":\"meta\",\"schema\":");
        s.push_str(&self.schema.to_string());
        if let Some(seed) = self.seed {
            s.push_str(",\"seed\":");
            s.push_str(&seed.to_string());
        }
        if let Some(threads) = self.threads {
            s.push_str(",\"threads\":");
            s.push_str(&threads.to_string());
        }
        if let Some((nodes, edges, max_degree)) = self.graph {
            s.push_str(",\"nodes\":");
            s.push_str(&nodes.to_string());
            s.push_str(",\"edges\":");
            s.push_str(&edges.to_string());
            s.push_str(",\"max_degree\":");
            s.push_str(&max_degree.to_string());
        }
        if let Some(shards) = &self.shards {
            s.push_str(",\"shards\":[");
            for (i, n) in shards.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&n.to_string());
            }
            s.push(']');
        }
        push_str(&mut s, "git_rev", &self.git_rev);
        push_str(&mut s, "rustc", &self.rustc);
        push_str(&mut s, "crate_version", &self.crate_version);
        s.push('}');
        s
    }

    /// One-line `# provenance:` CSV comment. Readers must skip lines that
    /// start with `#`.
    pub fn csv_comment(&self) -> String {
        let mut s = String::from("# provenance:");
        if let Some(seed) = self.seed {
            s.push_str(&format!(" seed={seed}"));
        }
        if let Some(threads) = self.threads {
            s.push_str(&format!(" threads={threads}"));
        }
        s.push_str(&format!(
            " git={} rustc=\"{}\" version={} schema={}",
            self.git_rev, self.rustc, self.crate_version, self.schema
        ));
        s
    }
}

fn command_line(program: &str, args: &[&str]) -> String {
    Command::new(program)
        .args(args)
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_line_is_valid_json_and_tagged() {
        let p = Provenance::capture()
            .with_seed(7)
            .with_threads(4)
            .with_graph(16, 16, 2)
            .with_shards(vec![4, 4, 4, 4]);
        let line = p.to_jsonl();
        let v: serde::Value = serde_json::from_str(&line).expect("meta line parses");
        match v.get("type") {
            Some(serde::Value::String(t)) => assert_eq!(t, "meta"),
            other => panic!("bad type field {other:?}"),
        }
        assert_eq!(
            v.get("schema"),
            Some(&serde::Value::U64(u64::from(crate::SCHEMA_VERSION)))
        );
        assert_eq!(v.get("seed"), Some(&serde::Value::U64(7)));
        assert!(v.get("git_rev").is_some());
        assert!(v.get("rustc").is_some());
    }

    #[test]
    fn csv_comment_starts_with_hash() {
        let c = Provenance::capture().with_seed(1).csv_comment();
        assert!(c.starts_with("# provenance:"));
        assert!(c.contains("seed=1"));
    }
}
