//! Structural validation of recorded JSONL streams.
//!
//! Two levels: [`validate_line`] checks a single line in isolation (JSON
//! object, known `type` tag, required fields with the right JSON kinds), and
//! [`StreamValidator`] additionally enforces the stream-level determinism
//! contract — the meta line only at position one, round indices advancing by
//! exactly one within a simulator run, and step indices advancing by exactly
//! one within a fixer run.

use crate::event::SCHEMA_VERSION;
use serde::Value;

/// Field kinds the schema distinguishes.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    Uint,
    Array,
    Str,
}

/// Required fields per event type. Optional meta-line fields (seed, threads,
/// graph shape, shards) are checked only when present.
fn required_fields(ty: &str) -> Option<&'static [(&'static str, Kind)]> {
    use Kind::*;
    Some(match ty {
        "meta" => &[("schema", Uint), ("git_rev", Str), ("rustc", Str)],
        "sim_run_start" => &[
            ("nodes", Uint),
            ("edges", Uint),
            ("max_degree", Uint),
            ("seed", Uint),
        ],
        "round_start" => &[("round", Uint), ("running", Uint)],
        "node_halt" => &[("round", Uint), ("node", Uint)],
        "round_end" => &[
            ("round", Uint),
            ("delivered", Uint),
            ("bytes", Uint),
            ("halted", Uint),
            ("running", Uint),
        ],
        "sim_run_end" => &[("rounds", Uint), ("messages", Uint)],
        "fix_run_start" => &[("variables", Uint), ("events", Uint), ("max_rank", Uint)],
        "fix_step" => &[
            ("step", Uint),
            ("variable", Uint),
            ("value", Uint),
            ("rank", Uint),
            ("touched", Array),
            ("inc", Array),
            ("phi_product", Array),
            ("headroom", Array),
        ],
        "audit_pass" => &[("step", Uint), ("variable", Uint)],
        "audit_violation" => &[
            ("step", Uint),
            ("variable", Uint),
            ("pair_violations", Array),
            ("prob_violations", Array),
        ],
        "fix_run_end" => &[("steps", Uint), ("violated", Uint)],
        // Side-band timing summaries (own file, never interleaved with
        // the deterministic event stream; see `crate::timing`).
        "timing" => &[
            ("scope", Str),
            ("count", Uint),
            ("p50_ns", Uint),
            ("p90_ns", Uint),
            ("p99_ns", Uint),
            ("max_ns", Uint),
            ("total_ns", Uint),
        ],
        "experiment_start" => &[("id", Str)],
        "experiment_row" => &[("id", Str), ("index", Uint)],
        "experiment_end" => &[("id", Str), ("rows", Uint)],
        _ => return None,
    })
}

fn uint(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        _ => None,
    }
}

/// Validates one JSONL line structurally. Returns the event's `type` tag.
pub fn validate_line(line: &str) -> Result<String, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("not valid JSON: {e}"))?;
    if !matches!(v, Value::Object(_)) {
        return Err(format!("expected a JSON object, got {}", v.kind()));
    }
    let ty = match v.get("type") {
        Some(Value::String(t)) => t.clone(),
        Some(other) => return Err(format!("\"type\" must be a string, got {}", other.kind())),
        None => return Err("missing \"type\" field".to_string()),
    };
    let fields = required_fields(&ty).ok_or_else(|| format!("unknown event type \"{ty}\""))?;
    for (name, kind) in fields {
        let field = v
            .get(name)
            .ok_or_else(|| format!("{ty}: missing required field \"{name}\""))?;
        let ok = match kind {
            Kind::Uint => uint(field).is_some(),
            Kind::Array => matches!(field, Value::Array(_)),
            Kind::Str => matches!(field, Value::String(_)),
        };
        if !ok {
            return Err(format!(
                "{ty}: field \"{name}\" has kind {}, expected {kind:?}",
                field.kind()
            ));
        }
    }
    // Optional request-correlation tag (schema v2): a scalar, on any
    // event type. v1 streams simply never carry it.
    if let Some(req) = v.get("req") {
        if !matches!(
            req,
            Value::Null | Value::String(_) | Value::U64(_) | Value::I64(_)
        ) {
            return Err(format!(
                "{ty}: field \"req\" must be a scalar, got {}",
                req.kind()
            ));
        }
    }
    if ty == "meta" {
        let schema = uint(v.get("schema").expect("checked above")).expect("checked above");
        // v2 is additive over v1 (optional `req` only), so both fold
        // identically; reject anything newer than this reader.
        if schema == 0 || schema > u64::from(SCHEMA_VERSION) {
            return Err(format!(
                "meta: schema version {schema} not supported (max {SCHEMA_VERSION})"
            ));
        }
    }
    Ok(ty)
}

/// Stateful validator for a whole stream; feed lines in order.
#[derive(Debug, Default)]
pub struct StreamValidator {
    lines: usize,
    /// Round index of the current simulator run (0 right after `sim_run_start`).
    sim_round: Option<u64>,
    /// `true` between `round_start` and the matching `round_end`.
    in_round: bool,
    /// Step index expected next in the current fixer run.
    fix_next_step: Option<u64>,
    /// Step index of the last `fix_step`, for audit events.
    fix_last_step: Option<u64>,
}

impl StreamValidator {
    /// A fresh validator.
    pub fn new() -> Self {
        StreamValidator::default()
    }

    /// Lines accepted so far.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Validates the next line of the stream.
    pub fn check(&mut self, line: &str) -> Result<(), String> {
        let lineno = self.lines + 1;
        let err = |msg: String| Err(format!("line {lineno}: {msg}"));
        if line.starts_with('#') {
            // Sidecar comments carry no stream-level invariants, but a
            // known `#checkpoint ` sidecar must at least parse.
            if line.starts_with(crate::checkpoint::CHECKPOINT_PREFIX) {
                if let Err(e) = crate::checkpoint::Checkpoint::parse(line) {
                    return err(e);
                }
            }
            self.lines += 1;
            return Ok(());
        }
        let ty = match validate_line(line) {
            Ok(ty) => ty,
            Err(e) => return err(e),
        };
        // Re-parse for the stream-level index checks; validate_line already
        // guaranteed the fields exist with the right kinds.
        let v: Value = serde_json::from_str(line).expect("validated above");
        let field = |name: &str| uint(v.get(name).expect("validated above")).expect("validated");
        match ty.as_str() {
            "meta" if self.lines != 0 => {
                return err("meta line allowed only as the first line".to_string());
            }
            "meta" => {}
            "sim_run_start" => {
                self.sim_round = Some(0);
                self.in_round = false;
            }
            "round_start" => {
                let round = field("round");
                match self.sim_round {
                    Some(prev) if round == prev + 1 => self.sim_round = Some(round),
                    Some(prev) => {
                        return err(format!(
                            "round_start round {round} does not follow round {prev}"
                        ))
                    }
                    None => return err("round_start before sim_run_start".to_string()),
                }
                self.in_round = true;
            }
            "node_halt" | "round_end" => {
                let round = field("round");
                match self.sim_round {
                    Some(cur) if round == cur && self.in_round => {}
                    _ => {
                        return err(format!(
                            "{ty} for round {round} outside an open round (current {:?})",
                            self.sim_round
                        ))
                    }
                }
                if ty == "round_end" {
                    self.in_round = false;
                }
            }
            "sim_run_end" => {
                if self.sim_round.is_none() {
                    return err("sim_run_end before sim_run_start".to_string());
                }
                if self.in_round {
                    return err("sim_run_end inside an open round".to_string());
                }
                self.sim_round = None;
            }
            "fix_run_start" => {
                self.fix_next_step = Some(0);
                self.fix_last_step = None;
            }
            "fix_step" => {
                let step = field("step");
                match self.fix_next_step {
                    Some(expected) if step == expected => {
                        self.fix_next_step = Some(expected + 1);
                        self.fix_last_step = Some(step);
                    }
                    Some(expected) => {
                        return err(format!("fix_step step {step}, expected {expected}"))
                    }
                    None => return err("fix_step before fix_run_start".to_string()),
                }
            }
            "audit_pass" | "audit_violation" => {
                let step = field("step");
                match self.fix_last_step {
                    Some(last) if step == last => {}
                    other => {
                        return err(format!(
                            "{ty} for step {step} does not match last fix_step {other:?}"
                        ))
                    }
                }
            }
            "fix_run_end" => {
                if self.fix_next_step.is_none() {
                    return err("fix_run_end before fix_run_start".to_string());
                }
                self.fix_next_step = None;
                self.fix_last_step = None;
            }
            // Bench events carry no stream-level invariants.
            _ => {}
        }
        self.lines += 1;
        Ok(())
    }

    /// Final consistency checks; returns the number of accepted lines.
    pub fn finish(self) -> Result<usize, String> {
        if self.in_round {
            return Err("stream ended inside an open round".to_string());
        }
        if self.sim_round.is_some() {
            return Err("stream ended inside an open simulator run".to_string());
        }
        if self.fix_next_step.is_some() {
            return Err("stream ended inside an open fixer run".to_string());
        }
        Ok(self.lines)
    }
}

/// Validates a full multi-line stream; returns the accepted line count.
pub fn validate_stream(text: &str) -> Result<usize, String> {
    let mut v = StreamValidator::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        v.check(line)?;
    }
    v.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::provenance::Provenance;

    #[test]
    fn accepts_a_well_formed_stream() {
        let mut text = Provenance::capture().with_seed(3).to_jsonl();
        text.push('\n');
        let events = vec![
            Event::SimRunStart {
                nodes: 2,
                edges: 1,
                max_degree: 1,
                seed: 3,
            },
            Event::RoundStart {
                round: 1,
                running: 2,
            },
            Event::NodeHalt { round: 1, node: 0 },
            Event::RoundEnd {
                round: 1,
                delivered: 2,
                bytes: 8,
                halted: 1,
                running: 1,
            },
            Event::SimRunEnd {
                rounds: 1,
                messages: 2,
            },
            Event::FixRunStart {
                variables: 3,
                events: 2,
                max_rank: 2,
            },
            Event::FixStep {
                step: 0,
                variable: 0,
                value: 1,
                rank: 2,
                touched: vec![0],
                inc: vec![1.0],
                phi_product: vec![0.5],
                headroom: vec![1.0],
            },
            Event::AuditPass {
                step: 0,
                variable: 0,
            },
            Event::FixRunEnd {
                steps: 1,
                violated: 0,
            },
        ];
        for e in events {
            text.push_str(&e.to_jsonl());
            text.push('\n');
        }
        assert_eq!(validate_stream(&text), Ok(10));
    }

    #[test]
    fn rejects_round_index_jumps() {
        let text = [
            Event::SimRunStart {
                nodes: 1,
                edges: 0,
                max_degree: 0,
                seed: 0,
            }
            .to_jsonl(),
            Event::RoundStart {
                round: 2,
                running: 1,
            }
            .to_jsonl(),
        ]
        .join("\n");
        let e = validate_stream(&text).unwrap_err();
        assert!(e.contains("does not follow"), "{e}");
    }

    #[test]
    fn rejects_step_index_jumps() {
        let text = [
            Event::FixRunStart {
                variables: 1,
                events: 1,
                max_rank: 2,
            }
            .to_jsonl(),
            Event::FixStep {
                step: 1,
                variable: 0,
                value: 0,
                rank: 1,
                touched: vec![],
                inc: vec![],
                phi_product: vec![],
                headroom: vec![],
            }
            .to_jsonl(),
        ]
        .join("\n");
        let e = validate_stream(&text).unwrap_err();
        assert!(e.contains("expected 0"), "{e}");
    }

    #[test]
    fn rejects_meta_after_first_line() {
        let text = [
            Event::ExperimentStart {
                id: "E1".to_string(),
            }
            .to_jsonl(),
            Provenance::capture().to_jsonl(),
        ]
        .join("\n");
        let e = validate_stream(&text).unwrap_err();
        assert!(e.contains("first line"), "{e}");
    }

    #[test]
    fn accepts_v1_meta_and_tagged_lines() {
        // A v1 stream (schema 1, no `req`) still validates under the
        // v2 reader.
        assert_eq!(
            validate_line("{\"type\":\"meta\",\"schema\":1,\"git_rev\":\"x\",\"rustc\":\"y\"}"),
            Ok("meta".to_string())
        );
        // Tagged lines validate with any scalar tag.
        for tag in ["\"q0\"", "12", "null"] {
            let line = format!("{{\"type\":\"node_halt\",\"req\":{tag},\"round\":1,\"node\":0}}");
            assert_eq!(validate_line(&line), Ok("node_halt".to_string()), "{line}");
        }
        // Non-scalar tags are rejected.
        assert!(
            validate_line("{\"type\":\"node_halt\",\"req\":[1],\"round\":1,\"node\":0}")
                .unwrap_err()
                .contains("scalar")
        );
        // Future schema versions are rejected.
        assert!(validate_line(
            "{\"type\":\"meta\",\"schema\":99,\"git_rev\":\"x\",\"rustc\":\"y\"}"
        )
        .unwrap_err()
        .contains("not supported"));
    }

    #[test]
    fn sidecar_lines_are_accepted_but_checkpoints_must_parse() {
        let good = "#checkpoint {\"round\":1,\"step\":0,\"events\":2,\"offset\":10,\
                    \"digest\":\"00000000000000ab\"}";
        let text = [
            Event::ExperimentStart {
                id: "E1".to_string(),
            }
            .to_jsonl(),
            good.to_string(),
            "# free-form sidecar comment".to_string(),
            Event::ExperimentEnd {
                id: "E1".to_string(),
                rows: 0,
            }
            .to_jsonl(),
        ]
        .join("\n");
        assert_eq!(validate_stream(&text), Ok(4));
        let bad = text.replace(good, "#checkpoint {oops");
        let e = validate_stream(&bad).unwrap_err();
        assert!(e.contains("line 2"), "{e}");
    }

    #[test]
    fn rejects_unknown_types_and_missing_fields() {
        assert!(validate_line("{\"type\":\"mystery\"}")
            .unwrap_err()
            .contains("unknown event type"));
        assert!(validate_line("{\"type\":\"node_halt\",\"round\":1}")
            .unwrap_err()
            .contains("missing required field"));
        assert!(validate_line("not json").is_err());
    }
}
