//! Luby's randomized maximal independent set.
//!
//! The classic `O(log n)`-round MIS: per iteration every undecided node
//! draws a random value; local minima (ties broken by id) join the MIS
//! and their neighbors drop out. Two communication rounds per
//! iteration. Used as a building block by the honest distributed
//! Moser–Tardos implementation (violated events elect an independent
//! set to resample) and as a reference symmetry-breaking primitive.

use lll_local::{broadcast, NodeContext, NodeProgram, RoundResult, SimError, Simulator};
use rand::RngExt;

/// Message of the MIS protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisMsg {
    /// Undecided, with this iteration's draw and the node id as a
    /// tiebreaker.
    Draw(u64, u64),
    /// Joined the MIS.
    Joined,
    /// Dropped out (a neighbor joined).
    Dropped,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Undecided,
    In,
    Out,
}

/// One node of Luby's algorithm; halts after `max_iterations` with
/// `Some(in_mis)` if decided, `None` if still undecided (callers retry
/// with a larger budget — whp `O(log n)` iterations suffice).
#[derive(Debug, Clone)]
pub struct LubyProgram {
    status: Status,
    draw: u64,
    phase_b: bool,
    iterations_left: usize,
}

impl LubyProgram {
    /// Creates a node with an iteration budget.
    pub fn new(max_iterations: usize) -> LubyProgram {
        LubyProgram {
            status: Status::Undecided,
            draw: 0,
            phase_b: false,
            iterations_left: max_iterations,
        }
    }

    fn message(&self, ctx: &NodeContext) -> MisMsg {
        match self.status {
            Status::Undecided => MisMsg::Draw(self.draw, ctx.id),
            Status::In => MisMsg::Joined,
            Status::Out => MisMsg::Dropped,
        }
    }
}

impl NodeProgram for LubyProgram {
    type Message = MisMsg;
    type Output = Option<bool>;

    fn init(&mut self, ctx: &mut NodeContext) -> Vec<Option<MisMsg>> {
        self.draw = ctx.rng.random();
        if ctx.degree == 0 {
            // Isolated nodes join immediately (no one to contest).
            self.status = Status::In;
        }
        broadcast(self.message(ctx), ctx.degree)
    }

    fn round(
        &mut self,
        ctx: &mut NodeContext,
        inbox: &[Option<MisMsg>],
    ) -> RoundResult<MisMsg, Option<bool>> {
        if !self.phase_b {
            // Phase A: compare draws; local minima join.
            if self.status == Status::Undecided {
                let mut wins = true;
                for msg in inbox.iter().flatten() {
                    if let MisMsg::Draw(d, id) = msg {
                        if (*d, *id) < (self.draw, ctx.id) {
                            wins = false;
                        }
                    }
                }
                if wins {
                    self.status = Status::In;
                }
            }
            self.phase_b = true;
            RoundResult::Continue(broadcast(self.message(ctx), ctx.degree))
        } else {
            // Phase B: neighbors of fresh MIS members drop out.
            if self.status == Status::Undecided
                && inbox.iter().flatten().any(|m| matches!(m, MisMsg::Joined))
            {
                self.status = Status::Out;
            }
            self.phase_b = false;
            self.iterations_left -= 1;
            if self.iterations_left == 0 {
                return RoundResult::Halt(match self.status {
                    Status::Undecided => None,
                    Status::In => Some(true),
                    Status::Out => Some(false),
                });
            }
            self.draw = ctx.rng.random();
            RoundResult::Continue(broadcast(self.message(ctx), ctx.degree))
        }
    }
}

/// Result of a completed MIS computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MisResult {
    /// Membership flag per node.
    pub in_mis: Vec<bool>,
    /// Honest LOCAL rounds spent (including retries).
    pub rounds: usize,
}

/// Computes an MIS with Luby's algorithm on the simulator, doubling the
/// iteration budget until every node decides.
///
/// # Errors
///
/// Propagates simulator errors; gives up (with
/// [`SimError::RoundLimitExceeded`]) once the budget exceeds `16·n + 64`
/// iterations, far beyond the whp bound.
pub fn luby_mis(sim: &Simulator<'_>, seed: u64) -> Result<MisResult, SimError> {
    let n = sim.graph().num_nodes();
    if n == 0 {
        return Ok(MisResult {
            in_mis: vec![],
            rounds: 0,
        });
    }
    let mut budget = 4usize.max(2 * (64 - (n as u64).leading_zeros()) as usize);
    let mut rounds = 0usize;
    let mut attempt = 0u64;
    loop {
        let run = sim
            .clone()
            .seed(seed ^ (attempt.wrapping_mul(0x9E37_79B9)))
            .run_auto(|_| LubyProgram::new(budget), 4 * budget + 8)?;
        rounds += run.rounds;
        if run.outputs.iter().all(Option::is_some) {
            let in_mis = run
                .outputs
                .into_iter()
                .map(|o| o.expect("checked"))
                .collect();
            return Ok(MisResult { in_mis, rounds });
        }
        budget *= 2;
        attempt += 1;
        if budget > 16 * n + 64 {
            return Err(SimError::RoundLimitExceeded { limit: budget });
        }
    }
}

/// Validates an MIS: independent and maximal.
pub fn is_mis(g: &lll_graphs::Graph, in_mis: &[bool]) -> bool {
    if in_mis.len() != g.num_nodes() {
        return false;
    }
    let independent = g.edges().iter().all(|&(u, v)| !(in_mis[u] && in_mis[v]));
    let maximal =
        (0..g.num_nodes()).all(|v| in_mis[v] || g.neighbors(v).iter().any(|&u| in_mis[u]));
    independent && maximal
}

#[cfg(test)]
mod tests {
    use super::*;
    use lll_graphs::gen::{complete, random_regular, ring, torus};
    use lll_graphs::Graph;

    #[test]
    fn produces_valid_mis_on_standard_graphs() {
        for (name, g) in [
            ("ring", ring(40)),
            ("torus", torus(6, 6)),
            ("K7", complete(7)),
            ("4-regular", random_regular(50, 4, 1).unwrap()),
        ] {
            for seed in 0..3 {
                let sim = Simulator::with_shuffled_ids(&g, seed);
                let res = luby_mis(&sim, seed).unwrap();
                assert!(is_mis(&g, &res.in_mis), "{name}, seed {seed}");
                assert!(res.rounds >= 2);
            }
        }
    }

    #[test]
    fn isolated_nodes_always_join() {
        let g = Graph::empty(5);
        let sim = Simulator::new(&g);
        let res = luby_mis(&sim, 0).unwrap();
        assert_eq!(res.in_mis, vec![true; 5]);
    }

    #[test]
    fn complete_graph_has_exactly_one_member() {
        let g = complete(12);
        let sim = Simulator::new(&g);
        let res = luby_mis(&sim, 3).unwrap();
        assert_eq!(res.in_mis.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn rounds_grow_slowly() {
        let small = ring(32);
        let large = ring(4096);
        let r_small = luby_mis(&Simulator::new(&small), 1).unwrap().rounds;
        let r_large = luby_mis(&Simulator::new(&large), 1).unwrap().rounds;
        // O(log n) whp: allow a generous factor.
        assert!(r_large <= 6 * r_small + 60, "{r_small} -> {r_large}");
    }

    #[test]
    fn mis_validation_catches_errors() {
        let g = ring(4);
        assert!(!is_mis(&g, &[true, true, false, false])); // not independent
        assert!(!is_mis(&g, &[false, false, false, false])); // not maximal
        assert!(is_mis(&g, &[true, false, true, false]));
        assert!(!is_mis(&g, &[true, false])); // wrong length
    }
}
