//! Greedy color-class reduction.
//!
//! Given a proper `m`-coloring, one color class is eliminated per round:
//! in round `t` every node of color `m - t` recolors to the smallest
//! color in `[0, target)` not used by a neighbor. A color class is an
//! independent set (the input coloring is proper), so simultaneous
//! recoloring within a class is safe, and `target > Δ` guarantees a free
//! color. After `m - target` rounds the palette is `[0, target)`.

use lll_local::{broadcast, NodeContext, NodeProgram, RoundResult, StepResult};

/// The color-class reduction [`NodeProgram`].
///
/// State is kept in 32 bits throughout (colors are bounded by the
/// palette, which must fit in the 32-bit message type anyway): one
/// program instance lives at every node and the whole per-node state is
/// streamed through the cache each round, so compactness is wall-clock.
#[derive(Debug, Clone)]
pub struct ReduceProgram {
    color: u32,
    palette: u32,
    target: u32,
    round: u32,
    port_colors: Vec<u32>,
}

impl ReduceProgram {
    /// Creates the program for one node with its input `color`, the input
    /// `palette` size and the `target` palette size.
    ///
    /// # Panics
    ///
    /// Panics if `color >= palette` or `target >= palette` (the driver
    /// short-circuits the no-op case) or `target == 0`.
    pub fn new(color: u64, palette: u64, target: u64) -> ReduceProgram {
        assert!(color < palette, "input color out of palette");
        assert!(
            target > 0 && target < palette,
            "target must be in (0, palette)"
        );
        // Messages carry colors in 32 bits (half the slab traffic of a
        // u64); a palette beyond 2^32 would overflow the id space of any
        // graph the simulator can hold anyway.
        assert!(
            palette <= u64::from(u32::MAX),
            "palette must fit in 32-bit messages"
        );
        ReduceProgram {
            color: color as u32,
            palette: palette as u32,
            target: target as u32,
            round: 0,
            port_colors: Vec::new(),
        }
    }

    fn mex(&self) -> u32 {
        (0..self.target)
            .find(|c| !self.port_colors.contains(c))
            .expect("target > Δ guarantees a free color")
    }

    /// The state transition shared by both engine entry points: ingest
    /// neighbor colors, recolor if this round clears our class, and
    /// return `Some(final color)` when the palette has reached `target`.
    fn advance(&mut self, inbox: &[Option<u32>]) -> Option<u64> {
        for (port, msg) in inbox.iter().enumerate() {
            if let Some(c) = msg {
                self.port_colors[port] = *c;
            }
        }
        self.round += 1;
        let class = self.palette - self.round;
        if self.color == class {
            self.color = self.mex();
        }
        (class == self.target).then_some(u64::from(self.color))
    }
}

impl NodeProgram for ReduceProgram {
    type Message = u32;
    type Output = u64;

    fn init(&mut self, ctx: &mut NodeContext) -> Vec<Option<u32>> {
        self.port_colors = vec![u32::MAX; ctx.degree];
        broadcast(self.color, ctx.degree)
    }

    fn round(&mut self, ctx: &mut NodeContext, inbox: &[Option<u32>]) -> RoundResult<u32, u64> {
        match self.advance(inbox) {
            Some(color) => RoundResult::Halt(color),
            None => RoundResult::Continue(broadcast(self.color, ctx.degree)),
        }
    }

    // The reduction dominates the fixers' scheduling cost (palette −
    // target rounds of it), so it takes the allocation-free path.
    fn round_into(
        &mut self,
        _ctx: &mut NodeContext,
        inbox: &[Option<u32>],
        out: &mut [Option<u32>],
    ) -> StepResult<u64> {
        match self.advance(inbox) {
            Some(color) => StepResult::Halt(color),
            None => {
                out.fill(Some(self.color));
                StepResult::Continue
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lll_graphs::gen::{ring, torus};
    use lll_local::Simulator;

    /// Drives the reduction directly with a hand-made input coloring.
    fn run_reduce(
        g: &lll_graphs::Graph,
        input: &[u64],
        palette: u64,
        target: u64,
    ) -> (Vec<usize>, usize) {
        let sim = Simulator::new(g);
        let input = input.to_vec();
        let run = sim
            .run(
                |ctx| ReduceProgram::new(input[ctx.id as usize], palette, target),
                10_000,
            )
            .unwrap();
        (
            run.outputs.iter().map(|&c| c as usize).collect(),
            run.rounds,
        )
    }

    #[test]
    fn reduces_ring_to_three_colors() {
        let g = ring(12);
        // A valid 4-coloring using colors {0,1,2,3}.
        let input: Vec<u64> = (0..12)
            .map(|i| (i % 2) as u64 + if i == 11 { 2 } else { 0 })
            .collect();
        assert!(g.is_proper_coloring(&input.iter().map(|&c| c as usize).collect::<Vec<_>>()));
        let (out, rounds) = run_reduce(&g, &input, 4, 3);
        assert!(g.is_proper_coloring(&out));
        assert!(out.iter().all(|&c| c < 3));
        assert_eq!(rounds, 1); // one class (color 3) to clear
    }

    #[test]
    fn round_count_is_palette_minus_target() {
        let g = torus(5, 5);
        // Inflate a greedy coloring into a sparse large palette.
        let greedy = crate::greedy_coloring_sequential(&g);
        let input: Vec<u64> = greedy.iter().map(|&c| (c * 7 + 3) as u64).collect();
        let palette = 5 * 7 + 3 + 1;
        let proper: Vec<usize> = input.iter().map(|&c| c as usize).collect();
        assert!(g.is_proper_coloring(&proper));
        let target = g.max_degree() as u64 + 1;
        let (out, rounds) = run_reduce(&g, &input, palette as u64, target);
        assert!(g.is_proper_coloring(&out));
        assert!(out.iter().all(|&c| (c as u64) < target));
        assert_eq!(rounds, palette - target as usize);
    }

    #[test]
    #[should_panic(expected = "input color out of palette")]
    fn rejects_out_of_palette_color() {
        ReduceProgram::new(5, 5, 3);
    }

    #[test]
    fn in_place_entry_point_matches_allocating_round() {
        // The native `round_into` override must be observationally
        // identical to `round`: the sequential engine uses the latter,
        // the slab engine the former.
        let g = torus(6, 7);
        let greedy = crate::greedy_coloring_sequential(&g);
        let input: Vec<u64> = greedy.iter().map(|&c| (c * 5 + 2) as u64).collect();
        let palette = 5 * 5 + 2 + 1;
        let target = g.max_degree() as u64 + 1;
        let sim = Simulator::new(&g);
        let mk = |ctx: &lll_local::NodeContext| {
            ReduceProgram::new(input[ctx.id as usize], palette, target)
        };
        let seq = sim.run(mk, 10_000).unwrap();
        for t in [1usize, 3, 8] {
            let par = sim.run_parallel(t, mk, 10_000).unwrap();
            assert_eq!(par.outputs, seq.outputs, "threads {t}");
            assert_eq!(par.rounds, seq.rounds, "threads {t}");
            assert_eq!(par.messages, seq.messages, "threads {t}");
        }
    }
}
