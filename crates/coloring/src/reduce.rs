//! Greedy color-class reduction.
//!
//! Given a proper `m`-coloring, one color class is eliminated per round:
//! in round `t` every node of color `m - t` recolors to the smallest
//! color in `[0, target)` not used by a neighbor. A color class is an
//! independent set (the input coloring is proper), so simultaneous
//! recoloring within a class is safe, and `target > Δ` guarantees a free
//! color. After `m - target` rounds the palette is `[0, target)`.

use lll_local::{broadcast, NodeContext, NodeProgram, RoundResult};

/// The color-class reduction [`NodeProgram`].
#[derive(Debug, Clone)]
pub struct ReduceProgram {
    color: u64,
    palette: u64,
    target: u64,
    round: u64,
    port_colors: Vec<u64>,
}

impl ReduceProgram {
    /// Creates the program for one node with its input `color`, the input
    /// `palette` size and the `target` palette size.
    ///
    /// # Panics
    ///
    /// Panics if `color >= palette` or `target >= palette` (the driver
    /// short-circuits the no-op case) or `target == 0`.
    pub fn new(color: u64, palette: u64, target: u64) -> ReduceProgram {
        assert!(color < palette, "input color out of palette");
        assert!(
            target > 0 && target < palette,
            "target must be in (0, palette)"
        );
        ReduceProgram {
            color,
            palette,
            target,
            round: 0,
            port_colors: Vec::new(),
        }
    }

    fn mex(&self) -> u64 {
        (0..self.target)
            .find(|c| !self.port_colors.contains(c))
            .expect("target > Δ guarantees a free color")
    }
}

impl NodeProgram for ReduceProgram {
    type Message = u64;
    type Output = u64;

    fn init(&mut self, ctx: &mut NodeContext) -> Vec<Option<u64>> {
        self.port_colors = vec![u64::MAX; ctx.degree];
        broadcast(self.color, ctx.degree)
    }

    fn round(&mut self, ctx: &mut NodeContext, inbox: &[Option<u64>]) -> RoundResult<u64, u64> {
        for (port, msg) in inbox.iter().enumerate() {
            if let Some(c) = msg {
                self.port_colors[port] = *c;
            }
        }
        self.round += 1;
        let class = self.palette - self.round;
        if self.color == class {
            self.color = self.mex();
        }
        if class == self.target {
            RoundResult::Halt(self.color)
        } else {
            RoundResult::Continue(broadcast(self.color, ctx.degree))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lll_graphs::gen::{ring, torus};
    use lll_local::Simulator;

    /// Drives the reduction directly with a hand-made input coloring.
    fn run_reduce(
        g: &lll_graphs::Graph,
        input: &[u64],
        palette: u64,
        target: u64,
    ) -> (Vec<usize>, usize) {
        let sim = Simulator::new(g);
        let input = input.to_vec();
        let run = sim
            .run(
                |ctx| ReduceProgram::new(input[ctx.id as usize], palette, target),
                10_000,
            )
            .unwrap();
        (
            run.outputs.iter().map(|&c| c as usize).collect(),
            run.rounds,
        )
    }

    #[test]
    fn reduces_ring_to_three_colors() {
        let g = ring(12);
        // A valid 4-coloring using colors {0,1,2,3}.
        let input: Vec<u64> = (0..12)
            .map(|i| (i % 2) as u64 + if i == 11 { 2 } else { 0 })
            .collect();
        assert!(g.is_proper_coloring(&input.iter().map(|&c| c as usize).collect::<Vec<_>>()));
        let (out, rounds) = run_reduce(&g, &input, 4, 3);
        assert!(g.is_proper_coloring(&out));
        assert!(out.iter().all(|&c| c < 3));
        assert_eq!(rounds, 1); // one class (color 3) to clear
    }

    #[test]
    fn round_count_is_palette_minus_target() {
        let g = torus(5, 5);
        // Inflate a greedy coloring into a sparse large palette.
        let greedy = crate::greedy_coloring_sequential(&g);
        let input: Vec<u64> = greedy.iter().map(|&c| (c * 7 + 3) as u64).collect();
        let palette = 5 * 7 + 3 + 1;
        let proper: Vec<usize> = input.iter().map(|&c| c as usize).collect();
        assert!(g.is_proper_coloring(&proper));
        let target = g.max_degree() as u64 + 1;
        let (out, rounds) = run_reduce(&g, &input, palette as u64, target);
        assert!(g.is_proper_coloring(&out));
        assert!(out.iter().all(|&c| (c as u64) < target));
        assert_eq!(rounds, palette - target as usize);
    }

    #[test]
    #[should_panic(expected = "input color out of palette")]
    fn rejects_out_of_palette_color() {
        ReduceProgram::new(5, 5, 3);
    }
}
