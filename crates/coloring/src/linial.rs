//! Linial's iterated color reduction.
//!
//! One reduction step maps a proper `m`-coloring to a proper
//! `q²`-coloring in a single communication round, where `q` is a prime
//! chosen so that (i) every color of the current palette can be encoded
//! as a polynomial of degree ≤ `k` over `F_q` (i.e. `q^(k+1) ≥ m`) and
//! (ii) `q > k·Δ`. A node with polynomial `p_v` owns the point set
//! `S_v = {(x, p_v(x)) : x ∈ F_q}`; two distinct polynomials of degree
//! ≤ `k` agree on at most `k` points, so the ≤ `Δ` neighbors of `v` can
//! forbid at most `k·Δ < q` elements of `S_v` — some point survives and
//! becomes the new color. Iterating reaches the fixed-point palette
//! `q₁²` with `q₁ = nextprime(Δ + 1) = O(Δ)` after `log* m + O(1)`
//! steps.

use lll_local::{broadcast, NodeContext, NodeProgram, RoundResult, StepResult};
use lll_numeric::next_prime;

/// Computes the reduction schedule `(k, q)` per round for initial palette
/// `m` and maximum degree `delta >= 1`, stopping when a step would no
/// longer shrink the palette.
///
/// All nodes derive the identical schedule from the globally known `n`
/// and `Δ`, so the algorithm needs no coordination rounds.
///
/// # Panics
///
/// Panics if `delta == 0` (callers special-case edgeless graphs).
pub fn linial_schedule(m: u64, delta: u64) -> Vec<(u64, u64)> {
    assert!(delta >= 1, "schedule undefined for edgeless graphs");
    let mut m = m;
    let mut steps = Vec::new();
    loop {
        let (k, q) = choose_step(m, delta);
        let m_next = q * q;
        if m_next >= m {
            return steps;
        }
        steps.push((k, q));
        m = m_next;
    }
}

/// Smallest `k >= 1` (with its prime `q = nextprime(kΔ + 1)`) such that
/// polynomials of degree ≤ `k` over `F_q` can encode `m` colors.
fn choose_step(m: u64, delta: u64) -> (u64, u64) {
    for k in 1u64.. {
        let q = next_prime(k * delta + 1);
        // q^(k+1) >= m, computed with saturation.
        let mut pow = 1u128;
        for _ in 0..=k {
            pow = pow.saturating_mul(q as u128);
            if pow >= m as u128 {
                return (k, q);
            }
        }
        if pow >= m as u128 {
            return (k, q);
        }
    }
    unreachable!("q^(k+1) grows without bound in k")
}

/// Evaluates the polynomial encoding of `color` (base-`q` digits as
/// coefficients, degree ≤ `k`) at point `x` over `F_q`.
fn poly_eval(color: u64, k: u64, q: u64, x: u64) -> u64 {
    let mut c = color;
    let mut acc = 0u64;
    let mut x_pow = 1u64;
    for _ in 0..=k {
        let digit = c % q;
        c /= q;
        acc = (acc + digit * x_pow) % q;
        x_pow = (x_pow * x) % q;
    }
    acc
}

/// The Linial color-reduction [`NodeProgram`].
///
/// Initial color = the node's id (must be `< n`); after running the whole
/// schedule the node halts with its final color in the fixed-point
/// palette `q_T²`.
#[derive(Debug, Clone)]
pub struct LinialProgram {
    // Shared, not owned: the schedule is identical at every node, and
    // the drivers clone one template program per node, so `Clone` must
    // not deep-copy it.
    schedule: std::sync::Arc<[(u64, u64)]>,
    step: usize,
    color: u64,
}

impl LinialProgram {
    /// Creates the program for one node; every node must receive the same
    /// `schedule` (see [`linial_schedule`]). Cloning the program shares
    /// the schedule, so instantiating it at every node is cheap.
    pub fn new(schedule: Vec<(u64, u64)>) -> LinialProgram {
        LinialProgram {
            schedule: schedule.into(),
            step: 0,
            color: 0,
        }
    }

    /// One reduction step: pick a point of our polynomial's graph not
    /// owned by any neighbor (read straight off the inbox — silent ports
    /// forbid nothing).
    fn reduce(&self, inbox: &[Option<u32>], k: u64, q: u64) -> u64 {
        'point: for x in 0..q {
            let y = poly_eval(self.color, k, q, x);
            for nc in inbox.iter().flatten() {
                let nc = u64::from(*nc);
                debug_assert_ne!(nc, self.color, "input coloring must be proper");
                if poly_eval(nc, k, q, x) == y {
                    continue 'point;
                }
            }
            return x * q + y;
        }
        unreachable!("q > kΔ guarantees a surviving point")
    }

    /// The state transition shared by both engine entry points: one
    /// schedule step, returning `Some(final color)` when the schedule is
    /// exhausted (immediately, if it was empty).
    fn advance(&mut self, degree: usize, inbox: &[Option<u32>]) -> Option<u64> {
        if self.step >= self.schedule.len() {
            // Schedule was empty (palette already at fixed point).
            return Some(self.color);
        }
        let (k, q) = self.schedule[self.step];
        debug_assert_eq!(
            inbox.iter().flatten().count(),
            degree,
            "all neighbors broadcast"
        );
        self.color = self.reduce(inbox, k, q);
        self.step += 1;
        (self.step == self.schedule.len()).then_some(self.color)
    }
}

impl NodeProgram for LinialProgram {
    type Message = u32;
    type Output = u64;

    fn init(&mut self, ctx: &mut NodeContext) -> Vec<Option<u32>> {
        self.color = ctx.id;
        // Colors only shrink from here, so the id bounds every message;
        // 32-bit messages halve the slab traffic of a u64.
        assert!(
            self.color <= u64::from(u32::MAX),
            "Linial requires ids < n, which must fit in 32 bits"
        );
        broadcast(self.color as u32, ctx.degree)
    }

    fn round(&mut self, ctx: &mut NodeContext, inbox: &[Option<u32>]) -> RoundResult<u32, u64> {
        match self.advance(ctx.degree, inbox) {
            Some(color) => RoundResult::Halt(color),
            None => RoundResult::Continue(broadcast(self.color as u32, ctx.degree)),
        }
    }

    fn round_into(
        &mut self,
        ctx: &mut NodeContext,
        inbox: &[Option<u32>],
        out: &mut [Option<u32>],
    ) -> StepResult<u64> {
        match self.advance(ctx.degree, inbox) {
            Some(color) => StepResult::Halt(color),
            None => {
                out.fill(Some(self.color as u32));
                StepResult::Continue
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poly_eval_is_base_q_polynomial() {
        // color 11 = 1*9 + 0*3 + 2 in base 3 -> coefficients [2, 0, 1]
        // p(x) = 2 + 0x + 1x² over F_3
        assert_eq!(poly_eval(11, 2, 3, 0), 2);
        assert_eq!(poly_eval(11, 2, 3, 1), 0); // 2 + 1 = 3 ≡ 0
        assert_eq!(poly_eval(11, 2, 3, 2), 0); // 2 + 4 = 6 ≡ 0
    }

    #[test]
    fn distinct_colors_give_distinct_polynomials() {
        let (k, q) = (2u64, 5u64);
        let palette = q.pow(k as u32 + 1);
        for a in 0..palette {
            for b in (a + 1)..palette {
                let agree = (0..q)
                    .filter(|&x| poly_eval(a, k, q, x) == poly_eval(b, k, q, x))
                    .count();
                assert!(
                    agree as u64 <= k,
                    "colors {a},{b} agree on {agree} > k points"
                );
            }
        }
    }

    #[test]
    fn schedule_shrinks_to_fixed_point() {
        let delta = 4u64;
        let steps = linial_schedule(1 << 20, delta);
        assert!(!steps.is_empty());
        // Walk the schedule: palette strictly shrinks, constraints hold.
        let mut m = 1u64 << 20;
        for &(k, q) in &steps {
            assert!(q > k * delta, "q must exceed kΔ");
            assert!(
                (q as u128).pow(k as u32 + 1) >= m as u128,
                "palette must fit"
            );
            let m2 = q * q;
            assert!(m2 < m, "palette must shrink");
            m = m2;
        }
        // Fixed point: q² with q = nextprime(2Δ+1) = 11 for Δ = 4 (the
        // k = 1 step would need q² ≥ m with q > Δ, which cannot shrink
        // below the k = 2 fixed point here).
        assert_eq!(m, 121);
        assert!(m <= (2 * delta + 3).pow(2));
    }

    #[test]
    fn schedule_lengths_are_log_star_like() {
        let delta = 3u64;
        let len = |m: u64| linial_schedule(m, delta).len();
        assert!(len(1 << 8) <= 3);
        assert!(len(1 << 16) <= 4);
        assert!(len(1 << 32) <= 5);
        assert!(len(u64::MAX) <= 6);
        // Monotone-ish growth, tiny everywhere.
        assert!(len(u64::MAX) >= len(1 << 8));
    }

    #[test]
    fn schedule_empty_when_palette_small() {
        // Palette 10, Δ = 4: fixed point is 25 ≥ 10, nothing to do.
        assert!(linial_schedule(10, 4).is_empty());
    }
}
